"""E2/E3 — Figure 2: Bullet server READ and CREATE+DELETE, delay (a)
and bandwidth (b), for file sizes 1 byte … 1 Mbyte.

Reproduces the measurement conditions of §4: warm server cache for
READ, write-through to both disks for CREATE, a normally loaded
Ethernet, and a dedicated server processor.
"""

from repro.bench import PAPER_SIZES, bullet_figure2, make_rig
from repro.units import KB, MB

from conftest import run_once, save_result


def test_fig2_bullet_read_and_create_delete(benchmark):
    def experiment():
        rig = make_rig()
        return bullet_figure2(rig, repeats=3)

    table = run_once(benchmark, experiment)
    save_result(
        "fig2_bullet",
        table.render_delay() + "\n\n" + table.render_bandwidth(),
    )

    # Shape assertions from the paper.
    # Delay grows with size (within 5% background-load jitter).
    for column in ("READ", "CREATE+DEL"):
        delays = [table.delay(size, column) for size in PAPER_SIZES]
        for earlier, later in zip(delays, delays[1:]):
            assert earlier <= later * 1.05, f"{column} delay not monotone"
    # Small reads land in the low-millisecond RPC regime.
    assert table.delay(1, "READ") < 5e-3
    # Large-file read bandwidth approaches the Amoeba bulk-RPC rate
    # (~650-700 KB/s on 10 Mb/s Ethernet with 68020s) — claim C5.
    big_read_bw = table.bandwidth(1 * MB, "READ")
    assert 550 < big_read_bw < 800
    # Read bandwidth keeps rising with size (no mid-range collapse).
    assert table.bandwidth(64 * KB, "READ") > 0.8 * table.bandwidth(1 * MB, "READ")
    # Creation is slower than reading (two disks, write-through).
    for size in PAPER_SIZES:
        assert table.delay(size, "CREATE+DEL") > table.delay(size, "READ")
