"""A2 — ablation: the P-FACTOR (§2.2).

CREATE latency as a function of paranoia: reply after the RAM cache
(P=0), after one disk (P=1), after both disks (P=2). The paper defines
the semantics; this measures what each level costs per file size.
"""

from repro.bench import make_rig, timed
from repro.units import KB, MB, to_msec

from conftest import run_once, save_result

SIZES = [1 * KB, 64 * KB, 1 * MB]


def test_ablation_p_factor(benchmark):
    def experiment():
        rig = make_rig(with_nfs=False)
        env, client = rig.env, rig.bullet_client
        results = {}
        for size in SIZES:
            per_p = []
            for p in (0, 1, 2):
                total = 0.0
                for _ in range(3):
                    elapsed, cap = timed(env, client.create(bytes(size), p))
                    total += elapsed
                    # Drain background writes before deleting (P=0 case),
                    # so the delete never races the in-flight write.
                    env.run(until=env.now + 0.2)
                    timed(env, client.delete(cap))
                per_p.append(total / 3)
            results[size] = per_p
        return results

    results = run_once(benchmark, experiment)
    lines = ["Ablation A2: CREATE latency vs P-FACTOR",
             "=" * 56,
             f"{'size':>10} {'P=0 (ms)':>12} {'P=1 (ms)':>12} {'P=2 (ms)':>12}"]
    for size, (p0, p1, p2) in results.items():
        lines.append(f"{size:>10} {to_msec(p0):>12.1f} {to_msec(p1):>12.1f} "
                     f"{to_msec(p2):>12.1f}")
    save_result("ablation_pfactor", "\n".join(lines))

    for size, (p0, p1, p2) in results.items():
        # More paranoia never gets cheaper.
        assert p0 < p1 <= p2 * 1.05, (size, p0, p1, p2)
        # P=0 skips the disks entirely: far below P=1 for small files,
        # where the disk write dominates the create. (At 64 KB+ the
        # network transfer dominates and the gap narrows.)
        if size <= 4 * KB:
            assert p0 < 0.5 * p1, (size, p0, p1)
