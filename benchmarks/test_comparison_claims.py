"""E6 — the §4/§5 in-text claims, checked numerically.

C1: "The Bullet file server performs read operations three to six times
    better than the SUN NFS file server for all file sizes."
C2: "Although the Bullet file server stores the files on two disks, for
    large files the bandwidth is ten times that of SUN NFS."
C3: "For very large files (> 64 Kbytes) the Bullet server even achieves
    a higher bandwidth for writing than SUN NFS achieves for reading."
C4: NFS 1 MB bandwidth below NFS 64 KB bandwidth (read and create).

Both servers are measured in the *same* rig: one Ethernet, one
background-load process, identical hardware profiles.
"""

from repro.bench import (
    PAPER_SIZES,
    ascii_chart,
    bullet_figure2,
    comparison_lines,
    make_rig,
    nfs_figure3,
)
from repro.units import KB, MB

from conftest import run_once, save_result


def test_comparison_claims(benchmark):
    def experiment():
        rig = make_rig()
        fig2 = bullet_figure2(rig, repeats=3)
        fig3 = nfs_figure3(rig, repeats=3)
        return fig2, fig3

    fig2, fig3 = run_once(benchmark, experiment)
    chart = ascii_chart(
        {"Bullet READ": fig2, "Bullet CREATE+DEL": fig2,
         "NFS READ": fig3, "NFS CREATE": fig3},
        {"Bullet READ": "READ", "Bullet CREATE+DEL": "CREATE+DEL",
         "NFS READ": "READ", "NFS CREATE": "CREATE"},
    )
    save_result("comparison_claims",
                comparison_lines(fig2, fig3) + "\n\n" + chart)

    # C1 — read speedup 3-6x for all sizes (allow a hair of tolerance
    # at the band edges; the paper's own numbers straddle the band).
    for size in PAPER_SIZES:
        speedup = fig3.delay(size, "READ") / fig2.delay(size, "READ")
        assert 2.5 <= speedup <= 7.0, f"C1 out of band at {size}: {speedup:.1f}x"

    # C2 — large-file write bandwidth ratio is "about ten times"; our
    # substrate lands lower (see EXPERIMENTS.md) but far above parity.
    write_ratio = (fig2.bandwidth(1 * MB, "CREATE+DEL")
                   / fig3.bandwidth(1 * MB, "CREATE"))
    assert write_ratio > 4.0, f"C2: write ratio only {write_ratio:.1f}x"

    # C3 — Bullet write bandwidth beats NFS read bandwidth above 64 KB.
    for size in (64 * KB, 1 * MB):
        assert (fig2.bandwidth(size, "CREATE+DEL")
                > fig3.bandwidth(size, "READ")), f"C3 fails at {size}"

    # C4 — the NFS 1 MB dip.
    assert fig3.bandwidth(1 * MB, "READ") < fig3.bandwidth(64 * KB, "READ")
    assert fig3.bandwidth(1 * MB, "CREATE") < fig3.bandwidth(64 * KB, "CREATE")

    # Overall headline: "outperforms ... by more than a factor of three".
    total_bullet = sum(fig2.delay(s, "READ") for s in PAPER_SIZES)
    total_nfs = sum(fig3.delay(s, "READ") for s in PAPER_SIZES)
    assert total_nfs > 3.0 * total_bullet
