"""A7 — the append pathology and the log server (§2).

"Each append to a log file, for example, would require the whole file
to be copied. ... For log files we have implemented a separate server."

We append 100-byte records to a growing log two ways:

* naive Bullet: BULLET.MODIFY derives a new file per append (server-side
  whole-file copy — already better than shipping the file both ways,
  and still O(file));
* the log server: O(record) tail-block writes.

The naive cost must grow with log length; the log server's must not.
"""

from repro.bench import make_rig, timed
from repro.disk import VirtualDisk
from repro.logsvc import LogServer
from repro.sim import run_process
from repro.units import to_msec

from conftest import run_once, save_result

RECORD = b"x" * 256
APPENDS = 600
WINDOW = 40  # measure the mean of the first/last WINDOW appends


def naive_bullet_appends(rig):
    env, client = rig.env, rig.bullet_client
    _t, cap = timed(env, client.create(b"", 1))
    per_append = []
    for _ in range(APPENDS):
        def append(cap=cap):
            size = yield from client.size(cap)
            new_cap = yield from client.modify(cap, size, 0, RECORD, 1)
            yield from client.delete(cap)
            return new_cap

        elapsed, cap = timed(env, append())
        per_append.append(elapsed)
    return per_append


def log_server_appends(rig):
    env = rig.env
    disk = VirtualDisk(env, rig.testbed.disk, name="log-disk")
    logs = LogServer(env, disk, rig.testbed, transport=rig.rpc)
    logs.format()
    run_process(env, logs.boot())
    from repro.net import RpcRequest
    from repro.logsvc import LOG_OPCODES

    cap = run_process(env, logs.create_log())
    per_append = []
    for _ in range(APPENDS):
        def append():
            yield env.process(rig.rpc.trans(
                logs.port,
                RpcRequest(opcode=LOG_OPCODES["APPEND"], cap=cap, body=RECORD),
            ))

        elapsed, _ = timed(env, append())
        per_append.append(elapsed)
    return per_append


def test_log_append_vs_naive_bullet(benchmark):
    def experiment():
        rig = make_rig(with_nfs=False, background_load=False)
        return naive_bullet_appends(rig), log_server_appends(rig)

    naive, logged = run_once(benchmark, experiment)
    naive_early = sum(naive[:WINDOW]) / WINDOW
    naive_late = sum(naive[-WINDOW:]) / WINDOW
    log_early = sum(logged[:WINDOW]) / WINDOW
    log_late = sum(logged[-WINDOW:]) / WINDOW
    save_result(
        "log_append",
        "\n".join([
            f"A7: appending {len(RECORD)}-byte records, naive Bullet vs log server",
            "=" * 62,
            f"{APPENDS} appends; window = {WINDOW}",
            f"naive Bullet : first {to_msec(naive_early):8.2f} ms/append, "
            f"last {to_msec(naive_late):8.2f} ms/append "
            f"(growth {naive_late / naive_early:.1f}x)",
            f"log server   : first {to_msec(log_early):8.2f} ms/append, "
            f"last {to_msec(log_late):8.2f} ms/append "
            f"(growth {log_late / log_early:.1f}x)",
            f"final-append advantage: {naive_late / log_late:.1f}x",
        ]),
    )
    # The naive cost grows with the file; the log server's stays flat.
    assert naive_late > 2 * naive_early
    assert log_late < 1.5 * log_early
    assert naive_late > 3 * log_late
