"""A10 — ablation: what lockf hid.

The paper disabled the Sun 3/50's client caching with lockf to measure
the *server*. This ablation turns that caching back on and shows:

1. warm NFS re-reads become fast (the measurement would have been
   meaningless, as the authors knew);
2. cold reads and all writes are unchanged — the architectural gap the
   paper measures is still there;
3. the consistency price: an NFS client cache can serve **stale** data
   inside its attribute-timeout window, which the Bullet/directory
   design structurally cannot (a capability names immutable bytes).
"""

from repro.bench import make_rig, timed
from repro.nfs import NfsClient
from repro.sim import run_process
from repro.units import KB, to_msec

from conftest import run_once, save_result

SIZE = 64 * KB


def measure(client, env, path, payload):
    def write():
        fd = yield from client.creat(path)
        yield from client.write(fd, payload)
        yield from client.close(fd)

    write_delay, _ = timed(env, write())

    def read():
        fd = yield from client.open(path)
        yield from client.lseek(fd, 0)
        data = yield from client.read(fd, len(payload))
        assert data == payload
        yield from client.close(fd)

    cold_delay, _ = timed(env, read())
    warm_delay, _ = timed(env, read())
    return write_delay, cold_delay, warm_delay


def test_ablation_lockf(benchmark):
    def experiment():
        rig = make_rig(with_bullet=False, nfs_churn=False,
                       background_load=False)
        env = rig.env
        lockf_client = rig.nfs_client  # caching off, as in the paper
        caching_client = NfsClient(env, rig.testbed, rpc=rig.rpc,
                                   server_port=rig.nfs.port,
                                   client_caching=True)
        payload = bytes(SIZE)
        lockf = measure(lockf_client, env, "/lockf.bin", payload)
        cached = measure(caching_client, env, "/cached.bin", payload)
        return lockf, cached

    lockf, cached = run_once(benchmark, experiment)
    lines = ["A10: NFS with lockf (paper's setup) vs client caching on",
             "=" * 62,
             f"{'':>12} {'write (ms)':>12} {'cold read':>12} {'warm read':>12}"]
    for label, (w, c, warm) in (("lockf", lockf), ("caching", cached)):
        lines.append(f"{label:>12} {to_msec(w):>12.1f} {to_msec(c):>12.1f} "
                     f"{to_msec(warm):>12.1f}")
    lines.append("")
    lines.append("caching makes warm re-reads ~local, leaves cold reads and")
    lines.append("writes untouched — and buys a stale-read window NFS-style")
    lines.append("caching cannot avoid (see tests/test_nfs_client_cache.py).")
    save_result("ablation_lockf", "\n".join(lines))

    w_l, c_l, warm_l = lockf
    w_c, c_c, warm_c = cached
    # Warm reads collapse with caching...
    assert warm_c < warm_l / 5
    # ...while cold reads and writes are within noise of each other.
    assert 0.8 < c_c / c_l < 1.2
    assert 0.8 < w_c / w_l < 1.2
