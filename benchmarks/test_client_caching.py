"""A9 — client caching of immutable files lifts the scalability ceiling.

§5: "Whole file transfer minimizes the load on the file server and on
the network, allowing the service to be used on a larger scale" and
"Client caching of immutable files is straightforward."

A5 showed the single-threaded server saturating around 170 reads/s.
Here each client gets a :class:`CachingBulletClient`: once a client has
a file, re-reads cost **nothing** — no RPC, no server time — and are
trivially consistent because the file can never change. Aggregate
throughput then scales with the client count instead of the server.
"""

from repro.bench import make_rig, timed
from repro.client import CachingBulletClient
from repro.sim import SeededStream, run_process
from repro.units import KB

from conftest import run_once, save_result

CLIENTS = [1, 4, 16]
HOT_FILES = 12
FILE_SIZE = 4 * KB
DURATION = 10.0


def run_with(caching: bool):
    results = {}
    for n in CLIENTS:
        rig = make_rig(with_nfs=False, background_load=False)
        env = rig.env
        caps = [run_process(env, rig.bullet_client.create(bytes(FILE_SIZE), 1))
                for _ in range(HOT_FILES)]
        completed = [0] * n

        def client_loop(index):
            stub = rig.bullet_client
            if caching:
                stub = CachingBulletClient(rig.bullet_client,
                                           capacity_bytes=HOT_FILES * FILE_SIZE)
            stream = SeededStream(index, "picks")
            while True:
                cap = caps[stream.zipf_index(HOT_FILES)]
                yield env.process(stub.read(cap))
                completed[index] += 1
                # A little client-side compute between reads, so a cache
                # hit loop does not spin in zero simulated time.
                yield env.timeout(2e-3)

        start = env.now
        for index in range(n):
            env.process(client_loop(index))
        env.run(until=start + DURATION)
        results[n] = sum(completed) / DURATION
    return results


def test_client_caching_scalability(benchmark):
    def experiment():
        return run_with(caching=False), run_with(caching=True)

    uncached, cached = run_once(benchmark, experiment)
    lines = ["A9: aggregate read throughput, with and without the",
             "immutable-file client cache (hot set of 12 x 4 KB files)",
             "=" * 60,
             f"{'clients':>8} {'no cache (ops/s)':>18} {'client cache (ops/s)':>22}"]
    for n in CLIENTS:
        lines.append(f"{n:>8} {uncached[n]:>18.1f} {cached[n]:>22.1f}")
    save_result("client_caching", "\n".join(lines))

    # Without caching the server saturates; with caching throughput
    # keeps scaling with clients (hits are free and always consistent).
    assert cached[16] > 3 * uncached[16]
    assert cached[16] > 3 * cached[1]
    # At a single client the two are comparable once warm (the cache
    # can only help).
    assert cached[1] >= uncached[1] * 0.9
