"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one table or figure of the paper (or one
ablation from DESIGN.md §6). Results are printed and also written to
``benchmarks/results/<name>.txt`` so ``pytest benchmarks/
--benchmark-only`` leaves the regenerated artifacts on disk.

pytest-benchmark measures the *wall time of running the simulation*;
the scientific output is the *simulated* delays/bandwidths inside the
result files.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Write a regenerated table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    result. Simulations are deterministic, so one round suffices."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
