"""A1 — ablation: contiguous extents vs scattered blocks, network held
constant.

The §2 design argument is that contiguous placement turns a file read
into one seek + one rotational latency + streaming transfer, where the
traditional block model pays per-block positioning and per-block
metadata. Both servers here sit on identical disks; we measure the
**server-side disk path only** (local planes, cold caches), so the RPC
difference is excluded and the layout effect is isolated.
"""

from repro.bench import make_rig, timed
from repro.nfs import MODE_FILE
from repro.sim import run_process
from repro.units import KB, MB, to_msec

from conftest import run_once, save_result

SIZES = [64 * KB, 256 * KB, 1 * MB]


def test_ablation_contiguous_vs_scattered(benchmark):
    def experiment():
        rig = make_rig(background_load=False, nfs_churn=False)
        env = rig.env
        results = {}
        for size in SIZES:
            # Bullet: contiguous extent, cold cache -> one disk access.
            cap = run_process(env, rig.bullet.create(bytes(size), 2))
            rig.bullet.evict(cap.object)
            bullet_cold, _ = timed(env, rig.bullet.read(cap))

            # FFS: same bytes scattered per cylinder-group policy; read
            # with an empty buffer cache -> per-block disk accesses.
            fs = rig.nfs.fs
            inum, _inode = run_process(env, fs.alloc_inode(MODE_FILE))
            run_process(env, fs.write(inum, 0, bytes(size)))
            rig.nfs.cache._blocks.clear()  # cold cache
            ffs_cold, _ = timed(env, fs.read(inum, 0, size))
            results[size] = (bullet_cold, ffs_cold)
        return results

    results = run_once(benchmark, experiment)
    lines = ["Ablation A1: contiguous vs scattered layout (cold server reads)",
             "=" * 66,
             f"{'size':>10} {'contiguous (ms)':>18} {'scattered (ms)':>18} {'ratio':>8}"]
    for size, (bullet_cold, ffs_cold) in results.items():
        lines.append(
            f"{size:>10} {to_msec(bullet_cold):>18.1f} "
            f"{to_msec(ffs_cold):>18.1f} {ffs_cold / bullet_cold:>7.1f}x"
        )
    save_result("ablation_contiguity", "\n".join(lines))

    # Scattered layout must lose, and lose harder as files grow.
    ratios = [ffs / bullet for bullet, ffs in results.values()]
    assert all(r > 1.3 for r in ratios), ratios
    assert ratios[-1] >= ratios[0] * 0.9  # no collapse at large sizes
