"""A3 — ablation: the whole-file RAM cache.

Two measurements:

1. Warm vs cold read latency per file size (the value of "the file will
   be completely in memory").
2. LRU vs FIFO eviction hit rate under a Zipf-popular trace replayed
   through a capacity-limited :class:`BulletCache` — the paper chose LRU
   ("an age field to implement an LRU cache strategy").
"""

from repro.bench import TraceGenerator, make_rig, timed
from repro.core import BulletCache
from repro.sim import run_process
from repro.units import KB, MB, to_msec

from conftest import run_once, save_result


def warm_vs_cold(rig):
    env, client = rig.env, rig.bullet_client
    results = {}
    for size in (4 * KB, 64 * KB, 1 * MB):
        _t, cap = timed(env, client.create(bytes(size), 2))
        rig.bullet.evict(cap.object)
        cold, _ = timed(env, client.read(cap))
        warm, _ = timed(env, client.read(cap))
        timed(env, client.delete(cap))
        results[size] = (cold, warm)
    return results


def lru_vs_fifo_hit_rate(capacity=256 * KB, n_ops=600):
    rates = {}
    for policy in ("lru", "fifo"):
        trace = TraceGenerator(seed=13).generate(n_ops=n_ops, prepopulate=40)
        cache = BulletCache(capacity, rnode_count=512, policy=policy)
        stored = {}
        for op in trace:
            if op.kind == "create":
                stored[op.file_id] = op.size
                if cache.peek(op.file_id) is None and op.size <= capacity:
                    cache.insert(op.file_id, bytes(min(op.size, capacity)))
            elif op.kind == "read":
                rnode = cache.lookup(op.file_id)
                if rnode is None and stored[op.file_id] <= capacity:
                    cache.insert(op.file_id, bytes(stored[op.file_id]))
                elif rnode is not None:
                    cache.touch(rnode)
            else:
                cache.remove(op.file_id)
                stored.pop(op.file_id, None)
        rates[policy] = cache.stats.hit_rate
    return rates


def test_ablation_cache(benchmark):
    def experiment():
        rig = make_rig(with_nfs=False, background_load=False)
        return warm_vs_cold(rig), lru_vs_fifo_hit_rate()

    latencies, rates = run_once(benchmark, experiment)
    lines = ["Ablation A3: the whole-file RAM cache", "=" * 56,
             f"{'size':>10} {'cold read (ms)':>16} {'warm read (ms)':>16} {'speedup':>9}"]
    for size, (cold, warm) in latencies.items():
        lines.append(f"{size:>10} {to_msec(cold):>16.1f} {to_msec(warm):>16.1f} "
                     f"{cold / warm:>8.1f}x")
    lines.append("")
    lines.append(f"Zipf-trace hit rate: LRU {rates['lru']:.3f} "
                 f"vs FIFO {rates['fifo']:.3f}")
    save_result("ablation_cache", "\n".join(lines))

    for size, (cold, warm) in latencies.items():
        assert warm < cold, f"cache did not help at {size}"
    # Small files: the disk positioning dominates, so the cache wins big
    # (the residual warm cost is the RPC itself).
    cold4, warm4 = latencies[4 * KB]
    assert cold4 / warm4 > 2
    # LRU should match or beat FIFO on a popularity-skewed trace.
    assert rates["lru"] >= rates["fifo"] - 0.01
