"""A5 — quantitative scalability: throughput vs concurrent clients.

§2: "Scalability involves ... quantitative scalability — there may be
thousands of processors accessing files." The contended resources are
the shared Ethernet and the single-threaded server; aggregate
throughput should rise with offered load and then saturate (not
collapse).
"""

from repro.bench import throughput_vs_clients
from repro.units import KB

from conftest import run_once, save_result

CLIENTS = [1, 2, 4, 8, 16]


def test_scalability_throughput_vs_clients(benchmark):
    def experiment():
        return throughput_vs_clients(CLIENTS, file_size=4 * KB, duration=10.0)

    results = run_once(benchmark, experiment)
    lines = ["A5: aggregate Bullet read throughput vs concurrent clients",
             "=" * 60,
             f"{'clients':>8} {'reads/sec':>12} {'per-client':>12}"]
    for n, ops in results.items():
        lines.append(f"{n:>8} {ops:>12.1f} {ops / n:>12.1f}")
    save_result("scalability_clients", "\n".join(lines))

    # A second client fills the idle client-side think time, raising
    # aggregate throughput; the single-threaded server (it stays busy
    # through each reply transmission, §3) saturates soon after.
    assert results[2] > 1.1 * results[1]
    # Saturation is stable: offered load x8 must not collapse throughput.
    assert results[16] > 0.9 * results[2]
    # Per-client rate degrades gracefully under saturation.
    assert results[16] / 16 < results[1]
