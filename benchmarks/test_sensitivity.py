"""A11 — sensitivity analysis: the claims vs calibration uncertainty.

Our absolute constants (disk transfer rate, per-packet software
overhead, NFS data-path cost) are calibrated estimates of 1989 hardware.
This sweep perturbs each by large factors and checks that the paper's
*qualitative* claims — Bullet wins reads at every size, Bullet write
bandwidth beats NFS read bandwidth at 64 KB+ — are not artifacts of one
lucky constant.
"""

from dataclasses import replace

from repro.bench import bullet_figure2, make_rig, nfs_figure3
from repro.profiles import DEFAULT_TESTBED
from repro.units import KB, MB

from conftest import run_once, save_result

SIZES = [1 * KB, 64 * KB, 1 * MB]


def perturbed_testbed(disk_rate_factor=1.0, overhead_factor=1.0,
                      nfs_cost_factor=1.0):
    tb = DEFAULT_TESTBED
    return replace(
        tb,
        disk=replace(tb.disk,
                     transfer_rate=tb.disk.transfer_rate * disk_rate_factor),
        ethernet=replace(tb.ethernet,
                         per_packet_overhead=tb.ethernet.per_packet_overhead
                         * overhead_factor),
        nfs=replace(tb.nfs,
                    data_cost_per_byte_client=tb.nfs.data_cost_per_byte_client
                    * nfs_cost_factor,
                    data_cost_per_byte_server=tb.nfs.data_cost_per_byte_server
                    * nfs_cost_factor),
    )


SWEEP = {
    "baseline": {},
    "disk x0.5": {"disk_rate_factor": 0.5},
    "disk x2.0": {"disk_rate_factor": 2.0},
    "pkt-overhead x0.5": {"overhead_factor": 0.5},
    "pkt-overhead x2.0": {"overhead_factor": 2.0},
    "nfs-cpu x0.5": {"nfs_cost_factor": 0.5},
    "nfs-cpu x1.5": {"nfs_cost_factor": 1.5},
}


def one_config(**factors):
    testbed = perturbed_testbed(**factors)
    rig = make_rig(testbed=testbed)
    fig2 = bullet_figure2(rig, sizes=SIZES, repeats=2)
    fig3 = nfs_figure3(rig, sizes=SIZES, repeats=2)
    speedups = {size: fig3.delay(size, "READ") / fig2.delay(size, "READ")
                for size in SIZES}
    c3 = {size: fig2.bandwidth(size, "CREATE+DEL") > fig3.bandwidth(size, "READ")
          for size in (64 * KB, 1 * MB)}
    return speedups, c3


def test_sensitivity_of_claims(benchmark):
    def experiment():
        return {label: one_config(**factors)
                for label, factors in SWEEP.items()}

    sweep = run_once(benchmark, experiment)
    lines = ["A11: claim robustness under calibration perturbations",
             "=" * 72,
             f"{'config':<20} " + "".join(f"{s:>12}" for s in
                                          ("C1@1KB", "C1@64KB", "C1@1MB"))
             + f"{'C3 holds':>10}"]
    for label, (speedups, c3) in sweep.items():
        lines.append(
            f"{label:<20} "
            + "".join(f"{speedups[s]:>11.1f}x" for s in SIZES)
            + f"{'yes' if all(c3.values()) else 'NO':>10}"
        )
    save_result("sensitivity", "\n".join(lines))

    for label, (speedups, c3) in sweep.items():
        # Direction: Bullet clearly wins reads everywhere, every config.
        assert all(ratio > 1.8 for ratio in speedups.values()), (label, speedups)
        # C3 (write bw > NFS read bw above 64 KB) is structural.
        assert all(c3.values()), (label, c3)
    # The 3-6x band itself holds at the baseline (checked strictly in E6);
    # perturbed configs stay within a sane neighbourhood of it.
    for label, (speedups, _c3) in sweep.items():
        assert max(speedups.values()) < 12, (label, speedups)
