"""A6 — availability: primary-disk failure and whole-disk recovery.

§3: "If the main disk fails, the file server can proceed uninterruptedly
by using the other disk. Recovery is simply done by copying the complete
disk."

We run a read workload, kill the primary mid-run, verify every read
still succeeds (failover), then measure the recovery copy and verify
the recovered replica is bit-identical where it matters.
"""

from dataclasses import replace

from repro.bench import make_rig, timed
from repro.profiles import DEFAULT_TESTBED
from repro.sim import run_process
from repro.units import KB, MB

from conftest import run_once, save_result


def test_failover_and_recovery(benchmark):
    def experiment():
        # A smaller disk keeps the full recovery copy measurable.
        disk = replace(DEFAULT_TESTBED.disk, capacity_bytes=64 * MB,
                       cylinders=256)
        testbed = replace(DEFAULT_TESTBED, disk=disk)
        rig = make_rig(testbed=testbed, with_nfs=False, background_load=False)
        env, server, client = rig.env, rig.bullet, rig.bullet_client

        caps = []
        for i in range(10):
            _t, cap = timed(env, client.create(bytes([i]) * (64 * KB), 2))
            caps.append(cap)
        # Cold caches so post-failure reads must hit the surviving disk.
        for cap in caps:
            server.evict(cap.object)

        primary = server.mirror.disks[0]
        primary.fail("A6 injected failure")
        failover_reads = 0
        for i, cap in enumerate(caps):
            _t, data = timed(env, client.read(cap))
            assert data == bytes([i]) * (64 * KB)
            failover_reads += 1

        # Recovery: whole-disk copy back onto the repaired drive.
        t0 = env.now
        blocks = run_process(env, server.mirror.recover(primary))
        recovery_time = env.now - t0

        # The recovered replica serves reads again as primary.
        assert server.mirror.primary is primary
        for cap in caps:
            server.evict(cap.object)
        _t, data = timed(env, client.read(caps[0]))
        assert data == bytes([0]) * (64 * KB)
        return failover_reads, blocks, recovery_time

    failover_reads, blocks, recovery_time = run_once(benchmark, experiment)
    save_result(
        "failover_recovery",
        "\n".join([
            "A6: primary failure, failover, whole-disk recovery",
            "=" * 56,
            f"reads served during failover : {failover_reads}/10",
            f"recovery copy                : {blocks} blocks "
            f"({blocks * 512 // MB} MB)",
            f"recovery time (simulated)    : {recovery_time:.1f} s",
        ]),
    )
    assert failover_reads == 10
    assert recovery_time > 0
