"""E7 — the headline "factor of three" on a realistic workload.

The abstract: "The Bullet server is an innovative file server that
outperforms traditional file servers like SUN's NFS by more than a
factor of three."

We replay one trace with the cited size distribution (median 1 KB, 99 %
< 64 KB) and a read-heavy op mix against both servers and compare total
completion time.
"""

from repro.bench import FileSizeDistribution, TraceGenerator, make_rig, timed
from repro.units import KB

from conftest import run_once, save_result


def replay_bullet(rig, trace):
    env, client = rig.env, rig.bullet_client
    caps = {}
    total = 0.0
    for op in trace:
        if op.kind == "create":
            elapsed, cap = timed(env, client.create(bytes(op.size), 2))
            caps[op.file_id] = cap
        elif op.kind == "read":
            elapsed, _ = timed(env, client.read(caps[op.file_id]))
        else:
            elapsed, _ = timed(env, client.delete(caps.pop(op.file_id)))
        total += elapsed
    return total


def replay_nfs(rig, trace):
    env, client = rig.env, rig.nfs_client
    total = 0.0
    for op in trace:
        path = f"/f{op.file_id}"
        if op.kind == "create":
            def create():
                fd = yield from client.creat(path)
                yield from client.write(fd, bytes(op.size))
                yield from client.close(fd)

            elapsed, _ = timed(env, create())
        elif op.kind == "read":
            def read():
                fd = yield from client.open(path)
                yield from client.lseek(fd, 0)
                yield from client.read(fd, op.size)
                yield from client.close(fd)

            elapsed, _ = timed(env, read())
        else:
            elapsed, _ = timed(env, client.unlink(path))
        total += elapsed
    return total


def test_workload_replay_factor_of_three(benchmark):
    def experiment():
        sizes = FileSizeDistribution(maximum=256 * KB)
        trace = TraceGenerator(seed=7, sizes=sizes).generate(
            n_ops=120, prepopulate=20
        )
        rig = make_rig()
        bullet_time = replay_bullet(rig, trace)
        nfs_time = replay_nfs(rig, trace)
        return trace, bullet_time, nfs_time

    trace, bullet_time, nfs_time = run_once(benchmark, experiment)
    ratio = nfs_time / bullet_time
    reads = sum(1 for op in trace if op.kind == "read")
    creates = sum(1 for op in trace if op.kind == "create")
    deletes = sum(1 for op in trace if op.kind == "delete")
    save_result(
        "workload_replay",
        "\n".join([
            "Realistic-workload replay (E7)",
            "=" * 50,
            f"trace: {len(trace)} ops ({creates} create / {reads} read / "
            f"{deletes} delete), sizes median 1KB, 99% < 64KB",
            f"Bullet total completion: {bullet_time * 1000:10.1f} ms",
            f"NFS    total completion: {nfs_time * 1000:10.1f} ms",
            f"speedup: {ratio:.2f}x (paper claims 'more than a factor of three')",
        ]),
    )
    assert ratio > 3.0, f"overall speedup only {ratio:.2f}x"
