"""E4/E5 — Figure 3: SUN NFS READ and CREATE, delay (a) and bandwidth
(b), for file sizes 1 byte … 1 Mbyte.

Measurement conditions of §4: Sun 3/50 client with local caching
disabled via lockf, Sun 3/180-class server with a 3 MB buffer cache and
one disk (write-through), shared departmental load on server and wire.
"""

from repro.bench import PAPER_SIZES, make_rig, nfs_figure3
from repro.units import KB, MB

from conftest import run_once, save_result


def test_fig3_nfs_read_and_create(benchmark):
    def experiment():
        rig = make_rig(with_bullet=False)
        return nfs_figure3(rig, repeats=3)

    table = run_once(benchmark, experiment)
    save_result(
        "fig3_nfs",
        table.render_delay() + "\n\n" + table.render_bandwidth(),
    )

    # Shape assertions from the paper. Sub-KB NFS operations are
    # dominated by synchronous metadata disk writes whose exact cost
    # varies with arm position, so allow 15% jitter.
    for column in ("READ", "CREATE"):
        delays = [table.delay(size, column) for size in PAPER_SIZES]
        for earlier, later in zip(delays, delays[1:]):
            assert earlier <= later * 1.15, f"{column} delay not monotone"
    # The paper's explicit observation (C4): "reading and creating
    # 1 Mbyte NFS files result in lower bandwidths than reading and
    # creating 64 Kbyte NFS files."
    assert table.bandwidth(1 * MB, "READ") < table.bandwidth(64 * KB, "READ")
    assert table.bandwidth(1 * MB, "CREATE") < table.bandwidth(64 * KB, "CREATE")
    # Synchronous per-block writes make CREATE much slower than READ.
    assert table.delay(64 * KB, "CREATE") > 2 * table.delay(64 * KB, "READ")
