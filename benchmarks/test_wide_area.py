"""A8 — geographic scalability: reads across a wide-area gateway.

§2.1: Amoeba ran "in four different countries"; gateways make remote
servers transparently reachable, and whole-file transfer keeps the
number of wide-area round trips at one per file — the property that
made the design usable over 1980s leased lines.

We sweep the link's one-way latency and measure the remote-read penalty
for a small and a large file.
"""

from repro.client import BulletClient
from repro.net import Ethernet, RpcTransport, WideAreaProfile, connect_sites
from repro.profiles import CpuProfile, DEFAULT_TESTBED, EthernetProfile
from repro.core import BulletServer
from repro.disk import MirroredDiskSet, VirtualDisk
from repro.sim import Environment, run_process
from repro.units import KB, to_msec

from conftest import run_once, save_result

LATENCIES_MS = [5, 15, 50, 150]
SIZES = [1 * KB, 64 * KB]


def one_latency(latency_ms):
    env = Environment()
    eth_a = Ethernet(env, EthernetProfile())
    rpc_a = RpcTransport(env, eth_a, CpuProfile())
    eth_b = Ethernet(env, EthernetProfile())
    rpc_b = RpcTransport(env, eth_b, CpuProfile())
    connect_sites(env, rpc_a, rpc_b,
                  WideAreaProfile(propagation_delay=latency_ms / 1000.0))
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"d{i}")
             for i in (0, 1)]
    server = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED,
                          transport=rpc_b)
    server.format()
    run_process(env, server.boot())
    local = BulletClient(env, rpc_b, server.port)
    remote = BulletClient(env, rpc_a, server.port)

    results = {}
    for size in SIZES:
        cap = run_process(env, local.create(bytes(size), 2))
        t0 = env.now
        run_process(env, local.read(cap))
        local_delay = env.now - t0
        t0 = env.now
        run_process(env, remote.read(cap))
        remote_delay = env.now - t0
        results[size] = (local_delay, remote_delay)
    return results


def test_wide_area_read_penalty(benchmark):
    def experiment():
        return {lat: one_latency(lat) for lat in LATENCIES_MS}

    sweep = run_once(benchmark, experiment)
    lines = ["A8: whole-file read across a wide-area gateway",
             "=" * 70,
             f"{'one-way (ms)':>13} {'size':>8} {'local (ms)':>12} "
             f"{'remote (ms)':>12} {'penalty (ms)':>13}"]
    for lat, by_size in sweep.items():
        for size, (local_delay, remote_delay) in by_size.items():
            lines.append(
                f"{lat:>13} {size:>8} {to_msec(local_delay):>12.1f} "
                f"{to_msec(remote_delay):>12.1f} "
                f"{to_msec(remote_delay - local_delay):>13.1f}"
            )
    save_result("wide_area", "\n".join(lines))

    for lat, by_size in sweep.items():
        for size, (local_delay, remote_delay) in by_size.items():
            # The remote penalty includes at least two one-way hops.
            assert remote_delay >= local_delay + 2 * lat / 1000.0
    # Whole-file transfer: the *extra* cost of distance is (almost)
    # size-independent — one wide-area exchange per file, so the penalty
    # for 64 KB is dominated by the same 2 hops plus serialization.
    for lat, by_size in sweep.items():
        small_penalty = by_size[1 * KB][1] - by_size[1 * KB][0]
        large_penalty = by_size[64 * KB][1] - by_size[64 * KB][0]
        serialization = (64 * KB * 8) / WideAreaProfile().bandwidth_bits
        assert large_penalty < small_penalty + serialization + 0.1
