"""E1 — Figure 1: the Bullet disk layout.

Fig. 1 is a structural picture (inode table + contiguous files and
holes), not a measurement; we regenerate it from a *live* volume after
a small create/delete workload, so the rendered holes are real.
"""

from repro.bench import make_rig, timed
from repro.units import KB

from conftest import run_once, save_result


def test_fig1_disk_layout(benchmark):
    def experiment():
        rig = make_rig(with_nfs=False, background_load=False)
        env, client = rig.env, rig.bullet_client
        caps = []
        for i in range(6):
            _t, cap = timed(env, client.create(bytes([i]) * (8 * KB), 2))
            caps.append(cap)
        # Delete two files to open holes between the survivors.
        timed(env, client.delete(caps[1]))
        timed(env, client.delete(caps[3]))
        return rig.bullet.render_layout()

    art = run_once(benchmark, experiment)
    save_result("fig1_layout", art)

    assert "Disk Descriptor" in art
    assert "Inode Table" in art
    assert "block size   = 512" in art
    # Live files and at least one hole between them must be visible.
    assert "file (inode" in art
    assert "free" in art
