"""A4 — ablation: fragmentation and compaction (§3's trade-off).

"In effect, the conscious choice of using contiguous files may require
buying, say, an 800 MB disk to store 500 MB worth of files (the rest
being lost to fragmentation unless compaction is done)."

We churn create/delete traffic on a small volume until a large
allocation fails purely from fragmentation, under first-fit (the
paper's choice) and best-fit; then run the 3 a.m. compaction and show
the allocation succeeds. Metrics: external fragmentation, largest hole,
usable fraction at failure, compaction cost.
"""

from dataclasses import replace

from repro.bench import make_rig, timed
from repro.core import compact_disk
from repro.errors import NoSpaceError
from repro.profiles import DEFAULT_TESTBED
from repro.sim import SeededStream, run_process
from repro.units import KB, MB, to_msec

from conftest import run_once, save_result


def churn_until_fragmented(rig, stream, target_alloc):
    """Create/delete random-size files until ``target_alloc`` bytes no
    longer fit contiguously; returns fragmentation metrics."""
    env, server = rig.env, rig.bullet
    live = []
    while True:
        free_bytes = server.disk_free.free_units * server.layout.block_size
        largest = server.disk_free.largest_hole * server.layout.block_size
        if free_bytes >= target_alloc and largest < target_alloc:
            return {
                "files": len(live),
                "free_bytes": free_bytes,
                "largest_hole": largest,
                "fragmentation": server.disk_free.external_fragmentation(),
            }
        size = int(stream.lognormal_bounded(24 * KB, 1.2, 1 * KB, 256 * KB))
        if free_bytes < target_alloc or stream.random() < 0.35 and live:
            if not live:
                raise AssertionError("volume exhausted without fragmenting")
            _t, _ = timed(env, server.delete(live.pop(stream.randint(0, len(live) - 1))))
            continue
        try:
            _t, cap = timed(env, server.create(bytes(size), 1))
        except NoSpaceError:
            _t, _ = timed(env, server.delete(live.pop(stream.randint(0, len(live) - 1))))
            continue
        live.append(cap)


def run_strategy(strategy, target_alloc):
    small_disk = replace(DEFAULT_TESTBED.disk, capacity_bytes=24 * MB,
                         cylinders=96)
    testbed = replace(DEFAULT_TESTBED, disk=small_disk)
    rig = make_rig(testbed=testbed, with_nfs=False, background_load=False)
    # Rebuild the free list under the requested strategy.
    from repro.core import BulletServer
    from repro.disk import MirroredDiskSet

    if strategy != "first_fit":
        rig.bullet.crash()
        server = BulletServer(rig.env, rig.bullet.mirror, testbed,
                              name="bullet-bf", alloc_strategy=strategy)
        rig.env.run(until=rig.env.process(server.boot()))
        rig.bullet = server
    env, server = rig.env, rig.bullet
    stream = SeededStream(31, f"churn-{strategy}")
    metrics = churn_until_fragmented(rig, stream, target_alloc)
    # The large create fails now...
    try:
        run_process(env, server.create(bytes(target_alloc), 1))
        failed = False
    except NoSpaceError:
        failed = True
    # ...compaction fixes it.
    report = run_process(env, compact_disk(server))
    cap = run_process(env, server.create(bytes(target_alloc), 1))
    ok = run_process(env, server.size(cap)) == target_alloc
    return metrics, failed, report, ok


def test_ablation_fragmentation_and_compaction(benchmark):
    target = 1 * MB

    def experiment():
        return {s: run_strategy(s, target) for s in ("first_fit", "best_fit")}

    outcome = run_once(benchmark, experiment)
    lines = ["Ablation A4: fragmentation and the 3 a.m. compaction",
             "=" * 64]
    for strategy, (metrics, failed, report, ok) in outcome.items():
        lines.extend([
            f"[{strategy}] at first unfittable {target // KB} KB allocation:",
            f"  live files            : {metrics['files']}",
            f"  free bytes            : {metrics['free_bytes']}",
            f"  largest hole (bytes)  : {metrics['largest_hole']}",
            f"  external fragmentation: {metrics['fragmentation']:.3f}",
            f"  large create failed   : {failed}",
            f"  compaction: moved {report.files_moved} files "
            f"({report.blocks_moved} blocks) in {to_msec(report.duration):.0f} ms sim",
            f"  post-compaction create of {target // KB} KB: {'OK' if ok else 'FAILED'}",
            "",
        ])
    save_result("ablation_fragmentation", "\n".join(lines))

    for strategy, (metrics, failed, report, ok) in outcome.items():
        assert failed, f"{strategy}: fragmentation never blocked the allocation"
        assert metrics["free_bytes"] >= target
        assert ok, f"{strategy}: compaction did not enable the allocation"
        assert report.fragmentation_after <= report.fragmentation_before
