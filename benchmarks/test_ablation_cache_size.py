"""A12 — ablation: how much server RAM does the whole-file cache need?

§1 motivates the design with big memories ("memory sizes of at least 16
Megabytes are common today, enough to hold most files encountered in
practice"); §3 gives *all* remaining RAM to the cache. This sweep
replays one Zipf-popular trace (sizes per the cited distribution)
against servers with different cache sizes and reports hit rate and
mean read latency — showing where the paper's 14 MB lands on the curve.
"""

from dataclasses import replace

from repro.bench import TraceGenerator, make_rig, timed
from repro.profiles import DEFAULT_TESTBED
from repro.sim import run_process
from repro.units import KB, MB, to_msec

from conftest import run_once, save_result

CACHE_SIZES = [512 * KB, 2 * MB, 8 * MB, 14 * MB]


def run_cache_size(cache_bytes, trace):
    bullet_profile = replace(DEFAULT_TESTBED.bullet,
                             ram_bytes=cache_bytes
                             + DEFAULT_TESTBED.bullet.reserved_ram_bytes)
    testbed = replace(DEFAULT_TESTBED, bullet=bullet_profile)
    rig = make_rig(testbed=testbed, with_nfs=False, background_load=False)
    env, server, client = rig.env, rig.bullet, rig.bullet_client
    caps = {}
    read_time = 0.0
    reads = 0
    for op in trace:
        if op.kind == "create":
            _t, caps[op.file_id] = timed(env, client.create(bytes(op.size), 1))
        elif op.kind == "read":
            elapsed, _ = timed(env, client.read(caps[op.file_id]))
            read_time += elapsed
            reads += 1
        else:
            timed(env, client.delete(caps.pop(op.file_id)))
    return server.cache.stats.hit_rate, read_time / reads


def test_ablation_cache_size(benchmark):
    def experiment():
        # A heavier size profile than the paper's median-1KB UNIX mix, so
        # the sweep actually stresses the smaller caches (the 1 KB-median
        # working set fits in half a megabyte).
        from repro.bench import FileSizeDistribution

        # maximum below the smallest swept cache: every file must fit in
        # server memory (§2's whole-file constraint).
        sizes = FileSizeDistribution(median=48 * KB, maximum=384 * KB)
        trace = TraceGenerator(seed=23, sizes=sizes, read_fraction=0.75,
                               delete_fraction=0.05).generate(
            n_ops=300, prepopulate=60)
        return {size: run_cache_size(size, trace) for size in CACHE_SIZES}

    sweep = run_once(benchmark, experiment)
    lines = ["A12: server cache size vs hit rate and mean read latency",
             "=" * 60,
             f"{'cache':>10} {'hit rate':>10} {'mean read (ms)':>16}"]
    for size, (hit_rate, mean_read) in sweep.items():
        label = f"{size // MB} MB" if size >= MB else f"{size // KB} KB"
        lines.append(f"{label:>10} {hit_rate:>10.3f} "
                     f"{to_msec(mean_read):>16.1f}")
    save_result("ablation_cache_size", "\n".join(lines))

    rates = [sweep[size][0] for size in CACHE_SIZES]
    latencies = [sweep[size][1] for size in CACHE_SIZES]
    # More cache never hurts, and the paper-scale cache serves this
    # working set almost entirely from RAM.
    assert all(a <= b + 0.01 for a, b in zip(rates, rates[1:]))
    assert all(a >= b * 0.95 for a, b in zip(latencies, latencies[1:]))
    assert rates[-1] > 0.95
    assert rates[0] < rates[-1]
