#!/usr/bin/env python3
"""Quickstart: a Bullet file server on simulated 1989 hardware.

Builds the paper's testbed — a 16.7 MHz MC68020 server with 16 MB RAM
and two mirrored 800 MB disks on a 10 Mb/s Ethernet — then exercises the
whole BULLET interface (CREATE / SIZE / READ / DELETE, plus the MODIFY
extension) from a remote client, and prints the Fig. 1 disk layout.

Run:  python examples/quickstart.py
"""

from repro import (
    DEFAULT_TESTBED,
    BulletClient,
    BulletServer,
    Environment,
    Ethernet,
    MirroredDiskSet,
    RIGHT_READ,
    RpcTransport,
    VirtualDisk,
    restrict,
    run_process,
)
from repro.errors import NotFoundError, RightsError
from repro.units import KB, to_msec


def main():
    # --- Assemble the testbed ------------------------------------------
    env = Environment()
    ethernet = Ethernet(env, DEFAULT_TESTBED.ethernet)
    rpc = RpcTransport(env, ethernet, DEFAULT_TESTBED.cpu)
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"disk{i}")
             for i in (0, 1)]
    server = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED,
                          transport=rpc)
    server.format()
    report = run_process(env, server.boot())
    print(f"server booted: {report}")

    client = BulletClient(env, rpc, server.port)

    # --- CREATE: immutable, whole-file, paranoia factor 2 --------------
    t0 = env.now
    cap = run_process(env, client.create(b"The Bullet server stores files "
                                         b"contiguously and immutably.", 2))
    print(f"\nBULLET.CREATE (P-FACTOR=2) -> {cap}")
    print(f"  delay: {to_msec(env.now - t0):.1f} ms simulated "
          f"(written through to both disks)")

    # --- SIZE then READ: the paper's retrieval protocol ----------------
    size = run_process(env, client.size(cap))
    t0 = env.now
    data = run_process(env, client.read(cap))
    print(f"BULLET.SIZE -> {size} bytes; BULLET.READ -> {data[:30]!r}... "
          f"in {to_msec(env.now - t0):.1f} ms (RAM cache hit)")

    # --- Capabilities: local restriction, server verification ----------
    read_only = restrict(cap, RIGHT_READ)
    print(f"\nrestricted locally: {read_only}")
    assert run_process(env, client.read(read_only)) == data
    try:
        run_process(env, client.delete(read_only))
    except RightsError as exc:
        print(f"  delete with read-only capability refused: {exc}")

    # --- MODIFY: derive a new version server-side ----------------------
    v2 = run_process(env, client.modify(cap, offset=len(data), delete_bytes=0,
                                        insert_data=b" (and versioned!)",
                                        p_factor=2))
    print(f"\nBULLET.MODIFY -> new file {v2.object} "
          f"(original {cap.object} untouched)")
    assert run_process(env, client.read(cap)) == data  # immutability

    # --- A bigger file, then the Fig. 1 layout picture ------------------
    big = run_process(env, client.create(bytes(64 * KB), 2))
    print("\n" + server.render_layout())

    # --- DELETE ----------------------------------------------------------
    for doomed in (cap, v2, big):
        run_process(env, client.delete(doomed))
    try:
        run_process(env, client.read(cap))
    except NotFoundError:
        print("\nfiles deleted; stale capability correctly rejected")

    print(f"\ntotal simulated time: {env.now:.3f} s; "
          f"server status: {server.status()['creates']} creates, "
          f"{server.status()['reads']} reads")


if __name__ == "__main__":
    main()
