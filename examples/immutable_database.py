#!/usr/bin/env python3
"""A database subdivided over many small immutable files (§2).

"Data bases can be subdivided over many smaller Bullet files, for
example based on the identifying keys."

A persistent B-tree: every node is one immutable Bullet file, every
update path-copies the touched nodes and yields a new root capability.
The current root is bound in the directory service; every previous root
is a free consistent snapshot. The GC sweep (object aging) reclaims the
node files that no snapshot can reach.

Run:  python examples/immutable_database.py
"""

from repro import (
    DEFAULT_TESTBED,
    BulletServer,
    DirectoryServer,
    Environment,
    LocalBulletStub,
    MirroredDiskSet,
    VirtualDisk,
    gc_sweep,
    run_process,
)
from repro.btree import ImmutableBTree


def main():
    env = Environment()
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"d{i}") for i in (0, 1)]
    bullet = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED)
    bullet.format()
    run_process(env, bullet.boot())
    stub = LocalBulletStub(bullet)
    dirs = DirectoryServer(env, VirtualDisk(env, DEFAULT_TESTBED.disk,
                                            name="dir-disk"),
                           stub, DEFAULT_TESTBED)
    dirs.format()
    run_process(env, dirs.boot())
    names = run_process(env, dirs.create_directory())

    tree = ImmutableBTree(stub, fanout=16)
    root = run_process(env, tree.empty())

    # --- Load a small employee table --------------------------------------
    people = {
        f"emp{i:03d}".encode(): f"name=Person{i};dept={i % 5}".encode()
        for i in range(120)
    }
    for key, value in people.items():
        root = run_process(env, tree.insert(root, key, value))
    run_process(env, dirs.append(names, "employees.db", root))
    nodes = run_process(env, tree.node_count(root))
    print(f"loaded {len(people)} records into {nodes} immutable node files, "
          f"height {run_process(env, tree.height(root))}")

    # --- Point and range queries ------------------------------------------
    print(f"\nemp042 -> {run_process(env, tree.get(root, b'emp042'))!r}")
    window = run_process(env, tree.items(root, lo=b"emp010", hi=b"emp015"))
    print("range emp010..emp015:")
    for key, value in window:
        print(f"  {key.decode()} -> {value.decode()}")

    # --- Snapshot semantics -------------------------------------------------
    snapshot = root
    root = run_process(env, tree.insert(root, b"emp042",
                                        b"name=Person42;dept=PROMOTED"))
    root = run_process(env, tree.delete(root, b"emp007"))
    run_process(env, dirs.replace(names, "employees.db", root))
    print("\nafter an update transaction (new root bound in the directory):")
    print(f"  current emp042 -> {run_process(env, tree.get(root, b'emp042'))!r}")
    print(f"  snapshot emp042 -> {run_process(env, tree.get(snapshot, b'emp042'))!r}")
    print(f"  snapshot still has emp007: "
          f"{run_process(env, tree.contains(snapshot, b'emp007'))}")

    # --- Garbage collection of unreachable node versions --------------------
    files_before = bullet.table.live_count
    for _ in range(DEFAULT_TESTBED.bullet.max_lives + 1):
        current = root
        run_process(env, gc_sweep(
            bullet, [dirs],
            include_history=False,
            extra_collectors=[lambda: tree.collect_caps(current)],
        ))
    files_after = bullet.table.live_count
    print(f"\nGC: {files_before} node files -> {files_after} "
          f"(old snapshots' exclusive nodes reclaimed; "
          f"live tree: {run_process(env, tree.node_count(root))} nodes)")
    assert run_process(env, tree.get(root, b"emp042")).endswith(b"PROMOTED")


if __name__ == "__main__":
    main()
