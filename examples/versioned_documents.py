#!/usr/bin/env python3
"""A versioned document store on immutable files (§2, §5, ref [6]/[7]).

Every save creates a new immutable Bullet file; the directory service
atomically rebinds the name and — because directory versions chain to
their predecessors — the full edit history stays recoverable, exactly
the Cedar-style version mechanism the paper points to.

Also demonstrates the §5 client-cache currency check: "Checking if a
cached copy of a file is still current is simply done by looking up its
capability in the directory service, and comparing it to the capability
on which the copy is based."

Run:  python examples/versioned_documents.py
"""

from repro import (
    DEFAULT_TESTBED,
    BulletServer,
    CachingBulletClient,
    DirectoryServer,
    Environment,
    LocalBulletStub,
    MirroredDiskSet,
    VirtualDisk,
    run_process,
)
from repro.capability import RIGHT_READ
from repro.client import CurrencyPolicy, NamedFileClient
from repro.directory import DirectoryRows
from repro.units import KB


def main():
    env = Environment()
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"d{i}") for i in (0, 1)]
    bullet = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED)
    bullet.format()
    run_process(env, bullet.boot())
    stub = LocalBulletStub(bullet)

    dirs = DirectoryServer(env, VirtualDisk(env, DEFAULT_TESTBED.disk,
                                            name="dir-disk"),
                           stub, DEFAULT_TESTBED)
    dirs.format()
    run_process(env, dirs.boot())

    docs = run_process(env, dirs.create_directory())
    print(f"document directory: {docs}")

    # --- Save three versions of a paper draft ---------------------------
    drafts = [
        b"Draft 1: block-based file servers are slow.",
        b"Draft 2: store files contiguously, make them immutable.",
        b"Draft 3: the Bullet server outperforms NFS by 3-6x.",
    ]
    cap = run_process(env, stub.create(drafts[0], 1))
    run_process(env, dirs.append(docs, "paper.txt", cap))
    for draft in drafts[1:]:
        new_cap = run_process(env, stub.create(draft, 1))
        old = run_process(env, dirs.replace(docs, "paper.txt", new_cap))
        print(f"saved new version; superseded file {old.object} "
              f"(kept immutably — that's the version store)")

    # --- The history is the directory's version chain -------------------
    chain = run_process(env, dirs.history(docs))
    print(f"\ndirectory version chain: {len(chain)} versions")
    for i, version_cap in enumerate(chain):
        raw = run_process(env, stub.read(version_cap))
        rows = DirectoryRows.decode(raw)
        bound = rows.rows.get("paper.txt")
        if bound is not None:
            content = run_process(env, stub.read(bound[0]))
            print(f"  version -{i}: paper.txt -> {content[:40]!r}")
        else:
            print(f"  version -{i}: (before paper.txt existed)")

    # --- Client cache + currency check -----------------------------------
    client = CachingBulletClient(stub, capacity_bytes=256 * KB)
    current_cap = run_process(env, dirs.lookup(docs, "paper.txt"))
    # Cache under a *read-only restriction* of the published capability:
    # the currency check is evidence-based (object + secret lineage), so
    # a restricted copy still compares current against the directory's
    # owner capability — rights bits never fake a version change.
    read_only = run_process(env, stub.restrict(current_cap, RIGHT_READ))
    text = run_process(env, client.read(read_only))
    print(f"\nclient cached (read-only cap): {text[:30]!r}...")

    is_current, latest = run_process(
        env, client.lookup_validated(dirs, docs, "paper.txt", read_only))
    print(f"cache still current? {is_current}")

    final = run_process(env, stub.create(b"Draft 4: camera-ready.", 1))
    run_process(env, dirs.replace(docs, "paper.txt", final))
    is_current, latest = run_process(
        env, client.lookup_validated(dirs, docs, "paper.txt", read_only))
    print(f"after another save, cache still current? {is_current} "
          f"-> refetch under {latest}")
    print(f"fresh contents: {run_process(env, client.read(latest))!r}")

    # --- Open-by-name: the session layer runs the protocol for you ------
    session = NamedFileClient(client, dirs, docs,
                              policy=CurrencyPolicy.always(), name="editor")
    print(f"\nopen-by-name: {run_process(env, session.read('paper.txt'))!r}")
    run_process(env, session.publish("paper.txt", b"Draft 5: in press."))
    print(f"after publish: {run_process(env, session.read('paper.txt'))!r}")
    print(f"coherence counters: {session.stats.snapshot()}")

    # --- Reclaim old directory versions at leisure -----------------------
    deleted = run_process(env, dirs.prune_history(docs, keep=2))
    print(f"\npruned {deleted} old directory versions "
          f"(old *file* versions remain until pruned separately)")


if __name__ == "__main__":
    main()
