#!/usr/bin/env python3
"""A parallel make over the Bullet server (the Amoeba processor pool).

§2.1: "The dynamically allocatable processors together form the
so-called processor pool. These processors may be allocated for
compiling ... we have implemented a parallel make."

Eight pool processors compile a project in parallel: each reads the
shared headers (hot, immutable — perfect for client caches) plus its own
source file, "compiles" (simulated CPU time), writes an object file, and
finally a linker reads every object file. The coordinator commits the
whole build output into the directory **atomically** with update_many —
an observer sees the old build or the new build, never a half-built mix.

Run:  python examples/parallel_make.py
"""

from repro import (
    DEFAULT_TESTBED,
    BulletClient,
    BulletServer,
    CachingBulletClient,
    DirectoryServer,
    Environment,
    Ethernet,
    LocalBulletStub,
    MirroredDiskSet,
    RpcTransport,
    VirtualDisk,
    run_process,
)
from repro.units import KB

N_WORKERS = 8
N_SOURCES = 16
COMPILE_SECONDS = 0.8


def main():
    env = Environment()
    ethernet = Ethernet(env, DEFAULT_TESTBED.ethernet)
    rpc = RpcTransport(env, ethernet, DEFAULT_TESTBED.cpu)
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"d{i}") for i in (0, 1)]
    bullet = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED,
                          transport=rpc)
    bullet.format()
    run_process(env, bullet.boot())
    dirs = DirectoryServer(env, VirtualDisk(env, DEFAULT_TESTBED.disk,
                                            name="dir-disk"),
                           LocalBulletStub(bullet), DEFAULT_TESTBED)
    dirs.format()
    run_process(env, dirs.boot())
    project = run_process(env, dirs.create_directory())

    # --- Sources and shared headers, stored as immutable files -----------
    seed_client = BulletClient(env, rpc, bullet.port)
    headers = [run_process(env, seed_client.create(
        f"/* header {i} */".encode() * 400, 2)) for i in range(4)]
    sources = [run_process(env, seed_client.create(
        f"int source_{i}(void) {{ return {i}; }}".encode() * 100, 2))
        for i in range(N_SOURCES)]
    print(f"project: {N_SOURCES} sources, {len(headers)} shared headers, "
          f"{N_WORKERS} pool processors\n")

    objects: dict = {}
    work_queue = list(enumerate(sources))

    def worker(worker_id):
        # Each pool processor has its own client cache: the headers are
        # immutable, so hits are always valid — no coherence traffic.
        me = CachingBulletClient(BulletClient(env, rpc, bullet.port),
                                 capacity_bytes=256 * KB)
        compiled = 0
        while work_queue:
            index, source_cap = work_queue.pop(0)
            for header in headers:          # includes (cached after 1st)
                yield from me.read(header)
            source = yield from me.read(source_cap)
            yield env.timeout(COMPILE_SECONDS)  # "cc -c"
            obj = b"OBJ:" + source[:64]
            objects[f"source_{index:02d}.o"] = (yield from me.create(obj, 2))
            compiled += 1
        print(f"  worker {worker_id}: compiled {compiled} units "
              f"(header cache hits: {me.hits})")

    t0 = env.now
    workers = [env.process(worker(w)) for w in range(N_WORKERS)]
    for w in workers:
        env.run(until=w)
    build_time = env.now - t0
    print(f"\nparallel build finished in {build_time:.1f} simulated s "
          f"(sequential would be ~{N_SOURCES * COMPILE_SECONDS:.1f} s of "
          f"compile time alone)")

    # --- Link, then commit all outputs atomically -------------------------
    linker = BulletClient(env, rpc, bullet.port)

    def link():
        blob = bytearray()
        for name in sorted(objects):
            blob += yield from linker.read(objects[name])
        return (yield from linker.create(bytes(blob), 2))

    binary = run_process(env, link())
    run_process(env, dirs.update_many(project, {
        **objects, "a.out": binary,
    }))
    listing = run_process(env, dirs.list_names(project))
    print(f"committed {len(listing)} artifacts atomically: "
          f"{listing[:3]} ... {listing[-1]}")
    assert "a.out" in listing


if __name__ == "__main__":
    main()
