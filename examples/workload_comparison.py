#!/usr/bin/env python3
"""Bullet vs SUN NFS on a realistic workload (the abstract's headline).

"The Bullet server ... outperforms traditional file servers like SUN's
NFS by more than a factor of three."

Replays one seeded trace — file sizes per the cited UNIX study (median
1 KB, 99 % < 64 KB), read-heavy, Zipf-popular — against both servers in
the same simulated testbed, and prints the per-op and total comparison.

Run:  python examples/workload_comparison.py
"""

from collections import defaultdict

from repro.bench import FileSizeDistribution, TraceGenerator, make_rig, timed
from repro.units import KB, to_msec


def replay_bullet(rig, trace):
    env, client = rig.env, rig.bullet_client
    caps, per_kind = {}, defaultdict(float)
    for op in trace:
        if op.kind == "create":
            elapsed, cap = timed(env, client.create(bytes(op.size), 2))
            caps[op.file_id] = cap
        elif op.kind == "read":
            elapsed, _ = timed(env, client.read(caps[op.file_id]))
        else:
            elapsed, _ = timed(env, client.delete(caps.pop(op.file_id)))
        per_kind[op.kind] += elapsed
    return per_kind


def replay_nfs(rig, trace):
    env, client = rig.env, rig.nfs_client
    per_kind = defaultdict(float)
    for op in trace:
        path = f"/f{op.file_id}"
        if op.kind == "create":
            def create():
                fd = yield from client.creat(path)
                yield from client.write(fd, bytes(op.size))
                yield from client.close(fd)

            elapsed, _ = timed(env, create())
        elif op.kind == "read":
            def read():
                fd = yield from client.open(path)
                yield from client.lseek(fd, 0)
                yield from client.read(fd, op.size)
                yield from client.close(fd)

            elapsed, _ = timed(env, read())
        else:
            elapsed, _ = timed(env, client.unlink(path))
        per_kind[op.kind] += elapsed
    return per_kind


def main():
    sizes = FileSizeDistribution(maximum=256 * KB)
    trace = TraceGenerator(seed=1989, sizes=sizes).generate(
        n_ops=150, prepopulate=25)
    counts = defaultdict(int)
    for op in trace:
        counts[op.kind] += 1
    print(f"trace: {len(trace)} ops "
          f"({counts['create']} create / {counts['read']} read / "
          f"{counts['delete']} delete); sizes: median 1 KB, 99% < 64 KB\n")

    rig = make_rig(seed=1989)
    bullet = replay_bullet(rig, trace)
    nfs = replay_nfs(rig, trace)

    print(f"{'op kind':<10} {'Bullet (ms)':>14} {'NFS (ms)':>14} {'speedup':>9}")
    print("-" * 50)
    for kind in ("create", "read", "delete"):
        if counts[kind] == 0:
            continue
        ratio = nfs[kind] / bullet[kind]
        print(f"{kind:<10} {to_msec(bullet[kind]):>14.1f} "
              f"{to_msec(nfs[kind]):>14.1f} {ratio:>8.1f}x")
    total_bullet = sum(bullet.values())
    total_nfs = sum(nfs.values())
    print("-" * 50)
    print(f"{'TOTAL':<10} {to_msec(total_bullet):>14.1f} "
          f"{to_msec(total_nfs):>14.1f} {total_nfs / total_bullet:>8.1f}x")
    print("\npaper's claim: 'outperforms ... by more than a factor of three'")
    assert total_nfs / total_bullet > 3.0


if __name__ == "__main__":
    main()
