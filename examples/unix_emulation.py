#!/usr/bin/env python3
"""The §5 UNIX emulation: POSIX-style files over immutable storage.

"Recently we have implemented a UNIX emulation on top of the Bullet
service supporting a wealth of existing software."

A familiar open/write/lseek/close session runs unchanged; underneath,
every close of a dirty file creates a new immutable Bullet file and
atomically rebinds the name in the directory service. A reader that
opened the file before a writer's close keeps its version — snapshot
isolation for free.

Run:  python examples/unix_emulation.py
"""

from repro import (
    DEFAULT_TESTBED,
    BulletServer,
    DirectoryServer,
    Environment,
    LocalBulletStub,
    MirroredDiskSet,
    UnixEmulation,
    VirtualDisk,
    run_process,
)


def build_unix(env):
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"d{i}") for i in (0, 1)]
    bullet = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED)
    bullet.format()
    run_process(env, bullet.boot())
    stub = LocalBulletStub(bullet)
    dirs = DirectoryServer(env, VirtualDisk(env, DEFAULT_TESTBED.disk,
                                            name="dir-disk"),
                           stub, DEFAULT_TESTBED)
    dirs.format()
    run_process(env, dirs.boot())
    root = run_process(env, dirs.create_directory())
    return UnixEmulation(env, stub, dirs, root), bullet


def main():
    env = Environment()
    unix, bullet = build_unix(env)

    def sh(gen):
        return run_process(env, gen)

    # --- A normal-looking session ---------------------------------------
    sh(unix.mkdir("/home"))
    sh(unix.mkdir("/home/ast"))
    fd = sh(unix.open("/home/ast/.profile", "w"))
    sh(unix.write(fd, b"export EDITOR=ed\n"))
    sh(unix.close(fd))

    fd = sh(unix.open("/home/ast/todo", "w"))
    sh(unix.write(fd, b"1. make file server fast\n"))
    sh(unix.close(fd))
    fd = sh(unix.open("/home/ast/todo", "a"))
    sh(unix.write(fd, b"2. name it Bullet\n"))
    sh(unix.close(fd))

    fd = sh(unix.open("/home/ast/todo", "r"))
    print("$ cat /home/ast/todo")
    print(sh(unix.read(fd, 4096)).decode(), end="")
    sh(unix.close(fd))

    print("\n$ ls /home/ast")
    print("  ".join(sh(unix.listdir("/home/ast"))))

    # --- lseek / partial rewrite ----------------------------------------
    fd = sh(unix.open("/home/ast/todo", "r+"))
    sh(unix.lseek(fd, 0))
    sh(unix.write(fd, b"X."))
    sh(unix.close(fd))
    fd = sh(unix.open("/home/ast/todo", "r"))
    print("\nafter in-place edit (new immutable version under the hood):")
    print(sh(unix.read(fd, 4096)).decode(), end="")
    sh(unix.close(fd))

    # --- Snapshot isolation across a concurrent rewrite ------------------
    reader_fd = sh(unix.open("/home/ast/todo", "r"))
    first_bytes = sh(unix.read(reader_fd, 2))  # whole file now loaded
    writer_fd = sh(unix.open("/home/ast/todo", "w"))
    sh(unix.write(writer_fd, b"entirely new contents\n"))
    sh(unix.close(writer_fd))
    rest = sh(unix.read(reader_fd, 4096))
    print("\nreader that opened before the rewrite still sees:")
    print((first_bytes + rest).decode(), end="")
    sh(unix.close(reader_fd))

    fd = sh(unix.open("/home/ast/todo", "r"))
    print("a fresh open sees:")
    print(sh(unix.read(fd, 4096)).decode(), end="")
    sh(unix.close(fd))

    # --- rename / unlink --------------------------------------------------
    sh(unix.rename("/home/ast/todo", "/home/ast/done"))
    sh(unix.unlink("/home/ast/.profile"))
    print("\n$ ls /home/ast")
    print("  ".join(sh(unix.listdir("/home/ast"))))

    print(f"\nBullet server did {bullet.stats.creates} creates / "
          f"{bullet.stats.deletes} deletes for this session "
          f"(one create per dirty close — versions, not updates)")


if __name__ == "__main__":
    main()
