#!/usr/bin/env python3
"""Availability: P-FACTOR, primary-disk failure, whole-disk recovery (§3).

"If the main disk fails, the file server can proceed uninterruptedly by
using the other disk. Recovery is simply done by copying the complete
disk."

Shows: (1) what each paranoia level costs on CREATE; (2) reads
continuing through a primary-disk failure; (3) the recovery copy and
the server returning to full redundancy.

Run:  python examples/replication_failover.py
"""

from dataclasses import replace

from repro import (
    DEFAULT_TESTBED,
    BulletClient,
    BulletServer,
    Environment,
    Ethernet,
    FaultInjector,
    MirroredDiskSet,
    RpcTransport,
    VirtualDisk,
    run_process,
)
from repro.units import KB, MB, to_msec


def main():
    # A 64 MB disk keeps the whole-disk recovery copy quick to watch.
    testbed = replace(DEFAULT_TESTBED,
                      disk=replace(DEFAULT_TESTBED.disk,
                                   capacity_bytes=64 * MB, cylinders=256))
    env = Environment()
    ethernet = Ethernet(env, testbed.ethernet)
    rpc = RpcTransport(env, ethernet, testbed.cpu)
    disks = [VirtualDisk(env, testbed.disk, name=f"disk{i}") for i in (0, 1)]
    mirror = MirroredDiskSet(env, disks)
    server = BulletServer(env, mirror, testbed, transport=rpc)
    server.format()
    run_process(env, server.boot())
    client = BulletClient(env, rpc, server.port)

    # --- 1. The price of paranoia ----------------------------------------
    print("CREATE of a 16 KB file at each paranoia level:")
    for p in (0, 1, 2):
        t0 = env.now
        cap = run_process(env, client.create(bytes(16 * KB), p))
        delay = env.now - t0
        env.run(until=env.now + 0.5)  # drain background writes
        run_process(env, client.delete(cap))
        meaning = {0: "reply after RAM cache", 1: "after one disk",
                   2: "after both disks"}[p]
        print(f"  P-FACTOR={p}: {to_msec(delay):6.1f} ms  ({meaning})")

    # --- 2. Failover -------------------------------------------------------
    print("\nstoring 8 files (P-FACTOR=2), then killing the primary disk...")
    caps = []
    for i in range(8):
        cap = run_process(env, client.create(bytes([i]) * (32 * KB), 2))
        caps.append(cap)
        server.evict(cap.object)  # force post-failure reads to hit disk

    FaultInjector(env).fail_at(disks[0], when=env.now + 0.001,
                               reason="head crash")
    env.run(until=env.now + 0.002)
    print(f"  primary {disks[0].name} dead; live replicas: "
          f"{mirror.replica_count}")

    ok = 0
    for i, cap in enumerate(caps):
        data = run_process(env, client.read(cap))
        assert data == bytes([i]) * (32 * KB)
        ok += 1
    print(f"  {ok}/8 reads served uninterruptedly from {mirror.primary.name}")

    # --- 3. Recovery: copy the complete disk ------------------------------
    print("\nreplacing the dead drive and copying the complete disk...")
    t0 = env.now
    blocks = run_process(env, mirror.recover(disks[0]))
    print(f"  copied {blocks} blocks ({blocks * 512 // MB} MB) in "
          f"{env.now - t0:.1f} simulated seconds")
    print(f"  live replicas: {mirror.replica_count}; "
          f"primary again: {mirror.primary.name}")

    # Full redundancy: P-FACTOR=2 creates work again.
    cap = run_process(env, client.create(b"fully replicated again", 2))
    for disk in disks:
        inode = server.table.get(cap.object)
        raw = disk.read_raw(inode.start_block, 1)
        assert raw.startswith(b"fully replicated again")
    print("  verified: new file present on both disks")


if __name__ == "__main__":
    main()
