#!/usr/bin/env python3
"""A file service that crosses international borders (§2.1).

"Gateways provide transparent communication among Amoeba sites
currently operating in four different countries. ... The directory
service provides a single global naming space for objects. This has
allowed us to link multiple Bullet file servers together providing one
single large file service that crosses international borders."

Two sites — Amsterdam and Berlin — each with their own Ethernet,
Bullet server, and directory server, joined by a 2 Mb/s leased line.
One name space spans both: a client in Amsterdam resolves
``/berlin/projects/mandis.txt`` and reads the file from the Berlin
Bullet server without knowing a gateway was involved (except for the
latency).

Run:  python examples/wide_area_namespace.py
"""

from repro import (
    DEFAULT_TESTBED,
    BulletClient,
    BulletServer,
    DirectoryServer,
    Environment,
    Ethernet,
    LocalBulletStub,
    MirroredDiskSet,
    RpcTransport,
    VirtualDisk,
    run_process,
)
from repro.client import DirectoryClient
from repro.net import WideAreaProfile, connect_sites
from repro.units import to_msec


def build_site(env, city):
    """One Amoeba site: Ethernet, RPC, Bullet pair, directory server."""
    ethernet = Ethernet(env, DEFAULT_TESTBED.ethernet)
    rpc = RpcTransport(env, ethernet, DEFAULT_TESTBED.cpu)
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"{city}-d{i}")
             for i in (0, 1)]
    bullet = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED,
                          name=f"bullet-{city}", transport=rpc)
    bullet.format()
    run_process(env, bullet.boot())
    dirs = DirectoryServer(env, VirtualDisk(env, DEFAULT_TESTBED.disk,
                                            name=f"{city}-dirdisk"),
                           LocalBulletStub(bullet), DEFAULT_TESTBED,
                           name=f"directory-{city}", transport=rpc)
    dirs.format()
    run_process(env, dirs.boot())
    return rpc, bullet, dirs


def main():
    env = Environment()
    rpc_ams, bullet_ams, dirs_ams = build_site(env, "amsterdam")
    rpc_ber, bullet_ber, dirs_ber = build_site(env, "berlin")
    link = connect_sites(env, rpc_ams, rpc_ber,
                         WideAreaProfile(bandwidth_bits=2e6,
                                         propagation_delay=0.015))
    print("sites up: amsterdam, berlin; 2 Mb/s line, 15 ms one-way\n")

    # --- Build the global name space from Amsterdam ----------------------
    names = DirectoryClient(env, rpc_ams, default_port=dirs_ams.port)
    root = run_process(env, names.create_directory())
    ams_home = run_process(env, names.create_directory())
    berlin_projects = run_process(env, names.create_directory(port=dirs_ber.port))
    run_process(env, names.append(root, "amsterdam", ams_home))
    run_process(env, names.append(root, "berlin", berlin_projects))

    # Store a file at each site, bind both into the one tree.
    bullet_local = BulletClient(env, rpc_ams, bullet_ams.port)
    bullet_remote = BulletClient(env, rpc_ams, bullet_ber.port)  # via gateway
    local_file = run_process(env, bullet_local.create(
        b"Vrije Universiteit: Bullet server design notes.", 2))
    remote_file = run_process(env, bullet_remote.create(
        b"MANDIS/Amoeba: widely dispersed object-oriented OS.", 2))
    run_process(env, names.append(ams_home, "design.txt", local_file))
    run_process(env, names.append(berlin_projects, "mandis.txt", remote_file))

    # --- Resolve and read across the border -------------------------------
    for path in ("amsterdam/design.txt", "berlin/mandis.txt"):
        t0 = env.now
        cap = run_process(env, names.walk(root, path))
        data = run_process(env, BulletClient(env, rpc_ams, cap.port).read(cap))
        delay = env.now - t0
        where = "local" if cap.port == bullet_ams.port else "remote (gateway)"
        print(f"/{path:<24} -> {data[:35]!r}...")
        print(f"   resolved + read in {to_msec(delay):7.1f} ms [{where}]")

    print(f"\nwide-area line carried {link.bytes_carried} bytes; "
          f"the client code never mentioned a gateway.")

    # The same namespace is reachable from Berlin too (reverse direction).
    names_from_berlin = DirectoryClient(env, rpc_ber)
    cap = run_process(env, names_from_berlin.walk(root, "amsterdam/design.txt"))
    data = run_process(env, BulletClient(env, rpc_ber, cap.port).read(cap))
    print(f"\nfrom Berlin, /amsterdam/design.txt -> {data[:30]!r}...")

    # --- Cross-border replication via capability sets ---------------------
    from repro.client import LocalBulletStub, ReplicaSetClient, replicate_file

    print("\nreplicating /amsterdam/design.txt to Berlin (capability set):")
    replica = run_process(env, replicate_file(
        LocalBulletStub(bullet_ams), LocalBulletStub(bullet_ber),
        local_file, 2))
    run_process(env, names.replace(ams_home, "design.txt",
                                   (local_file, replica)))
    cap_set = run_process(env, names.lookup_set(ams_home, "design.txt"))
    print(f"  bound set: {len(cap_set)} replicas "
          f"(amsterdam + berlin); readers try them in order")

    reader = ReplicaSetClient(env, rpc_ams, timeout=1.0)
    bullet_ams.crash()
    print("  amsterdam Bullet server crashed!")
    data = run_process(env, reader.read(cap_set))
    print(f"  read via replica set still succeeds ({reader.failovers} "
          f"failover): {data[:30]!r}...")


if __name__ == "__main__":
    main()
