#!/usr/bin/env python3
"""Anatomy of a request: a traced BULLET.CREATE and BULLET.READ.

Every timed component emits trace records; this walkthrough attaches a
tracer to the whole testbed and prints the event timeline of one create
(write-through to both disks) and one read (cache hit vs cold), so you
can see exactly where the paper's milliseconds go.

Run:  python examples/request_anatomy.py
"""

from repro import (
    DEFAULT_TESTBED,
    BulletClient,
    BulletServer,
    Environment,
    Ethernet,
    MirroredDiskSet,
    RpcTransport,
    Tracer,
    VirtualDisk,
    run_process,
)
from repro.units import KB, to_msec


def show(tracer, label, since):
    print(f"\n--- {label} " + "-" * (50 - len(label)))
    for record in tracer.records:
        if record.time > since:
            print(f"  {to_msec(record.time - since):8.2f} ms  "
                  f"{record.category:<8} {record.message} "
                  + " ".join(f"{k}={v}" for k, v in record.fields))


def main():
    env = Environment()
    tracer = Tracer(env=env)
    ethernet = Ethernet(env, DEFAULT_TESTBED.ethernet, tracer=tracer)
    rpc = RpcTransport(env, ethernet, DEFAULT_TESTBED.cpu, tracer=tracer)
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"disk{i}",
                         tracer=tracer) for i in (0, 1)]
    server = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED,
                          transport=rpc, tracer=tracer)
    server.format()
    run_process(env, server.boot())
    client = BulletClient(env, rpc, server.port)
    tracer.clear()

    # --- One CREATE, 16 KB, P-FACTOR 2 -----------------------------------
    t0 = env.now
    cap = run_process(env, client.create(bytes(16 * KB), 2))
    show(tracer, f"CREATE 16 KB, P=2  (total {to_msec(env.now - t0):.1f} ms)", t0)

    # --- One warm READ (cache hit: no disk records) -----------------------
    t0 = env.now
    run_process(env, client.read(cap))
    show(tracer, f"READ warm          (total {to_msec(env.now - t0):.1f} ms)", t0)

    # --- One cold READ (the disk shows up) --------------------------------
    server.evict(cap.object)
    t0 = env.now
    run_process(env, client.read(cap))
    show(tracer, f"READ cold          (total {to_msec(env.now - t0):.1f} ms)", t0)

    print("\nNote how the warm read never touches a disk — 'In all cases "
          "the test file will be completely in memory' (§4) — and how the "
          "create's two disk writes proceed in parallel on the replicas.")


if __name__ == "__main__":
    main()
