"""The NFS server's buffer cache (§4: "equipped with a 3 Mbyte buffer
cache").

Block-granularity LRU over the filesystem's logical blocks. Unlike the
Bullet cache this caches *blocks*, not files — the traditional design
the paper argues against. Writes can be write-through (synchronous, the
SunOS NFS data/metadata path) or write-back (delayed, used for
allocation bitmaps), with an explicit :meth:`sync`.

A seeded **churn** process models the paper's environment: the NFS
server was a shared departmental machine on a "normally loaded
Ethernet", so other clients' traffic steadily recycles cache blocks.
This is what produces claim C4 (1 MB transfers slower than 64 KB ones):
a long transfer's footprint gets partially evicted while it streams.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..disk import VirtualDisk
from ..obs import MetricsRegistry, RegistryStats
from ..sim import Environment, SeededStream

__all__ = ["BufferCache", "BufferCacheStats"]


class BufferCacheStats(RegistryStats):
    """Buffer-cache accounting, backed by the observability registry
    (``repro_buffercache_<field>_total{cache=...}``)."""

    _PREFIX = "repro_buffercache"
    _COUNTER_FIELDS = (
        "hits",
        "misses",
        "write_throughs",
        "delayed_writes",
        "evictions",
        "churned",
    )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferCache:
    """An LRU block cache in front of one disk."""

    def __init__(self, env: Environment, disk: VirtualDisk,
                 capacity_bytes: int, fs_block_size: int,
                 metrics: Optional[MetricsRegistry] = None,
                 owner: str = "nfs"):
        if fs_block_size % disk.block_size != 0:
            raise ValueError(
                f"fs block size {fs_block_size} not a multiple of the disk "
                f"sector size {disk.block_size}"
            )
        self.env = env
        self.disk = disk
        self.fs_block_size = fs_block_size
        self.capacity_blocks = max(capacity_bytes // fs_block_size, 1)
        self.sectors_per_block = fs_block_size // disk.block_size
        self.stats = BufferCacheStats(metrics, cache=owner)
        self._s_hits = self.stats.handle("hits")
        self._s_misses = self.stats.handle("misses")
        self._s_write_throughs = self.stats.handle("write_throughs")
        self._s_delayed_writes = self.stats.handle("delayed_writes")
        self._blocks: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()

    # ------------------------------------------------------------- reads

    def read_block(self, fbn: int):
        """Process: the logical block's bytes; disk read on a miss."""
        cached = self._blocks.get(fbn)
        if cached is not None:
            self._blocks.move_to_end(fbn)
            self._s_hits.inc(1)
            yield from ()
            return cached
        self._s_misses.inc(1)
        data = yield self.disk.read(fbn * self.sectors_per_block,
                                    self.sectors_per_block)
        self._admit(fbn, data, dirty=False)
        return data

    # ------------------------------------------------------------- writes

    def write_block(self, fbn: int, data: bytes, sync: bool = True):
        """Process: install ``data`` as the block's contents.

        ``sync=True`` (write-through) blocks until the disk has it —
        the NFS v2 stable-write path. ``sync=False`` leaves the block
        dirty for a later :meth:`sync`.
        """
        if len(data) != self.fs_block_size:
            data = data + bytes(self.fs_block_size - len(data))
        self._admit(fbn, bytes(data), dirty=not sync)
        if sync:
            self._s_write_throughs.inc(1)
            yield self.disk.write(fbn * self.sectors_per_block, data)
        else:
            self._s_delayed_writes.inc(1)
            yield from ()

    def sync(self):
        """Process: flush every dirty block to disk."""
        dirty = sorted(self._dirty)
        self._dirty.clear()
        for fbn in dirty:
            data = self._blocks.get(fbn)
            if data is not None:
                yield self.disk.write(fbn * self.sectors_per_block, data)

    # ---------------------------------------------------------- internals

    def _admit(self, fbn: int, data: bytes, dirty: bool) -> None:
        if fbn in self._blocks:
            self._blocks[fbn] = data
            self._blocks.move_to_end(fbn)
        else:
            while len(self._blocks) >= self.capacity_blocks:
                self._evict_oldest_clean()
            self._blocks[fbn] = data
        if dirty:
            self._dirty.add(fbn)

    def _evict_oldest_clean(self) -> None:
        """Evict the LRU block; dirty victims are dropped from the dirty
        set too (their contents are still written by a later sync of the
        owning operation — the NFS server syncs before replying, so a
        dirty victim here can only be an allocation bitmap, which the
        filesystem rewrites in full on sync)."""
        fbn, _data = self._blocks.popitem(last=False)
        self._dirty.discard(fbn)
        self.stats.evictions += 1

    def contains(self, fbn: int) -> bool:
        return fbn in self._blocks

    @property
    def cached_blocks(self) -> int:
        return len(self._blocks)

    # -------------------------------------------------------- background

    def churn_process(self, stream: SeededStream, churn_per_second: float):
        """Process: evict random cached blocks at the given mean rate —
        the competing traffic on a shared server. Deterministic via the
        seeded stream."""
        if churn_per_second <= 0:
            return
        while True:
            yield self.env.timeout(stream.expovariate(churn_per_second))
            if not self._blocks:
                continue
            keys = list(self._blocks.keys())
            victim = keys[stream.randint(0, len(keys) - 1)]
            if victim in self._dirty:
                continue  # never lose real dirty data to churn
            del self._blocks[victim]
            self.stats.churned += 1
