"""A Fast-File-System-style block filesystem — the traditional design
the paper contrasts with (§1: "files were split into fixed size blocks
scattered all over the disk ... indirect blocks were necessary to
administer the files and their blocks").

Faithful to the 1980s BSD FFS in the properties that matter for the
comparison:

* fixed-size logical blocks (8 KB, the SunOS default);
* per-inode block maps with 12 direct pointers, one single-indirect and
  one double-indirect block, so files beyond 96 KB pay extra metadata
  I/O;
* **cylinder-group allocation**: a file's blocks start in a group chosen
  by its inode number and move to the next group every ``maxbpg``
  blocks — the classic FFS policy that deliberately scatters large
  files across the disk (to spread free space), costing a long seek per
  group switch;
* synchronous metadata writes (inodes, directories, indirect blocks)
  as the NFS v2 server required; allocation bitmaps are written back
  lazily and re-synced in bulk.

All disk access goes through the :class:`~repro.nfs.buffercache.BufferCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..disk import VirtualDisk
from ..errors import (
    BadRequestError,
    ConsistencyError,
    ExistsError,
    NoSpaceError,
    NotFoundError,
)
from ..sim import Environment
from .buffercache import BufferCache

__all__ = ["FFS", "FFSInode", "Superblock", "MODE_FREE", "MODE_FILE", "MODE_DIR"]

MODE_FREE = 0
MODE_FILE = 1
MODE_DIR = 2

FFS_INODE_SIZE = 128  # as in BSD FFS (dinode = 128 bytes)
NDIRECT = 12
_SB_MAGIC = 0xFF5FF5FF

#: The root directory's inode number (inode 0 is reserved/invalid).
ROOT_INUM = 1


@dataclass
class Superblock:
    fs_block_size: int
    ninodes: int
    inode_start: int
    inode_blocks: int
    bitmap_start: int
    bitmap_blocks: int
    data_start: int
    data_blocks: int
    maxbpg: int
    cg_count: int

    def encode(self) -> bytes:
        fields = (
            _SB_MAGIC, self.fs_block_size, self.ninodes, self.inode_start,
            self.inode_blocks, self.bitmap_start, self.bitmap_blocks,
            self.data_start, self.data_blocks, self.maxbpg, self.cg_count,
        )
        return b"".join(v.to_bytes(4, "big") for v in fields)

    @classmethod
    def decode(cls, data: bytes) -> "Superblock":
        values = [int.from_bytes(data[i * 4:(i + 1) * 4], "big") for i in range(11)]
        if values[0] != _SB_MAGIC:
            raise ConsistencyError(f"not an FFS volume (magic {values[0]:#x})")
        return cls(*values[1:])


@dataclass(slots=True)
class FFSInode:
    mode: int = MODE_FREE
    size: int = 0
    generation: int = 0
    mtime_ms: int = 0  # modification time, simulated milliseconds
    direct: list = field(default_factory=lambda: [0] * NDIRECT)
    indirect: int = 0
    dindirect: int = 0

    def encode(self) -> bytes:
        parts = [
            self.mode.to_bytes(4, "big"),
            self.size.to_bytes(4, "big"),
            self.generation.to_bytes(4, "big"),
            (self.mtime_ms & 0xFFFFFFFF).to_bytes(4, "big"),
        ]
        parts.extend(p.to_bytes(4, "big") for p in self.direct)
        parts.append(self.indirect.to_bytes(4, "big"))
        parts.append(self.dindirect.to_bytes(4, "big"))
        blob = b"".join(parts)
        return blob + bytes(FFS_INODE_SIZE - len(blob))

    @classmethod
    def decode(cls, data: bytes) -> "FFSInode":
        words = [int.from_bytes(data[i * 4:(i + 1) * 4], "big")
                 for i in range(FFS_INODE_SIZE // 4)]
        return cls(
            mode=words[0],
            size=words[1],
            generation=words[2],
            mtime_ms=words[3],
            direct=words[4:4 + NDIRECT],
            indirect=words[4 + NDIRECT],
            dindirect=words[5 + NDIRECT],
        )


def encode_directory(entries: dict) -> bytes:
    parts = [len(entries).to_bytes(4, "big")]
    for name in sorted(entries):
        raw = name.encode("utf-8")
        parts.append(len(raw).to_bytes(2, "big"))
        parts.append(raw)
        parts.append(entries[name].to_bytes(4, "big"))
    return b"".join(parts)


def decode_directory(data: bytes) -> dict:
    count = int.from_bytes(data[0:4], "big")
    entries = {}
    offset = 4
    for _ in range(count):
        name_len = int.from_bytes(data[offset:offset + 2], "big")
        offset += 2
        name = data[offset:offset + name_len].decode("utf-8")
        offset += name_len
        entries[name] = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
    return entries


class FFS:
    """The filesystem proper. All I/O methods are simulation processes."""

    def __init__(self, env: Environment, disk: VirtualDisk,
                 cache: BufferCache, fs_block_size: int = 8192,
                 ninodes: int = 1024, maxbpg: int = 12, cg_count: int = 8):
        self.env = env
        self.disk = disk
        self.cache = cache
        self.fs_block_size = fs_block_size
        self.ninodes = ninodes
        self.maxbpg = maxbpg
        self.cg_count = cg_count
        self.sb: Superblock
        self._bitmap: bytearray  # one byte per data block; RAM-authoritative
        self._free_data_blocks = 0
        self._group_rotor: dict[int, int] = {}
        self._mounted = False

    # ------------------------------------------------------------ geometry

    @property
    def ptrs_per_block(self) -> int:
        return self.fs_block_size // 4

    def _layout(self) -> Superblock:
        sectors_per_block = self.fs_block_size // self.disk.block_size
        total_fs_blocks = self.disk.total_blocks // sectors_per_block
        inode_blocks = (self.ninodes * FFS_INODE_SIZE + self.fs_block_size - 1) // self.fs_block_size
        inode_start = 1
        bitmap_start = inode_start + inode_blocks
        remaining = total_fs_blocks - bitmap_start
        # 1 byte per data block in the bitmap area (byte-map for clarity).
        bitmap_blocks = (remaining + self.fs_block_size) // (self.fs_block_size + 1)
        data_start = bitmap_start + bitmap_blocks
        data_blocks = total_fs_blocks - data_start
        if data_blocks <= 0:
            raise BadRequestError("disk too small for this FFS configuration")
        return Superblock(
            fs_block_size=self.fs_block_size,
            ninodes=self.ninodes,
            inode_start=inode_start,
            inode_blocks=inode_blocks,
            bitmap_start=bitmap_start,
            bitmap_blocks=bitmap_blocks,
            data_start=data_start,
            data_blocks=data_blocks,
            maxbpg=self.maxbpg,
            cg_count=self.cg_count,
        )

    # --------------------------------------------------------------- setup

    def format(self) -> None:
        """mkfs: superblock, zeroed inodes, empty bitmap, empty root dir
        (untimed raw writes)."""
        sb = self._layout()
        spb = self.fs_block_size // self.disk.block_size
        self.disk.write_raw(0, sb.encode())
        empty_inodes = bytes(self.fs_block_size)
        for b in range(sb.inode_blocks):
            self.disk.write_raw((sb.inode_start + b) * spb, empty_inodes)
        for b in range(sb.bitmap_blocks):
            self.disk.write_raw((sb.bitmap_start + b) * spb, bytes(self.fs_block_size))
        # Root directory: inode ROOT_INUM, empty.
        root = FFSInode(mode=MODE_DIR, size=0, generation=1)
        raw = bytearray(empty_inodes)
        raw[ROOT_INUM * FFS_INODE_SIZE:(ROOT_INUM + 1) * FFS_INODE_SIZE] = root.encode()
        self.disk.write_raw(sb.inode_start * spb, bytes(raw))

    def mount(self):
        """Process: read the superblock and the allocation bitmaps."""
        spb = self.fs_block_size // self.disk.block_size
        raw = yield self.disk.read(0, spb)
        self.sb = Superblock.decode(raw)
        bitmap = bytearray()
        for b in range(self.sb.bitmap_blocks):
            data = yield from self.cache.read_block(self.sb.bitmap_start + b)
            bitmap.extend(data)
        self._bitmap = bitmap[: self.sb.data_blocks]
        self._free_data_blocks = self._bitmap.count(0)
        self._group_rotor = {}
        self._mounted = True

    # ------------------------------------------------------------- inodes

    def _inode_block(self, inum: int) -> tuple[int, int]:
        per_block = self.fs_block_size // FFS_INODE_SIZE
        return (self.sb.inode_start + inum // per_block,
                (inum % per_block) * FFS_INODE_SIZE)

    def inode_read(self, inum: int):
        """Process: load one inode (through the cache)."""
        self._check_inum(inum)
        fbn, offset = self._inode_block(inum)
        raw = yield from self.cache.read_block(fbn)
        return FFSInode.decode(raw[offset:offset + FFS_INODE_SIZE])

    def inode_write(self, inum: int, inode: FFSInode, sync: bool = True):
        """Process: store one inode (synchronous metadata by default)."""
        self._check_inum(inum)
        fbn, offset = self._inode_block(inum)
        raw = bytearray((yield from self.cache.read_block(fbn)))
        raw[offset:offset + FFS_INODE_SIZE] = inode.encode()
        yield from self.cache.write_block(fbn, bytes(raw), sync=sync)

    def alloc_inode(self, mode: int):
        """Process: claim a free inode; returns (inum, inode)."""
        for inum in range(1, self.ninodes):
            inode = yield from self.inode_read(inum)
            if inode.mode == MODE_FREE:
                fresh = FFSInode(mode=mode, generation=inode.generation + 1)
                yield from self.inode_write(inum, fresh)
                return inum, fresh
        raise NoSpaceError("out of inodes")

    # -------------------------------------------------------- block alloc

    def _alloc_block(self, inum: int, file_block_index: int) -> int:
        """Pick a free data block using the FFS cylinder-group policy.

        Group = inode's base group advanced every ``maxbpg`` file blocks;
        scan that group first, then wrap. Returns an absolute fs block
        number. The bitmap update is RAM-only here; callers persist via
        :meth:`sync_bitmaps`.
        """
        if self._free_data_blocks == 0:
            raise NoSpaceError("filesystem full")
        per_group = max(self.sb.data_blocks // self.cg_count, 1)
        base_group = (inum + file_block_index // self.maxbpg) % self.cg_count
        for step in range(self.cg_count + 1):
            group = (base_group + step) % self.cg_count
            start = group * per_group
            end = self.sb.data_blocks if group == self.cg_count - 1 else (group + 1) * per_group
            end = min(end, self.sb.data_blocks)
            # Rotor: resume scanning where the last allocation in this
            # group left off (reset on free), keeping the scan O(1)
            # amortized on big volumes.
            rotor = max(self._group_rotor.get(group, start), start)
            for rel in range(rotor, end):
                if self._bitmap[rel] == 0:
                    self._bitmap[rel] = 1
                    self._free_data_blocks -= 1
                    self._group_rotor[group] = rel + 1
                    return self.sb.data_start + rel
            self._group_rotor[group] = end
        raise NoSpaceError("filesystem full (bitmap scan found nothing)")

    def _free_block(self, fbn: int) -> None:
        rel = fbn - self.sb.data_start
        if not 0 <= rel < self.sb.data_blocks:
            raise ConsistencyError(f"freeing block {fbn} outside the data area")
        if self._bitmap[rel] == 0:
            raise ConsistencyError(f"double free of block {fbn}")
        self._bitmap[rel] = 0
        self._free_data_blocks += 1
        # Rewind the owning group's scan rotor so the block is reusable.
        per_group = max(self.sb.data_blocks // self.cg_count, 1)
        group = min(rel // per_group, self.cg_count - 1)
        if self._group_rotor.get(group, 0) > rel:
            self._group_rotor[group] = rel

    def sync_bitmaps(self):
        """Process: write the RAM bitmap back (delayed writes)."""
        for b in range(self.sb.bitmap_blocks):
            chunk = bytes(self._bitmap[b * self.fs_block_size:(b + 1) * self.fs_block_size])
            yield from self.cache.write_block(self.sb.bitmap_start + b, chunk,
                                              sync=False)

    @property
    def free_bytes(self) -> int:
        return self._free_data_blocks * self.fs_block_size

    # ---------------------------------------------------------------- bmap

    def bmap(self, inum: int, inode: FFSInode, fbi: int, allocate: bool = False):
        """Process: map file block index -> fs block number (0 = hole).

        Walks/creates indirect blocks through the cache; newly allocated
        indirect blocks are synchronous metadata writes.
        """
        ppb = self.ptrs_per_block
        if fbi < NDIRECT:
            if inode.direct[fbi] == 0 and allocate:
                inode.direct[fbi] = self._alloc_block(inum, fbi)
            return inode.direct[fbi]
        fbi -= NDIRECT
        if fbi < ppb:
            if inode.indirect == 0:
                if not allocate:
                    return 0
                inode.indirect = self._alloc_block(inum, NDIRECT)
                yield from self.cache.write_block(inode.indirect,
                                                  bytes(self.fs_block_size))
            return (yield from self._indirect_slot(inum, inode.indirect, fbi,
                                                   NDIRECT + fbi, allocate))
        fbi -= ppb
        if fbi >= ppb * ppb:
            raise BadRequestError("file exceeds the double-indirect limit")
        if inode.dindirect == 0:
            if not allocate:
                return 0
            inode.dindirect = self._alloc_block(inum, NDIRECT + ppb)
            yield from self.cache.write_block(inode.dindirect,
                                              bytes(self.fs_block_size))
        outer_index = fbi // ppb
        raw = yield from self.cache.read_block(inode.dindirect)
        inner = int.from_bytes(raw[outer_index * 4:outer_index * 4 + 4], "big")
        if inner == 0:
            if not allocate:
                return 0
            inner = self._alloc_block(inum, NDIRECT + ppb + fbi)
            yield from self.cache.write_block(inner, bytes(self.fs_block_size))
            patched = bytearray(raw)
            patched[outer_index * 4:outer_index * 4 + 4] = inner.to_bytes(4, "big")
            yield from self.cache.write_block(inode.dindirect, bytes(patched))
        return (yield from self._indirect_slot(inum, inner, fbi % ppb,
                                               NDIRECT + ppb + fbi, allocate))

    def _indirect_slot(self, inum: int, indirect_fbn: int, slot: int,
                       logical_fbi: int, allocate: bool):
        raw = yield from self.cache.read_block(indirect_fbn)
        fbn = int.from_bytes(raw[slot * 4:slot * 4 + 4], "big")
        if fbn == 0 and allocate:
            fbn = self._alloc_block(inum, logical_fbi)
            patched = bytearray(raw)
            patched[slot * 4:slot * 4 + 4] = fbn.to_bytes(4, "big")
            yield from self.cache.write_block(indirect_fbn, bytes(patched))
        return fbn

    # ------------------------------------------------------------ file I/O

    def read(self, inum: int, offset: int, count: int):
        """Process: up to ``count`` bytes from ``offset`` (EOF-clipped)."""
        inode = yield from self.inode_read(inum)
        if inode.mode == MODE_FREE:
            raise NotFoundError(f"inode {inum} is free")
        if offset >= inode.size:
            return b""
        count = min(count, inode.size - offset)
        out = bytearray()
        while count > 0:
            fbi, within = divmod(offset, self.fs_block_size)
            span = min(count, self.fs_block_size - within)
            fbn = yield from self.bmap(inum, inode, fbi)
            if fbn == 0:
                out.extend(bytes(span))  # hole
            else:
                raw = yield from self.cache.read_block(fbn)
                out.extend(raw[within:within + span])
            offset += span
            count -= span
        return bytes(out)

    def write(self, inum: int, offset: int, data: bytes, sync: bool = True):
        """Process: write ``data`` at ``offset``, allocating blocks as
        needed; the inode is rewritten (synchronously when ``sync``)."""
        inode = yield from self.inode_read(inum)
        if inode.mode == MODE_FREE:
            raise NotFoundError(f"inode {inum} is free")
        cursor = offset
        remaining = memoryview(bytes(data))
        while len(remaining) > 0:
            fbi, within = divmod(cursor, self.fs_block_size)
            span = min(len(remaining), self.fs_block_size - within)
            fbn = yield from self.bmap(inum, inode, fbi, allocate=True)
            if within == 0 and span == self.fs_block_size:
                block = bytes(remaining[:span])
            else:
                existing = yield from self.cache.read_block(fbn)
                patched = bytearray(existing)
                patched[within:within + span] = remaining[:span]
                block = bytes(patched)
            yield from self.cache.write_block(fbn, block, sync=sync)
            cursor += span
            remaining = remaining[span:]
        if cursor > inode.size:
            inode.size = cursor
        inode.mtime_ms = int(self.env.now * 1000)
        yield from self.inode_write(inum, inode, sync=sync)
        # Allocation bitmaps are delayed writes (FFS wrote them async);
        # they land on disk at the next cache sync.
        yield from self.sync_bitmaps()
        return len(data)

    def remove(self, inum: int):
        """Process: free every block of the file and zero the inode."""
        inode = yield from self.inode_read(inum)
        if inode.mode == MODE_FREE:
            raise NotFoundError(f"inode {inum} is already free")
        nblocks = (inode.size + self.fs_block_size - 1) // self.fs_block_size
        for fbi in range(nblocks):
            fbn = yield from self.bmap(inum, inode, fbi)
            if fbn:
                self._free_block(fbn)
        ppb = self.ptrs_per_block
        if inode.indirect:
            self._free_block(inode.indirect)
        if inode.dindirect:
            raw = yield from self.cache.read_block(inode.dindirect)
            for i in range(ppb):
                inner = int.from_bytes(raw[i * 4:i * 4 + 4], "big")
                if inner:
                    self._free_block(inner)
            self._free_block(inode.dindirect)
        dead = FFSInode(mode=MODE_FREE, generation=inode.generation)
        yield from self.inode_write(inum, dead)
        yield from self.sync_bitmaps()

    # ---------------------------------------------------------- directories

    def dir_entries(self, dir_inum: int):
        """Process: the directory's name -> inum map."""
        inode = yield from self.inode_read(dir_inum)
        if inode.mode != MODE_DIR:
            raise NotFoundError(f"inode {dir_inum} is not a directory")
        if inode.size == 0:
            return {}
        raw = yield from self.read(dir_inum, 0, inode.size)
        return decode_directory(raw)

    def dir_lookup(self, dir_inum: int, name: str):
        """Process: resolve one name; raises NotFoundError."""
        entries = yield from self.dir_entries(dir_inum)
        if name not in entries:
            raise NotFoundError(f"no entry {name!r}")
        return entries[name]

    def dir_add(self, dir_inum: int, name: str, inum: int):
        """Process: add an entry (synchronous directory write)."""
        entries = yield from self.dir_entries(dir_inum)
        if name in entries:
            raise ExistsError(f"entry {name!r} already exists")
        entries[name] = inum
        yield from self._dir_rewrite(dir_inum, entries)

    def dir_remove(self, dir_inum: int, name: str):
        """Process: remove an entry; returns its inum."""
        entries = yield from self.dir_entries(dir_inum)
        if name not in entries:
            raise NotFoundError(f"no entry {name!r}")
        inum = entries.pop(name)
        yield from self._dir_rewrite(dir_inum, entries)
        return inum

    def _dir_rewrite(self, dir_inum: int, entries: dict):
        blob = encode_directory(entries)
        inode = yield from self.inode_read(dir_inum)
        inode.size = 0  # shrink-then-write keeps stale tails unreadable
        yield from self.inode_write(dir_inum, inode, sync=False)
        yield from self.write(dir_inum, 0, blob, sync=True)

    # ------------------------------------------------------------- helpers

    def _check_inum(self, inum: int) -> None:
        if not 1 <= inum < self.ninodes:
            raise BadRequestError(f"inode number {inum} out of range")
