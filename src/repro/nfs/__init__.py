"""The SUN-NFS-style baseline (S9): FFS block filesystem, buffer cache,
NFS v2-style server and client."""

from .buffercache import BufferCache, BufferCacheStats
from .client import NfsClient, OpenFile
from .ffs import (
    FFS,
    FFSInode,
    MODE_DIR,
    MODE_FILE,
    MODE_FREE,
    ROOT_INUM,
    Superblock,
    decode_directory,
    encode_directory,
)
from .server import FileHandle, NFS_OPCODES, NfsServer

__all__ = [
    "BufferCache",
    "BufferCacheStats",
    "NfsClient",
    "OpenFile",
    "FFS",
    "FFSInode",
    "MODE_DIR",
    "MODE_FILE",
    "MODE_FREE",
    "ROOT_INUM",
    "Superblock",
    "decode_directory",
    "encode_directory",
    "FileHandle",
    "NFS_OPCODES",
    "NfsServer",
]
