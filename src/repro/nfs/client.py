"""The NFS client syscall layer — the Sun 3/50 side of §4's measurement.

"To disable local caching on the SUN 3/50, we have locked the file using
the SUN UNIX lockf primitive. The read test consisted of an lseek
followed by a read system call. The write test consisted of
consecutively executing creat, write, and close."

With lockf in force (the default here, as in the paper's measurement)
there is no client page cache and no read-ahead: every ``read``/
``write`` syscall turns into synchronous 8 KB NFS RPCs. Each syscall
charges the 3/50's syscall + NFS-client overhead, and each RPC charges
the per-byte XDR/UDP data cost.

``client_caching=True`` models what lockf disabled (ablation A10): a
SunOS-style client page cache with an attribute-cache timeout. Re-reads
within the timeout hit the local cache; after it expires, a GETATTR
revalidates and a changed mtime/size flushes the pages. This is exactly
the machinery whose *weak consistency* the paper's §5 contrasts with the
trivially sound caching of immutable files.

Like the servers, the client exposes a local plane (direct calls into an
:class:`~repro.nfs.server.NfsServer`) and an RPC plane; the benchmarks
use RPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import BadRequestError, NotFoundError, error_for_status
from ..net import RpcRequest, RpcTransport
from ..profiles import Testbed
from ..sim import Environment
from .server import FileHandle, NFS_OPCODES, NfsServer

__all__ = ["NfsClient", "OpenFile"]


@dataclass
class OpenFile:
    """One open file descriptor on the client."""

    fd: int
    handle: FileHandle
    offset: int = 0


class NfsClient:
    """Syscall-level NFS client (open/creat/read/write/lseek/close)."""

    def __init__(self, env: Environment, testbed: Testbed,
                 server: Optional[NfsServer] = None,
                 rpc: Optional[RpcTransport] = None,
                 server_port: Optional[int] = None,
                 client_caching: bool = False):
        if server is None and (rpc is None or server_port is None):
            raise BadRequestError(
                "NfsClient needs either a local server or (rpc, server_port)"
            )
        self.env = env
        self.testbed = testbed
        self.server = server
        self.rpc = rpc
        self.server_port = server_port
        self.root = FileHandle(1, 1)
        self._fds: dict[int, OpenFile] = {}
        self._next_fd = 3
        # Client page cache (what lockf disables): (fh, chunk) -> bytes,
        # plus per-file attribute cache with a freshness deadline.
        self.client_caching = client_caching
        self._pages: dict = {}
        self._attrs: dict = {}   # fh -> (attrs, valid_until)
        self.cache_hits = 0
        self.cache_misses = 0

    # --------------------------------------------------------- transport

    def _remote(self, opcode: int, args: tuple = (), body: bytes = b""):
        reply = yield from self.rpc.trans(
            self.server_port, RpcRequest(opcode=opcode, args=args, body=body)
        )
        if not reply.ok:
            raise error_for_status(reply.status, reply.message)
        return reply

    def _lookup_rpc(self, dir_fh: FileHandle, name: str):
        if self.server is not None:
            return (yield from self.server.lookup(dir_fh, name))
        reply = yield from self._remote(NFS_OPCODES["LOOKUP"],
                                        (tuple(dir_fh), name))
        return FileHandle(*reply.args[0])

    def _getattr_rpc(self, fh: FileHandle):
        if self.server is not None:
            return (yield from self.server.getattr(fh))
        reply = yield from self._remote(NFS_OPCODES["GETATTR"], (tuple(fh),))
        return reply.args[0]

    def _read_rpc(self, fh: FileHandle, offset: int, count: int):
        if self.server is not None:
            data = yield from self.server.read(fh, offset, count)
        else:
            reply = yield from self._remote(NFS_OPCODES["READ"],
                                            (tuple(fh), offset, count))
            data = reply.body
        # Client-side XDR decode + UDP checksum of the data.
        yield self.env.timeout(
            len(data) * self.testbed.nfs.data_cost_per_byte_client
        )
        return data

    def _write_rpc(self, fh: FileHandle, offset: int, data: bytes):
        yield self.env.timeout(
            len(data) * self.testbed.nfs.data_cost_per_byte_client
        )
        if self.server is not None:
            return (yield from self.server.write(fh, offset, data))
        reply = yield from self._remote(NFS_OPCODES["WRITE"],
                                        (tuple(fh), offset), body=data)
        return reply.args[0]

    def _create_rpc(self, dir_fh: FileHandle, name: str):
        if self.server is not None:
            return (yield from self.server.create(dir_fh, name))
        reply = yield from self._remote(NFS_OPCODES["CREATE"],
                                        (tuple(dir_fh), name))
        return FileHandle(*reply.args[0])

    def _remove_rpc(self, dir_fh: FileHandle, name: str):
        if self.server is not None:
            yield from self.server.remove(dir_fh, name)
        else:
            yield from self._remote(NFS_OPCODES["REMOVE"], (tuple(dir_fh), name))

    def _mkdir_rpc(self, dir_fh: FileHandle, name: str):
        if self.server is not None:
            return (yield from self.server.mkdir(dir_fh, name))
        reply = yield from self._remote(NFS_OPCODES["MKDIR"],
                                        (tuple(dir_fh), name))
        return FileHandle(*reply.args[0])

    # ----------------------------------------------------------- syscalls

    def _syscall(self):
        yield self.env.timeout(self.testbed.nfs.client_op_overhead)

    def _walk(self, path: str, stop_before_last: bool = False):
        """Per-component LOOKUP RPCs from the root."""
        parts = [p for p in path.split("/") if p]
        if stop_before_last:
            if not parts:
                raise BadRequestError("path needs a final component")
            walk, last = parts[:-1], parts[-1]
        else:
            walk, last = parts, None
        fh = self.root
        for component in walk:
            fh = yield from self._lookup_rpc(fh, component)
        return fh, last

    def open(self, path: str):
        """Process: open an existing file; returns an fd."""
        yield from self._syscall()
        fh, _ = yield from self._walk(path)
        yield from self._getattr_rpc(fh)  # open-time attribute fetch
        return self._new_fd(fh)

    def creat(self, path: str):
        """Process: create (or reuse) a file; returns an fd at offset 0."""
        yield from self._syscall()
        parent, name = yield from self._walk(path, stop_before_last=True)
        try:
            fh = yield from self._lookup_rpc(parent, name)
        except NotFoundError:
            fh = yield from self._create_rpc(parent, name)
        return self._new_fd(fh)

    def read(self, fd: int, count: int):
        """Process: sequential read of ``count`` bytes in 8 KB RPCs
        (or from the client page cache when caching is enabled)."""
        yield from self._syscall()
        open_file = self._file(fd)
        if self.client_caching:
            return (yield from self._read_cached(open_file, count))
        chunk = self.testbed.nfs.transfer_size
        out = bytearray()
        while count > 0:
            span = min(count, chunk)
            data = yield from self._read_rpc(open_file.handle,
                                             open_file.offset, span)
            out.extend(data)
            open_file.offset += len(data)
            count -= span
            if len(data) < span:
                break  # EOF
        return bytes(out)

    def _read_cached(self, open_file: OpenFile, count: int):
        """The SunOS-style path lockf disables: chunk-aligned page cache
        with attribute-timeout revalidation."""
        yield from self._revalidate(open_file.handle)
        chunk = self.testbed.nfs.transfer_size
        out = bytearray()
        while count > 0:
            chunk_index, within = divmod(open_file.offset, chunk)
            data = yield from self._chunk_through_cache(open_file.handle,
                                                        chunk_index)
            piece = data[within:within + min(count, chunk - within)]
            if not piece:
                break  # EOF
            out.extend(piece)
            open_file.offset += len(piece)
            count -= len(piece)
            if within + len(piece) < chunk and len(data) < chunk:
                break  # short chunk: EOF
        return bytes(out)

    def _chunk_through_cache(self, fh: FileHandle, chunk_index: int):
        key = (fh, chunk_index)
        cached = self._pages.get(key)
        if cached is not None:
            self.cache_hits += 1
            yield from ()
            return cached
        self.cache_misses += 1
        chunk = self.testbed.nfs.transfer_size
        data = yield from self._read_rpc(fh, chunk_index * chunk, chunk)
        self._pages[key] = data
        return data

    def _revalidate(self, fh: FileHandle):
        """GETATTR when the attribute cache expired; flush pages on a
        visible change — NFS's weak close-to-open consistency."""
        entry = self._attrs.get(fh)
        if entry is not None and self.env.now < entry[1]:
            return
        attrs = yield from self._getattr_rpc(fh)
        if entry is not None and entry[0] != attrs:
            self._flush_pages(fh)
        self._attrs[fh] = (attrs, self.env.now + self.testbed.nfs.attr_cache_timeout)

    def _flush_pages(self, fh: FileHandle) -> None:
        for key in [k for k in self._pages if k[0] == fh]:
            del self._pages[key]

    def write(self, fd: int, data: bytes):
        """Process: sequential write in synchronous 8 KB RPCs."""
        yield from self._syscall()
        open_file = self._file(fd)
        chunk = self.testbed.nfs.transfer_size
        view = memoryview(bytes(data))
        total = 0
        while total < len(data):
            span = min(len(data) - total, chunk)
            written = yield from self._write_rpc(
                open_file.handle, open_file.offset, bytes(view[total:total + span])
            )
            if self.client_caching:
                # Conservative: invalidate the written range's pages and
                # force revalidation on the next read.
                first = open_file.offset // chunk
                last = (open_file.offset + written) // chunk
                for chunk_index in range(first, last + 1):
                    self._pages.pop((open_file.handle, chunk_index), None)
                self._attrs.pop(open_file.handle, None)
            open_file.offset += written
            total += written
        return total

    def lseek(self, fd: int, offset: int):
        """Process: set the file offset (purely client-side + syscall cost)."""
        yield from self._syscall()
        self._file(fd).offset = offset
        return offset

    def close(self, fd: int):
        """Process: close the descriptor (flush is a no-op: every write
        was already synchronous at the server)."""
        yield from self._syscall()
        self._fds.pop(fd, None)

    def unlink(self, path: str):
        """Process: remove a file by path."""
        yield from self._syscall()
        parent, name = yield from self._walk(path, stop_before_last=True)
        yield from self._remove_rpc(parent, name)

    def mkdir(self, path: str):
        """Process: create a directory by path."""
        yield from self._syscall()
        parent, name = yield from self._walk(path, stop_before_last=True)
        yield from self._mkdir_rpc(parent, name)

    def fstat(self, fd: int):
        """Process: attributes of an open file."""
        yield from self._syscall()
        return (yield from self._getattr_rpc(self._file(fd).handle))

    # ------------------------------------------------------------ helpers

    def _new_fd(self, fh: FileHandle) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = OpenFile(fd=fd, handle=fh)
        return fd

    def _file(self, fd: int) -> OpenFile:
        open_file = self._fds.get(fd)
        if open_file is None:
            raise BadRequestError(f"bad file descriptor {fd}")
        return open_file
