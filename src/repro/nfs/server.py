"""The SUN-NFS-style file server (§4's comparison target).

NFS v2 semantics as SunOS 3.5 implemented them, which is what the paper
measured against:

* stateless server; file handles are (inode, generation) pairs;
* per-block transfers (8 KB) — one RPC round trip per block;
* **synchronous writes**: a WRITE reply means data *and* the updated
  inode are on disk ("The SUN NFS file server uses a write-through
  cache, but writes the file to one disk only");
* a 3 MB LRU buffer cache shared with the rest of a departmental
  server's traffic (modeled by the seeded churn process).
"""

from __future__ import annotations

from typing import Optional

from ..disk import VirtualDisk
from ..errors import BadRequestError, NotFoundError, ReproError
from ..net import RpcReply, RpcRequest, RpcTransport
from ..capability import port_for_name
from ..obs import MetricsRegistry
from ..profiles import Testbed
from ..sim import Environment, SeededStream, Tracer
from .buffercache import BufferCache
from .ffs import FFS, MODE_DIR, MODE_FILE, ROOT_INUM

__all__ = ["NfsServer", "NFS_OPCODES", "FileHandle"]

NFS_OPCODES = {
    "LOOKUP": 40,
    "GETATTR": 41,
    "READ": 42,
    "WRITE": 43,
    "CREATE": 44,
    "REMOVE": 45,
    "MKDIR": 46,
    "READDIR": 47,
}

_NFS_OPNAMES = {number: name for name, number in NFS_OPCODES.items()}


class FileHandle(tuple):
    """An opaque NFS file handle: (inum, generation)."""

    __slots__ = ()

    def __new__(cls, inum: int, generation: int):
        return super().__new__(cls, (inum, generation))

    @property
    def inum(self) -> int:
        return self[0]

    @property
    def generation(self) -> int:
        return self[1]


class NfsServer:
    """One NFS server exporting a single FFS volume."""

    def __init__(
        self,
        env: Environment,
        disk: VirtualDisk,
        testbed: Testbed,
        name: str = "nfs",
        transport: Optional[RpcTransport] = None,
        background_churn: bool = False,
        master_seed: int = 0,
        ninodes: int = 1024,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.disk = disk
        self.testbed = testbed
        self.name = name
        self.port = port_for_name(name)
        self.transport = transport
        self._tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Per-op instrument handles, resolved once per (server, op) so
        # the serve loop stops paying a registry lookup per request.
        self._op_counters: dict = {}
        self._op_seconds: dict = {}
        self._error_counters: dict = {}
        nfs = testbed.nfs
        self.cache = BufferCache(env, disk, nfs.buffer_cache_bytes,
                                 nfs.fs_block_size,
                                 metrics=self.metrics, owner=name)
        self.fs = FFS(env, disk, self.cache, fs_block_size=nfs.fs_block_size,
                      ninodes=ninodes, maxbpg=nfs.direct_blocks)
        self._booted = False
        self._endpoint = None
        self._churn = background_churn
        self._churn_stream = SeededStream(master_seed, f"{name}:churn")

    # -------------------------------------------------------------- setup

    def format(self) -> None:
        """mkfs the exported volume (untimed setup plane)."""
        self.fs.format()

    def boot(self):
        """Process: mount the volume and start serving."""
        yield from self.fs.mount()
        self._booted = True
        if self.transport is not None:
            self._endpoint = self.transport.register(self.port)
            # Intentional daemon fork: the service loop runs for the
            # server's whole life; crash() ends it via _booted.
            self.env.process(self._serve())  # repro: allow(S001)
        if self._churn:
            nfs = self.testbed.nfs
            # churn fraction/s of the cache, expressed in blocks/s.
            rate = nfs.background_cache_churn * self.cache.capacity_blocks
            # Intentional daemon fork: background cache pressure runs for
            # the whole experiment, detached by design.
            self.env.process(  # repro: allow(S001)
                self.cache.churn_process(self._churn_stream, rate)
            )
        return ROOT_INUM

    @property
    def root_handle(self) -> FileHandle:
        return FileHandle(ROOT_INUM, 1)

    # ---------------------------------------------------------- local API

    def _overhead(self):
        yield self.env.timeout(self.testbed.nfs.server_op_overhead)

    def _data_cost(self, nbytes: int):
        yield self.env.timeout(
            nbytes * self.testbed.nfs.data_cost_per_byte_server
        )

    def _resolve(self, fh: FileHandle):
        inode = yield from self.fs.inode_read(fh.inum)
        if inode.mode == 0 or inode.generation != fh.generation:
            raise NotFoundError(f"stale file handle {tuple(fh)}")
        return inode

    def lookup(self, dir_fh: FileHandle, name: str):
        """Process: NFSPROC_LOOKUP — name -> file handle."""
        self._require_booted()
        yield from self._overhead()
        yield from self._resolve(dir_fh)
        inum = yield from self.fs.dir_lookup(dir_fh.inum, name)
        inode = yield from self.fs.inode_read(inum)
        return FileHandle(inum, inode.generation)

    def getattr(self, fh: FileHandle):
        """Process: NFSPROC_GETATTR — (mode, size)."""
        self._require_booted()
        yield from self._overhead()
        inode = yield from self._resolve(fh)
        return {"mode": inode.mode, "size": inode.size,
                "mtime_ms": inode.mtime_ms}

    def read(self, fh: FileHandle, offset: int, count: int):
        """Process: NFSPROC_READ — at most one transfer unit of data."""
        self._require_booted()
        nfs = self.testbed.nfs
        if count > nfs.transfer_size:
            raise BadRequestError(
                f"read of {count} exceeds the {nfs.transfer_size} transfer size"
            )
        yield from self._overhead()
        yield from self._resolve(fh)
        data = yield from self.fs.read(fh.inum, offset, count)
        yield from self._data_cost(len(data))
        return data

    def write(self, fh: FileHandle, offset: int, data: bytes):
        """Process: NFSPROC_WRITE — synchronous (data + inode on disk
        before the reply), as NFS v2 demands."""
        self._require_booted()
        nfs = self.testbed.nfs
        if len(data) > nfs.transfer_size:
            raise BadRequestError(
                f"write of {len(data)} exceeds the {nfs.transfer_size} transfer size"
            )
        yield from self._overhead()
        yield from self._data_cost(len(data))
        yield from self._resolve(fh)
        written = yield from self.fs.write(fh.inum, offset, data, sync=True)
        return written

    def create(self, dir_fh: FileHandle, name: str):
        """Process: NFSPROC_CREATE — new empty file (sync dir + inode)."""
        self._require_booted()
        yield from self._overhead()
        yield from self._resolve(dir_fh)
        inum, inode = yield from self.fs.alloc_inode(MODE_FILE)
        yield from self.fs.dir_add(dir_fh.inum, name, inum)
        return FileHandle(inum, inode.generation)

    def remove(self, dir_fh: FileHandle, name: str):
        """Process: NFSPROC_REMOVE."""
        self._require_booted()
        yield from self._overhead()
        yield from self._resolve(dir_fh)
        inum = yield from self.fs.dir_remove(dir_fh.inum, name)
        yield from self.fs.remove(inum)

    def mkdir(self, dir_fh: FileHandle, name: str):
        """Process: NFSPROC_MKDIR."""
        self._require_booted()
        yield from self._overhead()
        yield from self._resolve(dir_fh)
        inum, inode = yield from self.fs.alloc_inode(MODE_DIR)
        yield from self.fs.dir_add(dir_fh.inum, name, inum)
        return FileHandle(inum, inode.generation)

    def readdir(self, dir_fh: FileHandle):
        """Process: NFSPROC_READDIR — sorted entry names."""
        self._require_booted()
        yield from self._overhead()
        yield from self._resolve(dir_fh)
        entries = yield from self.fs.dir_entries(dir_fh.inum)
        return sorted(entries)

    def _require_booted(self) -> None:
        if not self._booted:
            raise BadRequestError(f"server {self.name} is not booted")

    # ------------------------------------------------------------ RPC plane

    def _serve(self):
        endpoint = self._endpoint
        while self._booted and endpoint is self._endpoint:
            req = yield endpoint.getreq()
            opname = _NFS_OPNAMES.get(req.opcode, str(req.opcode))
            ctr = self._op_counters.get(opname)
            if ctr is None:
                ctr = self._op_counters[opname] = self.metrics.counter(
                    "repro_nfs_requests_total", server=self.name, op=opname
                )
            ctr.inc()
            started = self.env.now
            try:
                reply = yield from self._dispatch(req)
            except ReproError as exc:
                reply = self._error_reply(exc)
            hist = self._op_seconds.get(opname)
            if hist is None:
                hist = self._op_seconds[opname] = self.metrics.histogram(
                    "repro_server_op_seconds", server=self.name, op=opname
                )
            hist.observe(self.env.now - started)
            yield from endpoint.putrep(req, reply)

    def _error_reply(self, exc: ReproError) -> RpcReply:
        """The error-accounting chokepoint (before PR 4 the NFS serve
        loop marshalled errors without counting them at all)."""
        status = exc.status.name
        ctr = self._error_counters.get(status)
        if ctr is None:
            ctr = self._error_counters[status] = self.metrics.counter(
                "repro_server_error_replies_total",
                server=self.name, status=status,
            )
        ctr.inc()
        if self._tracer is not None:
            self._tracer.emit("nfs", "error reply", status=exc.status.name)
        return RpcTransport.reply_for_error(exc)

    def _dispatch(self, req: RpcRequest):
        op = req.opcode
        if op == NFS_OPCODES["LOOKUP"]:
            fh = yield from self.lookup(FileHandle(*req.args[0]), req.args[1])
            return RpcReply(args=(tuple(fh),))
        if op == NFS_OPCODES["GETATTR"]:
            attrs = yield from self.getattr(FileHandle(*req.args[0]))
            return RpcReply(args=(attrs,))
        if op == NFS_OPCODES["READ"]:
            fh, offset, count = req.args
            data = yield from self.read(FileHandle(*fh), offset, count)
            return RpcReply(body=data)
        if op == NFS_OPCODES["WRITE"]:
            fh, offset = req.args
            written = yield from self.write(FileHandle(*fh), offset, req.body)
            return RpcReply(args=(written,))
        if op == NFS_OPCODES["CREATE"]:
            fh = yield from self.create(FileHandle(*req.args[0]), req.args[1])
            return RpcReply(args=(tuple(fh),))
        if op == NFS_OPCODES["REMOVE"]:
            yield from self.remove(FileHandle(*req.args[0]), req.args[1])
            return RpcReply()
        if op == NFS_OPCODES["MKDIR"]:
            fh = yield from self.mkdir(FileHandle(*req.args[0]), req.args[1])
            return RpcReply(args=(tuple(fh),))
        if op == NFS_OPCODES["READDIR"]:
            names = yield from self.readdir(FileHandle(*req.args[0]))
            return RpcReply(args=tuple(names))
        raise BadRequestError(f"unknown NFS opcode {op}")
