"""Hardware calibration profiles (substrate S2).

Every latency and bandwidth constant of the simulated 1989 testbed lives
here, in one place, so experiments can state exactly what hardware they
model and ablations can vary one knob at a time.

Calibration sources:

* Network: the companion Amoeba performance papers (van Renesse et al.,
  "The Performance of the World's Fastest Distributed Operating System",
  OSR 1988; SP&E 1989) report a **null RPC of ~1.4 ms** and **bulk RPC
  throughput of ~680 KB/s** between 16.7 MHz MC68020s on a 10 Mb/s
  Ethernet. Our per-packet software overhead + wire-rate model is tuned
  to land on those two numbers.
* Disk: a late-80s 800 MB SMD-class drive: ~16 ms average seek, 3600 RPM
  (8.33 ms average rotational latency), ~1.8 MB/s media transfer rate,
  512-byte sectors.
* CPU: MC68020-era memory copy near 4 MB/s; per-request server dispatch
  cost of a few hundred microseconds.
* SunOS 3.5 NFS constants (client syscall overhead, per-RPC server CPU,
  8 KB transfer size, 3 MB buffer cache) follow the paper's §4 setup and
  typical SunOS 3.x measurements.

The defaults reproduce the paper's testbed; tests and ablations build
modified profiles via :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .units import KB, MB, msec, usec

__all__ = [
    "DiskProfile",
    "EthernetProfile",
    "CpuProfile",
    "NfsProfile",
    "BulletProfile",
    "WorkstationProfile",
    "Testbed",
    "DEFAULT_TESTBED",
]


@dataclass(frozen=True)
class DiskProfile:
    """Timing and geometry of one disk drive."""

    name: str = "smd-800mb"
    capacity_bytes: int = 800 * MB
    block_size: int = 512
    cylinders: int = 1630
    heads: int = 15
    sectors_per_track: int = 64
    rpm: int = 3600
    # Seek model: fixed settle time + per-cylinder component with a
    # square-root profile (arm acceleration), calibrated to ~16 ms
    # average (one-third stroke), ~3 ms minimum, ~30 ms full stroke.
    seek_settle: float = msec(2.5)
    seek_full_stroke: float = msec(28.0)
    transfer_rate: float = 1.8 * MB  # bytes/second off the media

    @property
    def rotation_time(self) -> float:
        """One full platter revolution, seconds."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        return self.rotation_time / 2

    @property
    def blocks_per_cylinder(self) -> int:
        return self.heads * self.sectors_per_track

    @property
    def total_blocks(self) -> int:
        return self.capacity_bytes // self.block_size


@dataclass(frozen=True)
class EthernetProfile:
    """The shared 10 Mb/s Ethernet segment.

    ``per_packet_overhead`` is the end-to-end software cost of one packet
    (driver, interrupt, protocol) split across sender and receiver; with
    the 1500-byte MTU this lands bulk RPC throughput at ~680 KB/s and the
    null RPC near 1.4 ms, matching the Amoeba measurements.
    """

    name: str = "ethernet-10mbit"
    bandwidth_bits: float = 10e6
    mtu: int = 1500                      # max bytes on the wire per packet
    header_bytes: int = 46               # Ethernet + Amoeba transaction header
    per_packet_overhead: float = usec(560.0)
    min_frame_bytes: int = 64
    # "Normally loaded Ethernet": mean utilization by background traffic.
    background_utilization: float = 0.08
    background_packet_bytes: int = 600
    # Per-packet loss probability (collisions the hardware gave up on,
    # receiver overruns). Zero for the calibrated testbed; the RPC layer
    # recovers losses by retransmission with duplicate suppression.
    loss_probability: float = 0.0

    @property
    def wire_time_per_byte(self) -> float:
        return 8.0 / self.bandwidth_bits

    def wire_time(self, payload_bytes: int) -> float:
        """Wire occupancy of one packet carrying ``payload_bytes``."""
        frame = max(payload_bytes + self.header_bytes, self.min_frame_bytes)
        return frame * self.wire_time_per_byte

    @property
    def max_payload(self) -> int:
        return self.mtu - self.header_bytes


@dataclass(frozen=True)
class CpuProfile:
    """Per-host processing costs (16.7 MHz MC68020 class)."""

    name: str = "mc68020-16.7mhz"
    # Server-side dispatch of one request (decode, table lookups, reply
    # construction), excluding data movement.
    request_dispatch: float = usec(200.0)
    # One in-memory copy of file data (RAM cache <-> network buffers);
    # longword block moves on a 16.7 MHz 68020 reach ~8 MB/s.
    memcpy_per_byte: float = 1.0 / (8.0 * MB)
    # Verifying a capability check field (one-way function); the paper
    # notes verified capabilities can be cached, making repeats cheap.
    capability_check: float = usec(150.0)
    capability_check_cached: float = usec(15.0)


@dataclass(frozen=True)
class NfsProfile:
    """SunOS 3.5 NFS constants for the §4 comparison (Sun 3/50 client,
    Sun 3/180 server)."""

    name: str = "sunos-3.5-nfs"
    transfer_size: int = 8 * KB          # NFS rsize/wsize
    fs_block_size: int = 8 * KB          # FFS block size
    direct_blocks: int = 12              # before the single-indirect block
    buffer_cache_bytes: int = 3 * MB     # the server's buffer cache (§4)
    # Client syscall + NFS client layer per operation (VFS, XDR encode,
    # UDP) on the slow diskless 3/50.
    client_op_overhead: float = msec(2.2)
    # Server-side NFS/RPC/XDR/UFS path per request.
    server_op_overhead: float = msec(2.8)
    # Per-byte data handling (XDR marshalling, UDP checksums in software,
    # extra copies through mbufs) on each end — the dominant NFS data-path
    # cost on 68020s, absent from Amoeba's lean RPC.
    data_cost_per_byte_client: float = 1.5e-6
    data_cost_per_byte_server: float = 1.5e-6
    attr_cache_timeout: float = 3.0
    # Background pressure on the shared server's buffer cache (fraction
    # of the cache recycled per second by other users of a departmental
    # server on a "normally loaded" network).
    background_cache_churn: float = 0.035


@dataclass(frozen=True)
class BulletProfile:
    """Bullet server configuration (§3 implementation)."""

    name: str = "bullet-mc68020"
    ram_bytes: int = 16 * MB
    # RAM reserved for the resident inode table, free lists, and code;
    # the remainder is the file cache ("all of the server's remaining
    # memory will be used for file caching").
    reserved_ram_bytes: int = 2 * MB
    inode_count: int = 8192
    # Default paranoia factor used by the paper's create benchmark: the
    # file is written to both disks before the reply.
    default_p_factor: int = 2
    rnode_count: int = 4096
    # Amoeba-style object aging: every file starts with this many lives;
    # each GC sweep (std_age) decrements, std_touch resets, zero lives
    # reclaims the file. The directory service touches everything it can
    # reach, so only orphans die.
    max_lives: int = 24
    # Capacity of the verified-capability cache ("capabilities can be
    # cached to avoid decryption for each access"). It models a finite
    # slice of server RAM, so it is LRU-bounded rather than unbounded.
    cap_cache_entries: int = 4096


@dataclass(frozen=True)
class WorkstationProfile:
    """A diskless client workstation running several user processes.

    §5: "Client caching of immutable files is straightforward" — each
    workstation dedicates a slice of its RAM to a whole-file cache
    shared by every local process (:class:`repro.client.WorkstationCache`).
    A 1989 Sun-3/60-class machine had 4–12 MB total; one MB for the
    file cache is the conservative default the bench varies.
    """

    name: str = "sun3-workstation"
    # RAM dedicated to the shared client file cache.
    cache_bytes: int = 1 * MB
    # Typical number of concurrent client processes sharing the cache
    # (login shells, compiler passes, editors); the bench default.
    processes: int = 8


@dataclass(frozen=True)
class Testbed:
    """A complete simulated hardware configuration."""

    disk: DiskProfile = field(default_factory=DiskProfile)
    ethernet: EthernetProfile = field(default_factory=EthernetProfile)
    cpu: CpuProfile = field(default_factory=CpuProfile)
    nfs: NfsProfile = field(default_factory=NfsProfile)
    bullet: BulletProfile = field(default_factory=BulletProfile)
    workstation: WorkstationProfile = field(default_factory=WorkstationProfile)


DEFAULT_TESTBED = Testbed()
