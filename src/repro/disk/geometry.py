"""Disk geometry and the seek/rotation/transfer timing model.

The timing model is what makes the paper's architectural argument
visible: a *contiguous* file costs one seek + one rotational latency +
streaming transfer, while a *scattered* file costs a seek + rotation per
block. Everything here is purely arithmetic; the queueing happens in
:mod:`repro.disk.vdisk`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..profiles import DiskProfile

__all__ = ["DiskGeometry"]


@dataclass(frozen=True)
class DiskGeometry:
    """Geometry calculations for one :class:`~repro.profiles.DiskProfile`."""

    profile: DiskProfile

    @property
    def block_size(self) -> int:
        return self.profile.block_size

    @property
    def total_blocks(self) -> int:
        return self.profile.total_blocks

    def cylinder_of(self, block: int) -> int:
        """Which cylinder a logical block lives on."""
        self._check_block(block)
        return block // self.profile.blocks_per_cylinder

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Arm movement time between cylinders.

        Square-root profile (constant-acceleration arm): settle time plus
        a component proportional to sqrt(distance), scaled so a full
        stroke costs ``seek_full_stroke``.
        """
        if from_cyl == to_cyl:
            return 0.0
        distance = abs(to_cyl - from_cyl)
        p = self.profile
        span = math.sqrt(max(p.cylinders - 1, 1))
        return p.seek_settle + (p.seek_full_stroke - p.seek_settle) * (
            math.sqrt(distance) / span
        )

    @property
    def avg_rotational_latency(self) -> float:
        return self.profile.avg_rotational_latency

    def transfer_time(self, nblocks: int) -> float:
        """Media transfer time for ``nblocks`` consecutive blocks."""
        if nblocks < 0:
            raise ValueError(f"negative block count {nblocks}")
        return (nblocks * self.block_size) / self.profile.transfer_rate

    def access_time(self, current_cyl: int, start_block: int, nblocks: int) -> float:
        """Total time for one contiguous access starting at ``start_block``.

        One seek from the arm's current cylinder, the average rotational
        latency, then streaming transfer. Cylinder crossings mid-transfer
        cost one extra track-to-track seek (the settle time) each.
        """
        self._check_extent(start_block, nblocks)
        if nblocks == 0:
            return 0.0
        first_cyl = self.cylinder_of(start_block)
        last_cyl = self.cylinder_of(start_block + nblocks - 1)
        crossings = last_cyl - first_cyl
        return (
            self.seek_time(current_cyl, first_cyl)
            + self.avg_rotational_latency
            + self.transfer_time(nblocks)
            + crossings * self.profile.seek_settle
        )

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.total_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.total_blocks})"
            )

    def _check_extent(self, start_block: int, nblocks: int) -> None:
        if nblocks < 0:
            raise ValueError(f"negative block count {nblocks}")
        self._check_block(start_block)
        if nblocks and start_block + nblocks > self.total_blocks:
            raise ValueError(
                f"extent [{start_block}, {start_block + nblocks}) exceeds disk "
                f"size {self.total_blocks}"
            )
