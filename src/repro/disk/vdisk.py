"""The virtual disk: a block device with realistic timing.

Functionally it is a sparse block store (only written blocks consume
host memory). Temporally it is a single arm served by a scheduling
discipline: each access costs seek + rotation + transfer according to
:class:`~repro.disk.geometry.DiskGeometry`, and concurrent requests
queue.

Two access planes:

* **Timed** — :meth:`read` / :meth:`write` return events; yield them
  from a simulation process. This is what servers use.
* **Raw** — :meth:`read_raw` / :meth:`write_raw` move data instantly
  with no simulated cost. Used for formatting (mkfs), test setup, and
  whole-disk recovery copies whose time is charged explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConsistencyError, DiskIOError
from ..obs import MetricsRegistry, RegistryStats
from ..profiles import DiskProfile
from ..sim import Environment, Event, Store, Tracer
from .geometry import DiskGeometry
from .scheduler import make_queue

__all__ = ["VirtualDisk", "DiskStats"]


class DiskStats(RegistryStats):
    """Operation counters for one disk, backed by the observability
    registry (``repro_disk_<field>_total{disk=...}``)."""

    _PREFIX = "repro_disk"
    _COUNTER_FIELDS = (
        "reads",
        "writes",
        "blocks_read",
        "blocks_written",
        "busy_time",
        "seeks",
    )


@dataclass
class _DiskRequest:
    kind: str                     # "read" or "write"
    start_block: int
    nblocks: int
    data: Optional[bytes]
    completion: Event
    cylinder: int = 0


class VirtualDisk:
    """One simulated disk drive."""

    def __init__(
        self,
        env: Environment,
        profile: DiskProfile,
        name: str = "disk0",
        discipline: str = "fcfs",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.profile = profile
        self.name = name
        self.geometry = DiskGeometry(profile)
        self.stats = DiskStats(metrics, disk=name)
        # Direct counter handles for the service loop and the analytic
        # fast path (the facade costs a getattr+setattr per bump).
        self._c_reads = self.stats.handle("reads")
        self._c_writes = self.stats.handle("writes")
        self._c_blocks_read = self.stats.handle("blocks_read")
        self._c_blocks_written = self.stats.handle("blocks_written")
        self._c_busy_time = self.stats.handle("busy_time")
        self._c_seeks = self.stats.handle("seeks")
        self._tracer = tracer
        self._blocks: dict[int, bytes] = {}
        self._queue = make_queue(discipline)
        self._wakeups: Store = Store(env)
        self._current_cylinder = 0
        self._failed = False
        # Fault-plane injection seams (see repro.faults): a service-time
        # multiplier, a set of blocks that return media errors, and
        # completion hooks that fire after each successful operation.
        self._slowdown = 1.0
        self._flaky_blocks: set[int] = set()
        self._op_hooks: list[Callable[[str], None]] = []
        # True while an analytically collapsed operation occupies the
        # arm (its completion is on the heap but the serve loop never
        # saw it). Submissions arriving then are parked in the queue
        # without a wakeup token; the finish callback replays tokens.
        self._fast_inflight = False
        self._server = env.process(self._serve())

    # ------------------------------------------------------------ state

    @property
    def block_size(self) -> int:
        return self.profile.block_size

    @property
    def total_blocks(self) -> int:
        return self.geometry.total_blocks

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def fail(self, reason: str = "injected fault") -> None:
        """Mark the disk dead. Pending and future requests fail with
        :class:`DiskIOError`."""
        if self._failed:
            return
        self._failed = True
        self._trace("fault", f"{self.name} failed: {reason}")
        # Drain the queue, failing every pending request.
        while True:
            req = self._queue.pop(self._current_cylinder)
            if req is None:
                break
            req.completion.fail(DiskIOError(f"{self.name} is dead ({reason})"))

    def repair(self) -> None:
        """Bring a failed disk back (blank state is preserved as-is;
        callers decide whether a recovery copy is needed). Repair models
        a drive swap, so injected media faults and degradation clear."""
        if not self._failed:
            return
        self._failed = False
        self._slowdown = 1.0
        self._flaky_blocks.clear()
        self._trace("fault", f"{self.name} repaired")

    # --------------------------------------------- fault injection seams

    def set_slowdown(self, factor: float) -> None:
        """Multiply every access time by ``factor`` (a degraded drive
        retrying internally); ``1.0`` restores nominal speed."""
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {factor}")
        self._slowdown = factor

    def mark_flaky(self, start_block: int, nblocks: int) -> None:
        """Make ``nblocks`` blocks from ``start_block`` return media
        errors on any timed access that touches them."""
        self.geometry._check_extent(start_block, nblocks)
        self._flaky_blocks.update(range(start_block, start_block + nblocks))

    def clear_flaky(self, start_block: int, nblocks: int) -> None:
        """Heal a previously marked flaky extent."""
        for block in range(start_block, start_block + nblocks):
            self._flaky_blocks.discard(block)

    def add_op_hook(self, hook: Callable[[str], None]) -> None:
        """Register ``hook(kind)`` to run synchronously after each
        *successful* operation completes (kind is "read" or "write").
        This is how write-count faults fire exactly, without polling."""
        self._op_hooks.append(hook)

    def remove_op_hook(self, hook: Callable[[str], None]) -> None:
        """Deregister a completion hook (missing hooks are ignored)."""
        if hook in self._op_hooks:
            self._op_hooks.remove(hook)

    def _flaky_extent(self, start_block: int, nblocks: int) -> bool:
        if not self._flaky_blocks:
            return False
        return any(
            start_block + i in self._flaky_blocks for i in range(nblocks)
        )

    # ------------------------------------------------------- timed plane

    def read(self, start_block: int, nblocks: int) -> Event:
        """Timed read of ``nblocks`` consecutive blocks; the returned
        event fires with the bytes."""
        return self._submit("read", start_block, nblocks, None)

    def write(self, start_block: int, data: bytes) -> Event:
        """Timed write of ``data`` (padded to whole blocks) starting at
        ``start_block``; the event fires with None when durable."""
        if not data:
            raise ValueError("write of zero bytes")
        nblocks = self._blocks_for(len(data))
        return self._submit("write", start_block, nblocks, bytes(data))

    def _submit(self, kind: str, start_block: int, nblocks: int,
                data: Optional[bytes]) -> Event:
        completion = Event(self.env)
        if self._failed:
            completion.fail(DiskIOError(f"{self.name} is dead"))
            return completion
        self.geometry._check_extent(start_block, nblocks)
        env = self.env
        if (not self._fast_inflight
                and len(self._queue) == 0
                and len(self._wakeups) == 0
                and self._wakeups.waiting == 1):
            # The arm is provably idle (serve loop parked on its wakeup
            # store, nothing queued). Collapse the whole operation —
            # wakeup, seek+rotate+transfer timeout, completion — into
            # one scheduled event when nothing else can observe the
            # interval (see sim.core.can_collapse); the finish callback
            # below replays the serve loop's completion-time sequence
            # verbatim at the identical instant.
            duration = self.geometry.access_time(
                self._current_cylinder, start_block, nblocks
            ) * self._slowdown
            if env.can_collapse(env.now + duration):
                completion.callbacks.append(
                    self._make_finish(kind, start_block, nblocks, data,
                                      duration))
                self._fast_inflight = True
                env._schedule(completion, duration)
                return completion
        req = _DiskRequest(
            kind=kind,
            start_block=start_block,
            nblocks=nblocks,
            data=data,
            completion=completion,
            cylinder=self.geometry.cylinder_of(start_block),
        )
        self._queue.push(req)
        if not self._fast_inflight:
            self._wakeups.put(None)
        return completion

    def _make_finish(self, kind: str, start_block: int, nblocks: int,
                     data: Optional[bytes], duration: float):
        """The analytic operation's completion callback: everything the
        serve loop does after its access-time timeout, in the same
        order, mutating the completion event in place (it is already
        being dispatched, so ``succeed`` must not re-schedule it)."""

        def finish(completion: Event) -> None:
            geometry = self.geometry
            if geometry.cylinder_of(start_block) != self._current_cylinder:
                self._c_seeks.inc(1)
            self._current_cylinder = geometry.cylinder_of(
                start_block + max(nblocks - 1, 0)
            )
            self._c_busy_time.inc(duration)
            # The failure/flaky re-checks mirror the serve loop. Under
            # the collapse guard no other process can have armed them
            # mid-flight, but mirroring keeps the two paths line-for-line
            # comparable (and correct even if the guard ever widens).
            if self._failed:
                completion._ok = False
                completion._value = DiskIOError(
                    f"{self.name} died mid-operation"
                )
                self._finish_epilogue()
                return
            if self._flaky_extent(start_block, nblocks):
                self._trace("fault", f"{self.name} media error",
                            block=start_block, n=nblocks)
                completion._ok = False
                completion._value = DiskIOError(
                    f"{self.name} unrecoverable media error in blocks "
                    f"[{start_block}, {start_block + nblocks})"
                )
                self._finish_epilogue()
                return
            if kind == "read":
                payload = self.read_raw(start_block, nblocks)
                self._c_reads.inc(1)
                self._c_blocks_read.inc(nblocks)
                if self._tracer is not None:
                    self._trace("disk", f"{self.name} read",
                                block=start_block, n=nblocks)
                completion._ok = True
                completion._value = payload
            else:
                if data is None:
                    raise ConsistencyError("write request carries no data")
                self.write_raw(start_block, data)
                self._c_writes.inc(1)
                self._c_blocks_written.inc(nblocks)
                if self._tracer is not None:
                    self._trace("disk", f"{self.name} write",
                                block=start_block, n=nblocks)
                completion._ok = True
                completion._value = None
            for hook in list(self._op_hooks):
                hook(kind)
            self._finish_epilogue()

        return finish

    def _finish_epilogue(self) -> None:
        """Release the arm and hand any parked submissions to the serve
        loop (one token per queued request, as the exact path would have
        deposited at submit time)."""
        self._fast_inflight = False
        for _ in range(len(self._queue)):
            self._wakeups.put(None)

    def _serve(self):
        """The arm: one request at a time, in scheduler order."""
        while True:
            yield self._wakeups.get()
            req = self._queue.pop(self._current_cylinder)
            if req is None:
                continue  # request was drained by fail()
            duration = self.geometry.access_time(
                self._current_cylinder, req.start_block, req.nblocks
            ) * self._slowdown
            yield self.env.timeout(duration)
            if self.geometry.cylinder_of(req.start_block) != self._current_cylinder:
                self._c_seeks.inc(1)
            self._current_cylinder = self.geometry.cylinder_of(
                req.start_block + max(req.nblocks - 1, 0)
            )
            self._c_busy_time.inc(duration)
            if self._failed:
                if not req.completion.triggered:
                    req.completion.fail(
                        DiskIOError(f"{self.name} died mid-operation")
                    )
                continue
            if self._flaky_extent(req.start_block, req.nblocks):
                self._trace("fault", f"{self.name} media error",
                            block=req.start_block, n=req.nblocks)
                if not req.completion.triggered:
                    req.completion.fail(DiskIOError(
                        f"{self.name} unrecoverable media error in blocks "
                        f"[{req.start_block}, {req.start_block + req.nblocks})"
                    ))
                continue
            if req.kind == "read":
                payload = self.read_raw(req.start_block, req.nblocks)
                self._c_reads.inc(1)
                self._c_blocks_read.inc(req.nblocks)
                if self._tracer is not None:
                    self._trace("disk", f"{self.name} read",
                                block=req.start_block, n=req.nblocks)
                req.completion.succeed(payload)
            else:
                if req.data is None:
                    raise ConsistencyError("write request carries no data")
                self.write_raw(req.start_block, req.data)
                self._c_writes.inc(1)
                self._c_blocks_written.inc(req.nblocks)
                if self._tracer is not None:
                    self._trace("disk", f"{self.name} write",
                                block=req.start_block, n=req.nblocks)
                req.completion.succeed(None)
            # Completion hooks run after the op is accounted, so a
            # write-count fault armed for the Nth write kills the disk
            # with the Nth write durable and nothing after it.
            for hook in list(self._op_hooks):
                hook(req.kind)

    # --------------------------------------------------------- raw plane

    def read_raw(self, start_block: int, nblocks: int) -> bytes:
        """Instant, cost-free read (setup/recovery plane)."""
        self.geometry._check_extent(start_block, nblocks)
        bs = self.block_size
        empty = bytes(bs)
        return b"".join(
            self._blocks.get(start_block + i, empty) for i in range(nblocks)
        )

    def write_raw(self, start_block: int, data: bytes) -> None:
        """Instant, cost-free write (setup/recovery plane)."""
        nblocks = self._blocks_for(len(data))
        self.geometry._check_extent(start_block, nblocks)
        bs = self.block_size
        for i in range(nblocks):
            chunk = data[i * bs:(i + 1) * bs]
            if len(chunk) < bs:
                chunk = chunk + bytes(bs - len(chunk))
            self._blocks[start_block + i] = bytes(chunk)

    def used_host_bytes(self) -> int:
        """Host memory consumed by the sparse store (for tests)."""
        return len(self._blocks) * self.block_size

    # ------------------------------------------------------------ helpers

    def _blocks_for(self, nbytes: int) -> int:
        bs = self.block_size
        return (nbytes + bs - 1) // bs

    def _trace(self, category: str, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(category, message, **fields)
