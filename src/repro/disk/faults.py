"""Compatibility shim: the fault-injection API moved to ``repro.faults``.

The unified fault plane (:mod:`repro.faults`) subsumes the disk-only
injector that used to live here; existing imports of
``repro.disk.faults.FaultInjector`` keep working.
"""

from __future__ import annotations

from ..faults.injector import FaultInjector

__all__ = ["FaultInjector"]
