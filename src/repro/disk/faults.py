"""Fault injection for availability experiments (A6).

Failures are scheduled deterministically (at a simulated time or after a
number of operations), so availability experiments replay exactly.
"""

from __future__ import annotations

from ..sim import Environment
from .vdisk import VirtualDisk

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules disk failures."""

    def __init__(self, env: Environment):
        self.env = env

    def fail_at(self, disk: VirtualDisk, when: float, reason: str = "timed fault"):
        """Kill ``disk`` at absolute simulated time ``when``."""
        if when < self.env.now:
            raise ValueError(f"fault time {when} is in the past")

        def killer():
            yield self.env.timeout(when - self.env.now)
            disk.fail(reason)

        return self.env.process(killer())

    def fail_after_writes(self, disk: VirtualDisk, writes: int,
                          reason: str = "write-count fault"):
        """Kill ``disk`` once it has completed ``writes`` more writes.

        Polls the disk's stats each time the simulation advances; the
        check granularity is one disk operation, which is exact for the
        single-arm disk model.
        """
        threshold = disk.stats.writes + writes

        def watcher():
            while disk.stats.writes < threshold and not disk.failed:
                # Wake after every potential operation completion; the
                # shortest disk op is bounded below by the settle time.
                yield self.env.timeout(disk.profile.seek_settle / 2)
            if not disk.failed:
                disk.fail(reason)

        return self.env.process(watcher())
