"""Mirrored disk sets (§3 of the paper).

"In our hardware configuration we have two disks that we use as
identical replicas. One of the disks is the main disk on which the file
server reads. Disk writes are performed on both disks. If the main disk
fails, the file server can proceed uninterruptedly by using the other
disk. Recovery is simply done by copying the complete disk."

:class:`MirroredDiskSet` implements exactly that: reads go to the
current primary (with automatic failover), writes fan out to every live
replica, and the caller chooses how many completed replicas to wait for
— which is the mechanism behind the P-FACTOR.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConsistencyError, DiskIOError, ServerDownError
from ..sim import CountOf, Environment, Event, Interrupt, Tracer
from .vdisk import VirtualDisk

__all__ = ["MirroredDiskSet"]


class MirroredDiskSet:
    """A set of identical disk replicas with one read primary."""

    def __init__(self, env: Environment, disks: Sequence[VirtualDisk],
                 tracer: Optional[Tracer] = None):
        if not disks:
            raise ValueError("a mirrored set needs at least one disk")
        self.env = env
        self.disks = list(disks)
        self._tracer = tracer
        # While a recovery copy is streaming, every mirrored write is
        # also logged here as (start_block, nblocks, write events) so
        # the recovery can re-copy extents the streaming pass may have
        # clobbered with a stale snapshot. None = no recovery active.
        self._resync_dirty: Optional[list] = None

    # ------------------------------------------------------------- state

    @property
    def primary(self) -> VirtualDisk:
        """The disk reads are served from: the first live replica.

        Raises :class:`ServerDownError` when every replica is dead —
        the server as a whole is then down.
        """
        for disk in self.disks:
            if not disk.failed:
                return disk
        raise ServerDownError("all disk replicas have failed")

    @property
    def live_disks(self) -> list[VirtualDisk]:
        return [d for d in self.disks if not d.failed]

    @property
    def replica_count(self) -> int:
        """Number of replicas able to take a write right now."""
        return len(self.live_disks)

    @property
    def block_size(self) -> int:
        return self.disks[0].block_size

    @property
    def total_blocks(self) -> int:
        return min(d.total_blocks for d in self.disks)

    # -------------------------------------------------------------- I/O

    def read(self, start_block: int, nblocks: int) -> Event:
        """Timed read from the primary replica."""
        return self.primary.read(start_block, nblocks)

    def read_with_failover(self, start_block: int, nblocks: int):
        """A *process* (yield ``env.process(...)``) that reads from the
        primary and transparently retries on the next replica if the
        primary fails — the paper's "proceed uninterruptedly".

        Each replica is tried at most once per call: a persistent media
        error (an injected flaky extent) on a still-live disk escalates
        after every replica has had its chance, instead of hammering the
        same arm forever.
        """
        last: Optional[DiskIOError] = None
        tried: list[VirtualDisk] = []
        while True:
            disk = None
            for candidate in self.disks:
                if not candidate.failed and candidate not in tried:
                    disk = candidate
                    break
            if disk is None:
                break
            tried.append(disk)
            try:
                data = yield disk.read(start_block, nblocks)
                return data
            except DiskIOError as exc:
                last = exc
                self._trace("mirror", f"failover away from {disk.name}")
                continue
        if not self.live_disks:
            raise ServerDownError("all disk replicas have failed")
        if last is None:
            raise ConsistencyError("failover loop ran out of replicas "
                                   "without an error")
        raise last

    def write(self, start_block: int, data: bytes, need: Optional[int] = None) -> Event:
        """Write ``data`` to every live replica.

        The returned event fires once ``need`` replicas have the data
        durably (default: all live replicas). ``need=0`` fires
        immediately — the P-FACTOR 0 case where the reply precedes
        durability. Writes to the remaining replicas continue in the
        background either way.
        """
        live = self.live_disks
        if not live:
            failed = Event(self.env)
            failed.fail(ServerDownError("all disk replicas have failed"))
            return failed
        if need is None:
            need = len(live)
        need = min(need, len(live))
        writes = [disk.write(start_block, data) for disk in live]
        self.resync_note(start_block, len(data), writes)
        return CountOf(self.env, writes, need=need)

    def resync_note(self, start_block: int, nbytes: int,
                    events: Sequence[Event]) -> None:
        """Log a replica write so an active recovery re-copies its
        extent (no-op when no recovery is streaming). :meth:`write`
        logs itself; callers that write the replicas *directly* — the
        replicated CREATE path, compaction's extent copy — must call
        this with events that complete no earlier than the underlying
        disk writes (the per-disk write events, or the processes that
        issued them)."""
        if self._resync_dirty is not None and nbytes > 0:
            nblocks = -(-nbytes // self.block_size)
            self._resync_dirty.append((start_block, nblocks, list(events)))

    # --------------------------------------------------------- raw plane

    def write_raw(self, start_block: int, data: bytes) -> None:
        """Instant, cost-free write to every replica (setup plane)."""
        for disk in self.disks:
            disk.write_raw(start_block, data)

    def read_raw(self, start_block: int, nblocks: int) -> bytes:
        """Instant, cost-free read from the primary (setup plane)."""
        return self.primary.read_raw(start_block, nblocks)

    # --------------------------------------------------------- recovery

    def recover(self, target: VirtualDisk):
        """A process performing whole-disk recovery onto ``target``:
        repair it, then copy every block from the primary, charging the
        full sequential read+write time of both arms.

        The paper: "Recovery is simply done by copying the complete
        disk." The copy streams in large extents so it runs at media
        rate rather than per-block cost.

        Recovery is *online*: ``repair()`` makes the target live
        immediately, so concurrent mirrored writes forward to it while
        the copy streams. Each chunk is a stale snapshot of the source
        taken one arm-rotation before it lands on the target, so a
        forwarded write can be clobbered by the copy (found by the
        model checker: a CREATE racing a recovery lost its inode-table
        update on the rebuilt disk, and a crash+restart then booted
        from the stale table). Every mirrored write issued while the
        copy is active is therefore logged, and after the streaming
        pass those extents are re-copied — waiting for the logged
        write to land first, so the re-read is fresh — until a round
        completes with no new writes.
        """
        source = self.primary
        if target is source:
            raise ValueError("cannot recover a disk from itself")
        if self._resync_dirty is not None:
            raise ConsistencyError("a recovery is already in progress")
        target.repair()
        total = min(source.total_blocks, target.total_blocks)
        extent = 2048  # blocks per copy chunk (1 MB at 512-byte blocks)
        self._resync_dirty = []
        try:
            copied = 0
            while copied < total:
                n = min(extent, total - copied)
                data = yield source.read(copied, n)
                yield target.write(copied, data)
                copied += n
            while self._resync_dirty:
                dirty, self._resync_dirty = self._resync_dirty, []
                for start, nblocks, writes in dirty:
                    for event in writes:
                        if not event.triggered:
                            try:
                                yield event
                            except (DiskIOError, Interrupt, ServerDownError):
                                pass  # replica died / writer was killed
                    data = yield source.read(start, nblocks)
                    yield target.write(start, data)
        finally:
            self._resync_dirty = None
        if target not in self.disks:
            self.disks.append(target)
        self._trace("mirror", f"recovery onto {target.name} complete",
                    blocks=total)
        return total

    def _trace(self, category: str, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(category, message, **fields)
