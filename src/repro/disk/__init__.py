"""Disk substrate (S4/S5): virtual disks with seek/rotation/transfer
timing, request scheduling, mirroring, and fault injection."""

from .faults import FaultInjector
from .geometry import DiskGeometry
from .mirror import MirroredDiskSet
from .scheduler import ElevatorQueue, FcfsQueue, make_queue
from .vdisk import DiskStats, VirtualDisk

__all__ = [
    "FaultInjector",
    "DiskGeometry",
    "MirroredDiskSet",
    "ElevatorQueue",
    "FcfsQueue",
    "make_queue",
    "DiskStats",
    "VirtualDisk",
]
