"""Disk request scheduling disciplines.

The paper's server is single-threaded per disk, so a queue discipline
only matters under concurrent load (the scalability experiments). Two
classic disciplines are provided:

* :class:`FcfsQueue` — first come, first served.
* :class:`ElevatorQueue` — SCAN: serve requests in cylinder order,
  sweeping up then down, which bounds seek work under load.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Optional, Protocol

from ..errors import ConsistencyError

__all__ = ["FcfsQueue", "ElevatorQueue", "make_queue"]


class _Schedulable(Protocol):
    cylinder: int


class FcfsQueue:
    """First-come-first-served request queue."""

    def __init__(self):
        self._queue: deque = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: _Schedulable) -> None:
        self._queue.append(request)

    def pop(self, current_cylinder: int) -> Optional[_Schedulable]:
        """Next request; ``current_cylinder`` is ignored for FCFS."""
        return self._queue.popleft() if self._queue else None


class ElevatorQueue:
    """SCAN (elevator) scheduling.

    Requests are served in cylinder order in the current sweep
    direction; when no request remains ahead of the arm, the direction
    reverses. Ties (same cylinder) are FIFO via an insertion counter.

    The pending set is a list kept sorted by ``(cylinder, counter)``, so
    ``push`` is O(n) (``insort``'s shift) and ``pop`` is an O(log n)
    bisect plus an O(n) deletion shift — versus the previous
    implementation's two full scans plus an O(n) ``list.remove`` per
    pop, which made a busy queue quadratic overall.
    """

    def __init__(self):
        self._pending: list = []
        self._counter = 0
        self._direction = 1  # +1 sweeping to higher cylinders

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, request: _Schedulable) -> None:
        self._counter += 1
        bisect.insort(self._pending,
                      (request.cylinder, self._counter, request))

    def pop(self, current_cylinder: int) -> Optional[_Schedulable]:
        if not self._pending:
            return None
        index = self._ahead_index(current_cylinder)
        if index is None:
            self._direction = -self._direction
            index = self._ahead_index(current_cylinder)
        if index is None:
            # Unreachable while _pending is non-empty: one sweep
            # direction always sees at least one request.
            raise ConsistencyError("elevator queue found no request to serve")
        return self._pending.pop(index)[2]

    def _ahead_index(self, current_cylinder: int) -> Optional[int]:
        """Index of the closest request at or beyond the arm in the
        sweep direction; same-cylinder ties resolve to the oldest
        request (lowest counter) in both directions."""
        if self._direction > 0:
            # First entry with cylinder >= arm; sorted order makes it
            # the lowest such cylinder with the lowest counter.
            index = bisect.bisect_left(self._pending, (current_cylinder,))
            return index if index < len(self._pending) else None
        # Highest cylinder <= arm: the entry just before the first one
        # past the arm, then rewound to that cylinder's oldest request.
        index = bisect.bisect_left(self._pending, (current_cylinder + 1,))
        if index == 0:
            return None
        cylinder = self._pending[index - 1][0]
        return bisect.bisect_left(self._pending, (cylinder,))


def make_queue(discipline: str):
    """Factory: ``"fcfs"`` or ``"elevator"``."""
    if discipline == "fcfs":
        return FcfsQueue()
    if discipline == "elevator":
        return ElevatorQueue()
    raise ValueError(f"unknown disk scheduling discipline {discipline!r}")
