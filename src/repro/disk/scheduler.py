"""Disk request scheduling disciplines.

The paper's server is single-threaded per disk, so a queue discipline
only matters under concurrent load (the scalability experiments). Two
classic disciplines are provided:

* :class:`FcfsQueue` — first come, first served.
* :class:`ElevatorQueue` — SCAN: serve requests in cylinder order,
  sweeping up then down, which bounds seek work under load.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Protocol

from ..errors import ConsistencyError

__all__ = ["FcfsQueue", "ElevatorQueue", "make_queue"]


class _Schedulable(Protocol):
    cylinder: int


class FcfsQueue:
    """First-come-first-served request queue."""

    def __init__(self):
        self._queue: deque = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: _Schedulable) -> None:
        self._queue.append(request)

    def pop(self, current_cylinder: int) -> Optional[_Schedulable]:
        """Next request; ``current_cylinder`` is ignored for FCFS."""
        return self._queue.popleft() if self._queue else None


class ElevatorQueue:
    """SCAN (elevator) scheduling.

    Requests are served in cylinder order in the current sweep
    direction; when no request remains ahead of the arm, the direction
    reverses. Ties (same cylinder) are FIFO via an insertion counter.
    """

    def __init__(self):
        self._pending: list = []
        self._counter = 0
        self._direction = 1  # +1 sweeping to higher cylinders

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, request: _Schedulable) -> None:
        self._counter += 1
        self._pending.append((request.cylinder, self._counter, request))

    def pop(self, current_cylinder: int) -> Optional[_Schedulable]:
        if not self._pending:
            return None
        chosen = self._best_ahead(current_cylinder)
        if chosen is None:
            self._direction = -self._direction
            chosen = self._best_ahead(current_cylinder)
        if chosen is None:
            # Unreachable while _pending is non-empty: one sweep
            # direction always sees at least one request.
            raise ConsistencyError("elevator queue found no request to serve")
        self._pending.remove(chosen)
        return chosen[2]

    def _best_ahead(self, current_cylinder: int):
        """Closest request at or beyond the arm in the sweep direction."""
        if self._direction > 0:
            ahead = [r for r in self._pending if r[0] >= current_cylinder]
            return min(ahead, key=lambda r: (r[0], r[1])) if ahead else None
        ahead = [r for r in self._pending if r[0] <= current_cylinder]
        return max(ahead, key=lambda r: (r[0], -r[1])) if ahead else None


def make_queue(discipline: str):
    """Factory: ``"fcfs"`` or ``"elevator"``."""
    if discipline == "fcfs":
        return FcfsQueue()
    if discipline == "elevator":
        return ElevatorQueue()
    raise ValueError(f"unknown disk scheduling discipline {discipline!r}")
