"""Bullet server inodes and the resident inode table (§3).

An inode is 16 bytes on disk, exactly as the paper specifies:

1. A 6-byte random number used for access protection (the capability
   check secret).
2. A 2-byte *index* into the rnode (cache) table — "no significance on
   disk", so it is always written to disk as zero.
3. A 4-byte first-block number of the file's contiguous extent.
4. A 4-byte file size in bytes.

A zero-filled inode is free. Inode 0 is special: it holds the **disk
descriptor** (block size, control size, data size — three 4-byte
integers), so real files have object numbers >= 1.

"When the file server starts up, it reads the complete inode table into
the RAM inode table and keeps it there permanently."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import BadRequestError, ConsistencyError, NoSpaceError

__all__ = ["Inode", "InodeTable", "DiskDescriptor", "INODE_SIZE"]

INODE_SIZE = 16
SECRET_BYTES = 6
MAX_FILE_SIZE = (1 << 32) - 1

#: On-disk form of a free inode; format/boot scans touch thousands of
#: these, so both codec directions special-case it.
_FREE_INODE_BYTES = bytes(INODE_SIZE)


@dataclass(slots=True)
class Inode:
    """One resident inode. ``secret == 0`` means the inode is free."""

    secret: int = 0        # 48-bit capability secret; 0 = free inode
    index: int = 0         # rnode index + 1 if cached, 0 otherwise (RAM only)
    start_block: int = 0   # first block of the contiguous extent
    size: int = 0          # file size in bytes

    @property
    def free(self) -> bool:
        return self.secret == 0

    def encode(self) -> bytes:
        """The 16-byte on-disk form. The cache index is volatile and is
        written as zero."""
        if self.secret == 0 and self.start_block == 0 and self.size == 0:
            return _FREE_INODE_BYTES
        if not 0 <= self.secret < (1 << 48):
            raise BadRequestError(f"inode secret out of range: {self.secret:#x}")
        if not 0 <= self.size <= MAX_FILE_SIZE:
            raise BadRequestError(f"inode size out of range: {self.size}")
        return (
            self.secret.to_bytes(6, "big")
            + (0).to_bytes(2, "big")
            + self.start_block.to_bytes(4, "big")
            + self.size.to_bytes(4, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "Inode":
        if len(data) != INODE_SIZE:
            raise BadRequestError(f"inode must be {INODE_SIZE} bytes, got {len(data)}")
        if data == _FREE_INODE_BYTES:
            return cls()
        return cls(
            secret=int.from_bytes(data[0:6], "big"),
            index=int.from_bytes(data[6:8], "big"),
            start_block=int.from_bytes(data[8:12], "big"),
            size=int.from_bytes(data[12:16], "big"),
        )


@dataclass(frozen=True)
class DiskDescriptor:
    """Inode entry 0: the volume's shape.

    * ``block_size`` — the physical sector size used by the disk hardware;
    * ``control_size`` — the number of blocks in the inode table;
    * ``data_size`` — the number of blocks in the file (data) area.
    """

    block_size: int
    control_size: int
    data_size: int

    MAGIC = 0xB011E7  # identifies a formatted Bullet volume

    def encode(self) -> bytes:
        return (
            self.MAGIC.to_bytes(4, "big")
            + self.block_size.to_bytes(4, "big")
            + self.control_size.to_bytes(4, "big")
            + self.data_size.to_bytes(4, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "DiskDescriptor":
        if len(data) < INODE_SIZE:
            raise BadRequestError("descriptor needs 16 bytes")
        magic = int.from_bytes(data[0:4], "big")
        if magic != cls.MAGIC:
            raise ConsistencyError(
                f"not a Bullet volume (magic {magic:#x} != {cls.MAGIC:#x})"
            )
        return cls(
            block_size=int.from_bytes(data[4:8], "big"),
            control_size=int.from_bytes(data[8:12], "big"),
            data_size=int.from_bytes(data[12:16], "big"),
        )


class InodeTable:
    """The complete inode table, resident in server RAM.

    Tracks free inodes in a list ("unused inodes ... are maintained in a
    list") and maps inode numbers to/from disk blocks for write-through
    of single inode updates ("the whole disk block containing the inode
    has to be written").
    """

    def __init__(self, descriptor: DiskDescriptor, count: int):
        if count < 2:
            raise BadRequestError("inode table needs at least 2 entries")
        self.descriptor = descriptor
        self.count = count
        self._inodes: list[Inode] = [Inode() for _ in range(count)]
        self._free: list[int] = list(range(count - 1, 0, -1))  # stack; low first out

    # ------------------------------------------------------------ access

    def __len__(self) -> int:
        return self.count

    def get(self, number: int) -> Inode:
        """The inode for object ``number`` (1-based; 0 is the descriptor)."""
        if not 1 <= number < self.count:
            raise BadRequestError(f"inode number {number} out of range")
        return self._inodes[number]

    def live_inodes(self) -> Iterator[tuple[int, Inode]]:
        """(number, inode) for every in-use inode."""
        for number in range(1, self.count):
            inode = self._inodes[number]
            if not inode.free:
                yield number, inode

    @property
    def live_count(self) -> int:
        return sum(1 for _ in self.live_inodes())

    @property
    def free_count(self) -> int:
        return len(self._free)

    # -------------------------------------------------------- allocation

    def allocate(self, secret: int, start_block: int, size: int) -> int:
        """Claim a free inode; returns its number."""
        if secret == 0:
            raise BadRequestError("inode secret must be nonzero")
        if not self._free:
            raise NoSpaceError("inode table exhausted")
        number = self._free.pop()
        inode = self._inodes[number]
        if not inode.free:
            raise ConsistencyError(f"free list corrupt: inode {number} is live")
        inode.secret = secret
        inode.index = 0
        inode.start_block = start_block
        inode.size = size
        return number

    def release(self, number: int) -> None:
        """Zero an inode ("freeing an inode by zeroing it") and return it
        to the free list."""
        inode = self.get(number)
        if inode.free:
            raise BadRequestError(f"inode {number} is already free")
        inode.secret = 0
        inode.index = 0
        inode.start_block = 0
        inode.size = 0
        self._free.append(number)

    # ----------------------------------------------------- (de)serializing

    def encode_block(self, block_index: int) -> bytes:
        """The on-disk bytes of inode-table block ``block_index``.

        Block 0 starts with the disk descriptor in inode slot 0.
        """
        per_block = self.inodes_per_block
        first = block_index * per_block
        parts = []
        for number in range(first, min(first + per_block, self.count)):
            if number == 0:
                parts.append(self.descriptor.encode())
            else:
                parts.append(self._inodes[number].encode())
        blob = b"".join(parts)
        return blob + bytes(self.descriptor.block_size - len(blob))

    def block_of_inode(self, number: int) -> int:
        """Which inode-table block holds inode ``number``."""
        if not 0 <= number < self.count:
            raise BadRequestError(f"inode number {number} out of range")
        return number // self.inodes_per_block

    @property
    def inodes_per_block(self) -> int:
        return self.descriptor.block_size // INODE_SIZE

    @property
    def table_blocks(self) -> int:
        per_block = self.inodes_per_block
        return (self.count + per_block - 1) // per_block

    def encode(self) -> bytes:
        """The whole table as written at format time."""
        return b"".join(self.encode_block(b) for b in range(self.table_blocks))

    @classmethod
    def decode(cls, data: bytes, block_size: int) -> "InodeTable":
        """Rebuild the resident table from the raw inode-table bytes.

        The free list is rebuilt by scanning for zero-filled inodes,
        exactly as the startup scan does.
        """
        descriptor = DiskDescriptor.decode(data[:INODE_SIZE])
        if descriptor.block_size != block_size:
            raise ConsistencyError(
                f"descriptor block size {descriptor.block_size} != disk {block_size}"
            )
        count = min(
            descriptor.control_size * (block_size // INODE_SIZE),
            len(data) // INODE_SIZE,
        )
        table = cls.__new__(cls)
        table.descriptor = descriptor
        table.count = count
        table._inodes = [Inode()]
        for number in range(1, count):
            raw = data[number * INODE_SIZE:(number + 1) * INODE_SIZE]
            table._inodes.append(Inode.decode(raw))
        table._free = [
            number for number in range(count - 1, 0, -1)
            if table._inodes[number].free
        ]
        return table
