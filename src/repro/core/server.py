"""The Bullet file server (the paper's contribution, §2–§3).

Files are immutable, stored contiguously on disk and in the RAM cache,
and transferred whole. The interface is the paper's four functions —
CREATE, SIZE, READ, DELETE — plus the §5 extension MODIFY (derive a new
file from an existing one server-side) and the administrative
operations (STAT, RESTRICT, COMPACT, FSCK).

The server exposes two equivalent planes:

* **Local plane** — ``yield env.process(server.create(data, p))`` etc.:
  the full server logic with disk, cache, and CPU timing but no network.
  Tests and in-process composition (the directory server embedding a
  Bullet volume) use this.
* **RPC plane** — a service loop on the server's port; clients use
  :class:`repro.client.BulletClient`. This is what the paper's
  measurements exercise. With the default ``workers=1`` it is the
  paper's single-threaded loop ("one request is handled at a time");
  with ``workers=N`` the endpoint's inbox becomes an admission queue
  feeding a pool of N worker processes, and the per-file lock plane
  (:mod:`repro.core.locks`) restores the invariants single-threading
  used to provide for free (DESIGN.md §9).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..analysis.runtime import active_checker
from ..capability import (
    Capability,
    RIGHT_DELETE,
    RIGHT_MODIFY,
    RIGHT_READ,
    mint_owner,
    port_for_name,
    require,
    server_restrict,
)
from ..disk import MirroredDiskSet
from ..errors import (
    BadRequestError,
    FileTooBigError,
    NotFoundError,
    ReproError,
)
from ..net import RpcReply, RpcRequest, RpcTransport
from ..obs import MetricsRegistry
from ..profiles import Testbed
from ..sim import Environment, Interrupt, SeededStream, Tracer
from .cache import BulletCache
from .freelist import ExtentFreeList
from .inode import InodeTable
from .layout import VolumeLayout, format_volume, render_layout
from .locks import FileLockTable
from .recovery import ScanReport, scan_volume
from .replication import check_p_factor, replicated_file_write, replicated_inode_write
from .stats import ServerStats

__all__ = ["BulletServer", "VerifiedCapCache", "OPCODES"]


#: RPC opcodes of the Bullet protocol.
OPCODES = {
    "CREATE": 1,
    "READ": 2,
    "SIZE": 3,
    "DELETE": 4,
    "MODIFY": 5,
    "STAT": 6,
    "RESTRICT": 7,
}

_OPNAMES = {number: name for name, number in OPCODES.items()}


class VerifiedCapCache:
    """The bounded verified-capability cache.

    "Capabilities can be cached to avoid decryption for each access" —
    but the cache models a slice of finite server RAM, so it is capped
    with LRU eviction, and it is indexed by object number so DELETE
    invalidates one object's entries without rebuilding the whole set
    (both fixed here; the old implementation was an unbounded ``set``
    rebuilt on every delete).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise BadRequestError("cap cache needs at least one entry")
        self.capacity = capacity
        self._order: OrderedDict[tuple[int, int, int], None] = OrderedDict()
        self._by_object: dict[int, set[tuple[int, int, int]]] = {}

    def __len__(self) -> int:
        return len(self._order)

    def hit(self, key: tuple[int, int, int]) -> bool:
        """Membership probe; refreshes the entry's recency on a hit."""
        if key not in self._order:
            return False
        self._order.move_to_end(key)
        return True

    def add(self, key: tuple[int, int, int]) -> None:
        if key in self._order:
            self._order.move_to_end(key)
            return
        self._order[key] = None
        self._by_object.setdefault(key[0], set()).add(key)
        while len(self._order) > self.capacity:
            victim, _ = self._order.popitem(last=False)
            remaining = self._by_object[victim[0]]
            remaining.discard(victim)
            if not remaining:
                del self._by_object[victim[0]]

    def forget_object(self, number: int) -> None:
        """Invalidate every cached capability of one object (the DELETE
        path) — O(entries for that object), not O(cache size)."""
        for key in sorted(self._by_object.pop(number, ())):
            del self._order[key]

    def clear(self) -> None:
        self._order.clear()
        self._by_object.clear()


class BulletServer:
    """One Bullet file server instance over a mirrored disk set."""

    def __init__(
        self,
        env: Environment,
        mirror: MirroredDiskSet,
        testbed: Testbed,
        name: str = "bullet",
        transport: Optional[RpcTransport] = None,
        master_seed: int = 0,
        cache_policy: str = "lru",
        alloc_strategy: str = "first_fit",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
    ):
        if workers < 1:
            raise BadRequestError(f"need at least one worker, got {workers}")
        self.env = env
        self.workers = workers
        self.mirror = mirror
        self.testbed = testbed
        self.name = name
        self.port = port_for_name(name)
        self.transport = transport
        #: The observability registry this server accounts into. Shared
        #: across the testbed when the caller passes one (make_rig does);
        #: private otherwise, so a standalone server still self-reports.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ServerStats(self.metrics, server=name)
        # Hot-path instrument handles: the facade's attribute protocol
        # and the registry's label canonicalization are per-call costs
        # the serve loop should not pay (see RegistryStats.handle).
        self._c_reads = self.stats.handle("reads")
        self._c_bytes_read = self.stats.handle("bytes_read")
        self._c_cap_checks = self.stats.handle("cap_checks")
        self._c_cap_check_cache_hits = self.stats.handle(
            "cap_check_cache_hits")
        self._c_errors = self.stats.handle("errors")
        self._op_seconds: dict = {}     # opname -> Histogram
        self._error_counters: dict = {}  # status name -> Counter
        self._tracer = tracer
        self._secrets = SeededStream(master_seed, f"{name}:secrets")
        self._cache_policy = cache_policy
        self._alloc_strategy = alloc_strategy
        self._verified_caps = VerifiedCapCache(testbed.bullet.cap_cache_entries)
        # Aging clocks are mutated by concurrent CREATE/TOUCH/AGE/DELETE
        # handlers; every write goes through the inode's write lock.
        self._lives: dict[int, int] = {}  # repro: guarded_by(locks)
        self._endpoint = None
        self._serve_procs: list = []
        self._booted = False
        self._inflight_count = 0
        self._inflight = self.metrics.gauge(
            "repro_server_inflight", server=name)
        self._queue_depth = self.metrics.gauge(
            "repro_server_queue_depth", server=name)
        self._bg_write_failures = self.metrics.counter(
            "repro_background_write_failures_total", server=name)
        # Set by boot():
        self.table: InodeTable
        self.layout: VolumeLayout
        self.disk_free: ExtentFreeList
        self.cache: BulletCache
        self.locks: FileLockTable
        self.scan_report: ScanReport

    # ------------------------------------------------------------- setup

    def format(self) -> None:
        """mkfs every replica (untimed; done before the server's life)."""
        for disk in self.mirror.disks:
            format_volume(disk, self.testbed.bullet.inode_count)

    def boot(self, repair: bool = False):
        """Process: read the inode table from the primary disk, build the
        free lists, run the consistency checks, and start serving.

        "When the file server starts up, it reads the complete inode
        table into the RAM inode table and keeps it there permanently."
        """
        primary = self.mirror.primary
        layout = VolumeLayout.for_disk(primary, self.testbed.bullet.inode_count)
        raw = yield primary.read(0, layout.inode_table_blocks)
        self.table = InodeTable.decode(raw, primary.block_size)
        self.layout = layout
        self.disk_free, self.scan_report = scan_volume(
            self.table, layout, repair=repair, strategy=self._alloc_strategy
        )
        cache_bytes = (
            self.testbed.bullet.ram_bytes - self.testbed.bullet.reserved_ram_bytes
        )
        self.cache = BulletCache(
            cache_bytes,
            rnode_count=self.testbed.bullet.rnode_count,
            policy=self._cache_policy,
            on_evict=self._on_evict,
            metrics=self.metrics,
            owner=self.name,
        )
        self.disk_free.attach_gauges(
            fragmentation=self.metrics.gauge(
                "repro_freelist_fragmentation", area=f"{self.name}:disk"),
            free_units=self.metrics.gauge(
                "repro_freelist_free_units", area=f"{self.name}:disk"),
            largest_hole=self.metrics.gauge(
                "repro_freelist_largest_hole", area=f"{self.name}:disk"),
        )
        # Every surviving file starts its aging clock afresh; orphans
        # left by pre-crash clients die after max_lives sweeps.
        self._lives = {
            number: self.testbed.bullet.max_lives
            for number, _inode in self.table.live_inodes()
        }
        # The lock plane is volatile per-boot state, like the cache: a
        # crash drops every hold (RAM is gone) and a reboot starts clean.
        self.locks = FileLockTable(self.env, metrics=self.metrics,
                                   owner=self.name)
        self.metrics.gauge("repro_server_workers",
                           server=self.name).set(self.workers)
        self._booted = True
        if self.transport is not None:
            self._endpoint = self.transport.register(self.port)
            # The worker pool runs for the server's whole life; crash()
            # interrupts every worker (and a reboot starts a fresh pool).
            # All workers block on the same endpoint inbox, which is the
            # admission queue: FIFO hand-off, no dispatcher process.
            self._serve_procs = [self.env.process(self._serve())
                                 for _ in range(self.workers)]
        self._trace("bullet", f"{self.name} booted", files=self.scan_report.live_files)
        return self.scan_report

    def crash(self) -> None:
        """Stop serving and lose all volatile state (RAM cache, verified-
        capability cache). Durable state stays on the disks.

        The service loop is interrupted even mid-request, like a real
        power failure: a half-performed CREATE leaves whatever it had
        already written durably on disk (the crash-consistency story).
        """
        if self._endpoint is not None:
            self._endpoint.crash()
        self._booted = False
        self._verified_caps.clear()
        procs, self._serve_procs = self._serve_procs, []
        for proc in procs:
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("server crash")

    # --------------------------------------------------------- local API

    def create(self, data: bytes, p_factor: Optional[int] = None):
        """Process: BULLET.CREATE — store an immutable file, reply per the
        paranoia factor. Returns the owner :class:`Capability`."""
        self._require_booted()
        cpu = self.testbed.cpu
        yield self.env.timeout(cpu.request_dispatch)
        if p_factor is None:
            p_factor = self.testbed.bullet.default_p_factor
        check_p_factor(p_factor, self.mirror)
        size = len(data)
        if size > self.cache.capacity:
            raise FileTooBigError(
                f"{size}-byte file exceeds the server's {self.cache.capacity}-byte memory"
            )
        blocks = self.layout.blocks_for(size)
        start_block = self.disk_free.allocate(blocks) if blocks else 0
        secret = self._secrets.randint(1, (1 << 48) - 1)
        try:
            number = self.table.allocate(secret, start_block, size)
        except ReproError:
            if blocks:
                self.disk_free.free(start_block, blocks)
            raise
        # Copy the file into the contiguous RAM cache.
        try:
            rnode = self.cache.insert(number, data)
        except ReproError:
            self.table.release(number)
            if blocks:
                self.disk_free.free(start_block, blocks)
            raise
        self.table.get(number).index = rnode.number
        # Hold the new file's write lock until *every* replica write has
        # settled: no reader can chase the extent to disk, no compaction
        # can move it, and no delete can free it while background
        # replica writes are still in flight (at p_factor=0 the client
        # holds a capability long before the data is durable anywhere).
        write_grant = self.locks.acquire_write(number)
        settling = False
        try:
            yield write_grant
            yield self.env.timeout(size * cpu.memcpy_per_byte)
            # Write-through: data extent then inode block, per replica.
            inode_block = self.table.block_of_inode(number)
            replicated = replicated_file_write(
                self.env, self.mirror,
                data_block=start_block if blocks else None,
                data=bytes(data),
                inode_block=inode_block,
                inode_block_bytes=self.table.encode_block(inode_block),
                p_factor=p_factor,
            )
            # Start the aging clock while this handler still owns the
            # write grant: a TOUCH or AGE sweep can only see the entry
            # after taking the lock.
            self._note_lives_access(number)
            self._lives[number] = self.testbed.bullet.max_lives
            # Fork the settle watcher: it owns the write grant from here
            # and accounts any background replica failure (satellite fix:
            # p=0 used to drop those on the floor).
            settle = self.env.process(
                self._settle_create(number, write_grant, replicated.writes))
            settling = True
            self.locks.transfer(write_grant, settle)
            if p_factor > 0:
                yield replicated.durable
        finally:
            if not settling:
                self.locks.release(write_grant)
        self.stats.creates += 1
        self.stats.bytes_created += size
        if self._tracer is not None:
            self._trace("bullet", "create", inode=number, size=size,
                        p=p_factor)
        return mint_owner(self.port, number, secret)

    def _settle_create(self, number: int, grant, writes):
        """Process: watch a CREATE's replica writes to completion, then
        drop the file's write lock. Failures beyond the quorum (all of
        them, at p_factor=0) are counted, traced, and surfaced in
        :meth:`status` instead of being silently defused."""
        locks = self.locks
        try:
            for write in writes:
                try:
                    # Intentional blocking section: holding the write
                    # grant until the replica writes settle is the whole
                    # point of the handoff (no reader may chase the
                    # extent to disk before it is durable).
                    yield write  # repro: allow(L002)
                except ReproError as exc:
                    self._bg_write_failures.inc()
                    self._trace("bullet", "background replica write failed",
                                inode=number, status=exc.status.name)
        finally:
            locks.release(grant)

    def read(self, cap: Capability):
        """Process: BULLET.READ — returns the whole file contents."""
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        locks = self.locks
        grant = locks.acquire_read(cap.object)
        try:
            yield grant
            number, inode = yield from self._check(cap, RIGHT_READ)
            tracing = self._tracer is not None
            rnode = self._cached_rnode(number, inode)
            if rnode is None:
                # Miss: upgrade to the write lock before touching the
                # disk, so the extent cannot move (compaction) or be
                # freed (delete) under the read, and two concurrent
                # misses cannot both reserve cache space for the file.
                locks.release(grant)
                grant = locks.acquire_write(cap.object)
                yield grant
                inode = self._revalidate(cap, RIGHT_READ)
                # Re-probe statlessly: this request's miss is already
                # accounted; another worker may have loaded the file
                # while we waited for the lock.
                rnode = self.cache.peek(number)
            if rnode is None:
                disk_span = self._span_begin(
                    "server.disk", inode=number, size=inode.size
                ) if tracing else 0
                rnode = yield from self._load_from_disk(number, inode)
                if tracing:
                    self._span_end(disk_span, "server.disk")
            self.cache.touch(rnode)
            # Copy from the contiguous cache into the network buffers;
            # pinned so no concurrent miss can evict it mid-copy.
            cache_span = self._span_begin(
                "server.cache", inode=number, size=inode.size
            ) if tracing else 0
            self.cache.pin(rnode)
            try:
                yield self.env.timeout(
                    inode.size * self.testbed.cpu.memcpy_per_byte)
            finally:
                self.cache.unpin(rnode)
            if tracing:
                self._span_end(cache_span, "server.cache")
            self._c_reads.inc(1)
            self._c_bytes_read.inc(inode.size)
            return rnode.data
        finally:
            locks.release(grant)

    def size(self, cap: Capability):
        """Process: BULLET.SIZE — the file's size in bytes."""
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        locks = self.locks
        grant = locks.acquire_read(cap.object)
        try:
            yield grant
            _number, inode = yield from self._check(cap, RIGHT_READ)
            self.stats.sizes += 1
            return inode.size
        finally:
            locks.release(grant)

    def delete(self, cap: Capability):
        """Process: BULLET.DELETE — discard the file.

        "Deleting a file involves checking the capability, freeing an
        inode by zeroing it and writing it back to the disk." The write
        lock makes the free safe under concurrency: no in-flight READ
        is still following the extent, and a CREATE's background
        replica writes to it have settled.
        """
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        locks = self.locks
        grant = locks.acquire_write(cap.object)
        try:
            yield grant
            number, inode = yield from self._check(cap, RIGHT_DELETE)
            yield from self._destroy(number, inode)
        finally:
            locks.release(grant)
        self.stats.deletes += 1
        if self._tracer is not None:
            self._trace("bullet", "delete", inode=number)

    def _destroy(self, number: int, inode):
        """Free an inode and its extent, write the change through."""
        blocks = self.layout.blocks_for(inode.size)
        start_block = inode.start_block
        self.cache.remove(number)
        self.table.release(number)
        if blocks:
            self.disk_free.free(start_block, blocks)
        self._forget_caps(number)
        self._note_lives_access(number)
        self._lives.pop(number, None)
        # The inode number is now free for reincarnation: the next file
        # under it is a different object, so its lockset history starts
        # from scratch.
        checker = active_checker()
        if checker is not None:
            checker.reset((f"{self.name}._lives", number))
        inode_block = self.table.block_of_inode(number)
        yield replicated_inode_write(
            self.env, self.mirror, inode_block, self.table.encode_block(inode_block)
        )

    def modify(self, cap: Capability, offset: int, delete_bytes: int,
               insert_data: bytes, p_factor: Optional[int] = None):
        """Process: the §5 extension — derive a new immutable file from an
        existing one entirely server-side, "such that for a small
        modification it is not necessary any longer to transfer the whole
        file". Returns the new file's owner capability; the original is
        untouched."""
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        locks = self.locks
        grant = locks.acquire_read(cap.object)
        try:
            yield grant
            number, inode = yield from self._check(
                cap, RIGHT_READ | RIGHT_MODIFY)
            if (offset < 0 or delete_bytes < 0
                    or offset + delete_bytes > inode.size):
                raise BadRequestError(
                    f"modify range [{offset}, {offset + delete_bytes}) "
                    f"outside the {inode.size}-byte file"
                )
            tracing = self._tracer is not None
            rnode = self._cached_rnode(number, inode)
            if rnode is None:
                # Same upgrade dance as the READ miss path.
                locks.release(grant)
                grant = locks.acquire_write(cap.object)
                yield grant
                inode = self._revalidate(cap, RIGHT_READ | RIGHT_MODIFY)
                rnode = self.cache.peek(number)
            if rnode is None:
                rnode = yield from self._load_from_disk(number, inode)
            self.cache.touch(rnode)
            old = rnode.data
            new_data = (old[:offset] + insert_data
                        + old[offset + delete_bytes:])
        finally:
            # The source bytes are composed; the derived CREATE below
            # runs without any hold on the source file.
            locks.release(grant)
        new_cap = yield from self.create(new_data, p_factor)
        self.stats.modifies += 1
        self.stats.bytes_modified += len(new_data)
        return new_cap

    def restrict_cap(self, cap: Capability, mask: int):
        """Process: server-side rights restriction of a verified
        capability (any capability, unlike the client-local restrict)."""
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        number, inode = yield from self._check(cap, 0)
        new_rights, new_check = server_restrict(cap.rights, inode.secret, mask)
        self.stats.restricts += 1
        return Capability(port=self.port, object=number,
                          rights=new_rights, check=new_check)

    def touch(self, cap: Capability):
        """Process: std_touch — reset the object's lives to the maximum.

        The directory service's GC daemon touches every capability it
        can reach, so reachable files never age out.
        """
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        # The lives table is lock-guarded state: take the write lock so
        # a touch cannot interleave with a concurrent AGE sweep's
        # decrement-and-reclaim on the same object (uncontended, the
        # grant costs no simulated time).
        locks = self.locks
        grant = locks.acquire_write(cap.object)
        try:
            yield grant
            number, _inode = yield from self._check(cap, 0)
            self._note_lives_access(number)
            self._lives[number] = self.testbed.bullet.max_lives
            return self._lives[number]
        finally:
            locks.release(grant)

    def age_all(self):
        """Process: std_age — decrement every object's lives; reclaim
        the ones that reach zero (orphans nobody touched for max_lives
        sweeps). Returns the reclaimed inode numbers."""
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        reclaimed = []
        for number, _inode in list(self.table.live_inodes()):
            # Decrement *under* the object's write lock: the lives table
            # is lock-guarded state, and folding the decrement into the
            # reclaim grant closes the window where a concurrent touch
            # could resurrect an object between the two passes without
            # being seen (uncontended, the grant costs no sim time).
            grant = self.locks.acquire_write(number)
            try:
                yield grant
                inode = self.table.get(number)
                if inode.free:
                    continue  # a concurrent delete beat us to it
                self._note_lives_access(number)
                lives = self._lives.get(
                    number, self.testbed.bullet.max_lives) - 1
                self._lives[number] = lives
                if lives > 0:
                    continue
                yield from self._destroy(number, inode)
                self._trace("bullet", "aged out", inode=number)
                reclaimed.append(number)
            finally:
                self.locks.release(grant)
        return reclaimed

    def lives_of(self, inode_number: int) -> int:
        """Remaining lives of a live object (for tests/monitoring)."""
        inode = self.table.get(inode_number)
        if inode.free:
            raise NotFoundError(f"object {inode_number} does not exist")
        return self._lives.get(inode_number, self.testbed.bullet.max_lives)

    def evict(self, inode_number: int) -> None:
        """Administratively drop a file from the RAM cache (keeps the
        inode.index invariant). Benchmarks use this to measure cold
        reads."""
        self._require_booted()
        # Admin/bench path, deliberately lock-free: it runs synchronously
        # between measured phases, never inside the serve pool, and the
        # cache itself refuses to drop a pinned rnode. Taking the write
        # lock here would perturb the benchmark's lock metrics.
        self.cache.remove(inode_number)  # repro: allow(L004)
        inode = self.table.get(inode_number)
        if not inode.free:
            inode.index = 0

    def status(self) -> dict:
        """std_status: live counters and space accounting (synchronous)."""
        self._require_booted()
        return {
            "name": self.name,
            "files": self.table.live_count,
            "free_inodes": self.table.free_count,
            "disk_free_blocks": self.disk_free.free_units,
            "disk_largest_hole": self.disk_free.largest_hole,
            "disk_fragmentation": self.disk_free.external_fragmentation(),
            "cache_used_bytes": self.cache.used_bytes,
            "cache_free_bytes": self.cache.free_bytes,
            "cache_hit_rate": self.cache.stats.hit_rate,
            "replicas_live": self.mirror.replica_count,
            "workers": self.workers,
            "requests_inflight": self._inflight_count,
            "background_write_failures": self._bg_write_failures.value,
            "verified_caps_cached": len(self._verified_caps),
            **self.stats.snapshot(),
        }

    def render_layout(self) -> str:
        """The Fig. 1 picture for the current volume state."""
        self._require_booted()
        return render_layout(self.table, self.disk_free)

    # ----------------------------------------------------- internal paths

    def _check(self, cap: Capability, needed_rights: int):
        """Verify a capability and resolve its inode (generator).

        Charges the one-way-function cost, or the cheap cached-check cost
        for capabilities verified before ("capabilities can be cached to
        avoid decryption for each access").
        """
        cpu = self.testbed.cpu
        key = (cap.object, cap.rights, cap.check)
        self._c_cap_checks.inc(1)
        if self._verified_caps.hit(key):
            self._c_cap_check_cache_hits.inc(1)
            yield self.env.timeout(cpu.capability_check_cached)
        else:
            yield self.env.timeout(cpu.capability_check)
        inode = self._revalidate(cap, needed_rights)
        self._verified_caps.add(key)
        return cap.object, inode

    def _revalidate(self, cap: Capability, needed_rights: int):
        """The untimed tail of :meth:`_check`: resolve the capability
        against current RAM state. Re-run after a lock upgrade — the
        file may have been deleted (or its inode number reincarnated)
        while this worker waited for the write lock."""
        if not 1 <= cap.object < len(self.table):
            raise NotFoundError(f"object {cap.object} out of range")
        inode = self.table.get(cap.object)
        if inode.free:
            raise NotFoundError(f"object {cap.object} does not exist")
        require(cap, inode.secret, needed_rights)
        return inode

    def _cached_rnode(self, number: int, inode):
        """Cache probe via the inode's index field. The accounting lives
        in :meth:`~repro.core.cache.BulletCache.probe_slot` — the cache
        is the only writer of its hit/miss counters, so the server
        cannot double count (the PR 4 bugfix)."""
        return self.cache.probe_slot(number, inode.index)

    def _load_from_disk(self, number: int, inode):
        """Read-miss path: reserve contiguous cache space (evicting LRU
        files as needed), then one contiguous disk read."""
        rnode = self.cache.reserve(number, inode.size)
        inode.index = rnode.number
        blocks = self.layout.blocks_for(inode.size)
        if blocks:
            data = yield from self.mirror.read_with_failover(
                inode.start_block, blocks
            )
            self.cache.fill(rnode, data[: inode.size])
        else:
            self.cache.fill(rnode, b"")
        return rnode

    def _on_evict(self, inode_number: int) -> None:
        """Cache eviction callback: clear the inode's index field."""
        inode = self.table.get(inode_number)
        inode.index = 0

    def _forget_caps(self, number: int) -> None:
        self._verified_caps.forget_object(number)

    def _note_lives_access(self, number: int) -> None:
        """Feed one ``_lives`` mutation to the runtime lockset checker
        (no-op unless a checker is active — see repro.analysis.runtime).
        Every caller writes, so the access is always recorded as one."""
        checker = active_checker()
        if checker is not None:
            checker.on_access((f"{self.name}._lives", number), True,
                              self.env.active_process, self.env.now)

    def _require_booted(self) -> None:
        if not self._booted:
            raise BadRequestError(f"server {self.name} is not booted")

    # ------------------------------------------------------------ RPC plane

    def _serve(self):
        """One worker of the service pool.

        At ``workers=1`` this is exactly the paper's single-threaded
        service loop (§3: the implementation is deliberately simple; one
        request is handled at a time). At ``workers=N``, N copies of
        this process block on the same endpoint inbox — the admission
        queue — and requests pipeline across the disk, memcpy, and
        network phases under the per-file lock plane.

        crash() interrupts every worker wherever it is — waiting for a
        request or halfway through serving one."""
        try:
            endpoint = self._endpoint
            while self._booted and endpoint is self._endpoint:
                req = yield endpoint.getreq()
                self._queue_depth.set(len(endpoint.inbox))
                tracing = self._tracer is not None
                if tracing:
                    self._span_end(req.queue_span, "rpc.queue")
                opname = _OPNAMES.get(req.opcode, str(req.opcode))
                op_span = self._span_begin("server.op", op=opname,
                                           server=self.name) if tracing else 0
                started = self.env.now
                self._inflight_count += 1
                self._inflight.set(self._inflight_count)
                try:
                    try:
                        reply = yield from self._dispatch(req)
                    except ReproError as exc:
                        reply = self._error_reply(exc)
                finally:
                    self._inflight_count -= 1
                    self._inflight.set(self._inflight_count)
                if tracing:
                    self._span_end(op_span, "server.op", status=reply.status)
                hist = self._op_seconds.get(opname)
                if hist is None:
                    hist = self.metrics.histogram(
                        "repro_server_op_seconds", server=self.name,
                        op=opname)
                    self._op_seconds[opname] = hist
                hist.observe(self.env.now - started)
                net_span = (self._span_begin("server.net", op=opname)
                            if tracing else 0)
                yield from endpoint.putrep(req, reply)
                if tracing:
                    self._span_end(net_span, "server.net")
        except Interrupt:
            return

    def _error_reply(self, exc: ReproError) -> RpcReply:
        """The single error-accounting chokepoint: every error reply the
        server sends is marshalled (and counted) here, so
        ``stats.errors`` and the per-status registry family
        ``repro_server_error_replies_total`` cannot drift apart no
        matter how many serve-loop sites exist (the PR 4 bugfix)."""
        self._c_errors.inc(1)
        status = exc.status.name
        counter = self._error_counters.get(status)
        if counter is None:
            counter = self.metrics.counter(
                "repro_server_error_replies_total",
                server=self.name, status=status,
            )
            self._error_counters[status] = counter
        counter.inc()
        self._trace("bullet", "error reply", status=exc.status.name)
        return RpcTransport.reply_for_error(exc)

    def _dispatch(self, req: RpcRequest):
        op = req.opcode
        if op == OPCODES["CREATE"]:
            p_factor = req.args[0] if req.args else None
            cap = yield from self.create(req.body, p_factor)
            return RpcReply(caps=(cap,))
        if req.cap is None:
            raise BadRequestError("request carries no capability")
        if op == OPCODES["READ"]:
            data = yield from self.read(req.cap)
            return RpcReply(body=data)
        if op == OPCODES["SIZE"]:
            size = yield from self.size(req.cap)
            return RpcReply(args=(size,))
        if op == OPCODES["DELETE"]:
            yield from self.delete(req.cap)
            return RpcReply()
        if op == OPCODES["MODIFY"]:
            offset, delete_bytes, p_factor = req.args
            cap = yield from self.modify(req.cap, offset, delete_bytes,
                                         req.body, p_factor)
            return RpcReply(caps=(cap,))
        if op == OPCODES["STAT"]:
            _n, _inode = yield from self._check(req.cap, 0)
            status = self.status()
            return RpcReply(args=(status,))
        if op == OPCODES["RESTRICT"]:
            mask = req.args[0]
            cap = yield from self.restrict_cap(req.cap, mask)
            return RpcReply(caps=(cap,))
        raise BadRequestError(f"unknown opcode {op}")

    def _trace(self, category: str, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(category, message, **fields)

    def _span_begin(self, name: str, **fields) -> int:
        # Call sites in hot loops pre-check self._tracer so the kwargs
        # dict is never built when tracing is off; this fallback check
        # keeps cold sites correct.
        if self._tracer is None:
            return 0
        return self._tracer.begin_span("span", name, **fields)

    def _span_end(self, span_id: int, name: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.end_span(span_id, "span", name, **fields)
