"""Extent free lists for contiguous allocation (§3).

The Bullet server scans its inode table at startup and "uses this
information to build a free list in RAM"; allocation is **first fit**.
Both the disk data area (unit: blocks) and the RAM cache (unit: bytes)
use this structure — the paper manages both with free lists.

Best-fit is provided as an ablation (A4), and the fragmentation metrics
back the paper's §3 discussion of the contiguity/fragmentation
trade-off ("buying an 800 MB disk to store 500 MB worth of files").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from ..errors import BadRequestError, ConsistencyError, NoSpaceError

__all__ = ["Extent", "ExtentFreeList"]


@dataclass(frozen=True)
class Extent:
    """A contiguous run of units: [start, start + length)."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length

    def __post_init__(self):
        if self.length <= 0:
            raise BadRequestError(f"extent length must be positive: {self.length}")
        if self.start < 0:
            raise BadRequestError(f"extent start must be >= 0: {self.start}")


class ExtentFreeList:
    """Free space over [area_start, area_start + area_size), kept as a
    sorted, coalesced list of holes."""

    def __init__(self, area_start: int, area_size: int,
                 strategy: str = "first_fit"):
        if area_size < 0:
            raise BadRequestError(f"negative area size {area_size}")
        if strategy not in ("first_fit", "best_fit"):
            raise BadRequestError(f"unknown allocation strategy {strategy!r}")
        self.area_start = area_start
        self.area_size = area_size
        self.strategy = strategy
        # Parallel sorted arrays of hole starts and lengths. Allocation
        # and free run from concurrent handlers (CREATE/DELETE/AGE) and
        # from compaction; mutation is only legal under a file lock from
        # the owning server's table (or before service starts).
        self._starts: list[int] = [area_start] if area_size else []    # repro: guarded_by(locks)
        self._lengths: list[int] = [area_size] if area_size else []    # repro: guarded_by(locks)
        # Observability gauges (repro.obs), published after every
        # mutation once attached.
        self._gauges: Optional[tuple] = None

    # ------------------------------------------------------------ queries

    @property
    def free_units(self) -> int:
        """Total free units."""
        return sum(self._lengths)

    @property
    def used_units(self) -> int:
        return self.area_size - self.free_units

    @property
    def largest_hole(self) -> int:
        return max(self._lengths, default=0)

    @property
    def hole_count(self) -> int:
        return len(self._starts)

    def holes(self) -> list[Extent]:
        """A snapshot of the holes, in address order."""
        return [Extent(s, l) for s, l in zip(self._starts, self._lengths)]

    def external_fragmentation(self) -> float:
        """1 - largest_hole/free: 0 when all free space is one hole,
        approaching 1 when free space is unusable for large requests."""
        free = self.free_units
        if free == 0:
            return 0.0
        return 1.0 - self.largest_hole / free

    # ------------------------------------------------------ observability

    def attach_gauges(self, fragmentation=None, free_units=None,
                      largest_hole=None) -> None:
        """Bind registry gauges (see :mod:`repro.obs`) that track this
        area's fragmentation state; they are updated eagerly after every
        allocate/free, so a snapshot at any sim time is current."""
        self._gauges = (fragmentation, free_units, largest_hole)
        self._publish()

    def detach_gauges(self) -> tuple:
        """Unbind and return the gauges (for arena rebuilds)."""
        gauges = self._gauges or (None, None, None)
        self._gauges = None
        return gauges

    def _publish(self) -> None:
        if self._gauges is None:
            return
        fragmentation, free_units, largest_hole = self._gauges
        if fragmentation is not None:
            fragmentation.set(self.external_fragmentation())
        if free_units is not None:
            free_units.set(self.free_units)
        if largest_hole is not None:
            largest_hole.set(self.largest_hole)

    def is_free(self, start: int, length: int) -> bool:
        """True when [start, start+length) lies entirely inside a hole."""
        if length <= 0:
            return False
        i = bisect.bisect_right(self._starts, start) - 1
        if i < 0:
            return False
        return self._starts[i] <= start and start + length <= self._starts[i] + self._lengths[i]

    # --------------------------------------------------------- allocation

    def allocate(self, length: int) -> int:
        """Carve ``length`` units out of a hole; returns the start.

        Raises :class:`NoSpaceError` when no single hole is large enough
        — which can happen from fragmentation even when total free space
        suffices (the case compaction exists to fix).
        """
        if length <= 0:
            raise BadRequestError(f"allocation length must be positive: {length}")
        index = self._pick_hole(length)
        if index is None:
            if self.free_units >= length:
                raise NoSpaceError(
                    f"no contiguous hole of {length} units "
                    f"(fragmented: {self.free_units} free in "
                    f"{self.hole_count} holes, largest {self.largest_hole})"
                )
            raise NoSpaceError(
                f"out of space: {length} units requested, {self.free_units} free"
            )
        start = self._starts[index]
        if self._lengths[index] == length:
            del self._starts[index]
            del self._lengths[index]
        else:
            self._starts[index] += length
            self._lengths[index] -= length
        self._publish()
        return start

    def allocate_at(self, start: int, length: int) -> None:
        """Claim a specific extent (startup scan replaying live inodes)."""
        if length <= 0:
            raise BadRequestError(f"allocation length must be positive: {length}")
        i = bisect.bisect_right(self._starts, start) - 1
        if i < 0 or not (
            self._starts[i] <= start
            and start + length <= self._starts[i] + self._lengths[i]
        ):
            raise ConsistencyError(
                f"extent [{start}, {start + length}) is not free"
            )
        hole_start = self._starts[i]
        hole_len = self._lengths[i]
        del self._starts[i]
        del self._lengths[i]
        right_start = start + length
        right_len = hole_start + hole_len - right_start
        if right_len > 0:
            self._starts.insert(i, right_start)
            self._lengths.insert(i, right_len)
        left_len = start - hole_start
        if left_len > 0:
            self._starts.insert(i, hole_start)
            self._lengths.insert(i, left_len)
        self._publish()

    def free(self, start: int, length: int) -> None:
        """Return [start, start+length) to the free list, coalescing with
        neighbours."""
        if length <= 0:
            raise BadRequestError(f"free length must be positive: {length}")
        if start < self.area_start or start + length > self.area_start + self.area_size:
            raise BadRequestError(
                f"extent [{start}, {start + length}) outside the managed area"
            )
        i = bisect.bisect_left(self._starts, start)
        # Overlap checks against both neighbours.
        if i > 0 and self._starts[i - 1] + self._lengths[i - 1] > start:
            raise ConsistencyError(
                f"double free: [{start}, {start + length}) overlaps a hole"
            )
        if i < len(self._starts) and start + length > self._starts[i]:
            raise ConsistencyError(
                f"double free: [{start}, {start + length}) overlaps a hole"
            )
        merge_left = i > 0 and self._starts[i - 1] + self._lengths[i - 1] == start
        merge_right = i < len(self._starts) and start + length == self._starts[i]
        if merge_left and merge_right:
            self._lengths[i - 1] += length + self._lengths[i]
            del self._starts[i]
            del self._lengths[i]
        elif merge_left:
            self._lengths[i - 1] += length
        elif merge_right:
            self._starts[i] = start
            self._lengths[i] += length
        else:
            self._starts.insert(i, start)
            self._lengths.insert(i, length)
        self._publish()

    def _pick_hole(self, length: int) -> Optional[int]:
        if self.strategy == "first_fit":
            for i, hole_len in enumerate(self._lengths):
                if hole_len >= length:
                    return i
            return None
        best: Optional[int] = None
        for i, hole_len in enumerate(self._lengths):
            if hole_len >= length and (best is None or hole_len < self._lengths[best]):
                best = i
        return best

    # --------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Raise :class:`ConsistencyError` if the structure is corrupt:
        holes must be sorted, in-bounds, non-overlapping, and coalesced."""
        prev_end: Optional[int] = None
        for start, length in zip(self._starts, self._lengths):
            if length <= 0:
                raise ConsistencyError(f"non-positive hole length {length}")
            if start < self.area_start or start + length > self.area_start + self.area_size:
                raise ConsistencyError(
                    f"hole [{start}, {start + length}) outside the managed area"
                )
            if prev_end is not None:
                if start < prev_end:
                    raise ConsistencyError("holes overlap")
                if start == prev_end:
                    raise ConsistencyError("adjacent holes not coalesced")
            prev_end = start + length
