"""Startup scan and consistency checking (§3).

"By scanning the inodes it can figure out which parts of disk are free.
It uses this information to build a free list in RAM. Also unused inodes
... are maintained in a list. While scanning the inodes, the file server
performs some consistency checks, for example to make sure that files do
not overlap."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConsistencyError
from .freelist import ExtentFreeList
from .inode import InodeTable
from .layout import VolumeLayout

__all__ = ["ScanReport", "scan_volume"]


@dataclass
class ScanReport:
    """Result of the startup scan."""

    live_files: int = 0
    live_bytes: int = 0
    free_blocks: int = 0
    quarantined: list[tuple[int, str]] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [
            f"scan: {self.live_files} live files, {self.live_bytes} bytes, "
            f"{self.free_blocks} free blocks"
        ]
        for number, reason in self.quarantined:
            lines.append(f"  quarantined inode {number}: {reason}")
        return "\n".join(lines)


def scan_volume(table: InodeTable, layout: VolumeLayout,
                repair: bool = False,
                strategy: str = "first_fit") -> tuple[ExtentFreeList, ScanReport]:
    """Replay the inode table into a disk free list, checking consistency.

    Inconsistent inodes (extents outside the data area, or overlapping
    another file) raise :class:`ConsistencyError` — unless ``repair`` is
    set, in which case the offending inode is zeroed ("quarantined") and
    recorded in the report, allowing the server to come up on a damaged
    volume.
    """
    freelist = ExtentFreeList(layout.data_start, layout.data_blocks,
                              strategy=strategy)
    report = ScanReport()
    data_end = layout.data_start + layout.data_blocks
    for number, inode in table.live_inodes():
        blocks = layout.blocks_for(inode.size)
        problem = None
        if blocks == 0:
            # Zero-length files occupy no extent; nothing to claim.
            report.live_files += 1
            continue
        if not layout.data_start <= inode.start_block < data_end:
            problem = (
                f"start block {inode.start_block} outside the data area "
                f"[{layout.data_start}, {data_end})"
            )
        elif inode.start_block + blocks > data_end:
            problem = (
                f"extent [{inode.start_block}, {inode.start_block + blocks}) "
                f"runs past the data area end {data_end}"
            )
        else:
            try:
                freelist.allocate_at(inode.start_block, blocks)
            except ConsistencyError:
                problem = (
                    f"extent [{inode.start_block}, {inode.start_block + blocks}) "
                    "overlaps another file"
                )
        if problem is None:
            report.live_files += 1
            report.live_bytes += inode.size
            continue
        if not repair:
            raise ConsistencyError(f"inode {number}: {problem}")
        table.release(number)
        report.quarantined.append((number, problem))
    report.free_blocks = freelist.free_units
    freelist.check_invariants()
    return freelist, report
