"""The Bullet server's RAM file cache (§3).

"A separate table in RAM maintains the administration of the cached
files. The entries ... are called rnodes. An rnode contains: 1) the
inode table index of the corresponding file; 2) a pointer to the file in
RAM cache; 3) an age field to implement an LRU cache strategy. The free
rnodes and free parts in the RAM cache are also maintained using free
lists."

Files are cached **whole and contiguous**: the cache is modeled as one
byte-addressed arena managed by an :class:`~repro.core.freelist.ExtentFreeList`,
so external fragmentation of the cache is real and
:meth:`BulletCache.compact` ("the fragmentation in memory can be
alleviated by compacting part or all of the RAM cache from time to
time") is functional, not cosmetic.

Eviction is LRU by the rnodes' age field; FIFO is available as the A3
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import (
    BadRequestError,
    ConsistencyError,
    FileTooBigError,
    NoSpaceError,
)
from ..obs import MetricsRegistry, RegistryStats
from .freelist import ExtentFreeList

__all__ = ["Rnode", "BulletCache", "CacheStats"]


@dataclass
class Rnode:
    """One cached file."""

    number: int         # rnode slot number (1-based; stored in inode.index)
    inode_number: int   # back-pointer to the inode table
    addr: int           # offset of the file in the cache arena
    size: int           # file size in bytes
    age: int            # last-access tick (LRU)
    inserted: int       # insertion tick (FIFO ablation)
    data: bytes         # the file contents (whole and contiguous)
    busy: bool = False  # mid-load (reserve/fill window); not evictable
    pins: int = 0       # concurrent transfers copying out of the arena


class CacheStats(RegistryStats):
    """Cache accounting, backed by the observability registry.

    The cache is the *only* writer of hits/misses/lookups (PR 4 fixed a
    double count where the server bumped these directly alongside
    :meth:`BulletCache.lookup`); every probe goes through
    :meth:`BulletCache.lookup` or :meth:`BulletCache.probe_slot`, so
    ``hits + misses == lookups`` is a checked conservation invariant.
    """

    _PREFIX = "repro_cache"
    _COUNTER_FIELDS = (
        "lookups",
        "hits",
        "misses",
        "evictions",
        "compactions",
        "inserted_bytes",
        "evicted_bytes",
    )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BulletCache:
    """Whole-file RAM cache with contiguous placement."""

    def __init__(self, capacity_bytes: int, rnode_count: int = 4096,
                 policy: str = "lru",
                 on_evict: Optional[Callable[[int], None]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 owner: str = "bullet"):
        if capacity_bytes <= 0:
            raise BadRequestError("cache capacity must be positive")
        if rnode_count < 1:
            raise BadRequestError("need at least one rnode")
        if policy not in ("lru", "fifo"):
            raise BadRequestError(f"unknown eviction policy {policy!r}")
        self.capacity = capacity_bytes
        self.policy = policy
        self.stats = CacheStats(metrics, cache=owner)
        self._s_lookups = self.stats.handle("lookups")
        self._s_hits = self.stats.handle("hits")
        self._s_misses = self.stats.handle("misses")
        #: Called with the evicted file's inode number, so the server can
        #: clear the inode's index field.
        self.on_evict = on_evict
        self._arena: ExtentFreeList = ExtentFreeList(
            0, capacity_bytes, strategy="first_fit")
        self._attach_arena_gauges(owner)
        # The rnode maps are mutated by every insert/remove/evict; under
        # a worker pool those run concurrently, so mutation is only legal
        # while the caller holds the file's lock in the server's table.
        self._rnodes: dict[int, Rnode] = {}     # repro: guarded_by(locks)
        self._by_inode: dict[int, Rnode] = {}   # repro: guarded_by(locks)
        self._free_slots = list(range(rnode_count, 0, -1))
        self._tick = 0

    def _attach_arena_gauges(self, owner: str) -> None:
        """Publish the arena's fragmentation state as registry gauges
        (re-attached after :meth:`compact` rebuilds the arena)."""
        registry = self.stats.registry
        self._arena.attach_gauges(
            fragmentation=registry.gauge(
                "repro_freelist_fragmentation", area=f"{owner}:cache"),
            free_units=registry.gauge(
                "repro_freelist_free_units", area=f"{owner}:cache"),
            largest_hole=registry.gauge(
                "repro_freelist_largest_hole", area=f"{owner}:cache"),
        )

    # ------------------------------------------------------------ queries

    @property
    def used_bytes(self) -> int:
        return self._arena.used_units

    @property
    def free_bytes(self) -> int:
        return self._arena.free_units

    @property
    def cached_files(self) -> int:
        return len(self._rnodes)

    def lookup(self, inode_number: int) -> Optional[Rnode]:
        """The rnode caching ``inode_number``, or None (counts hit/miss)."""
        rnode = self._by_inode.get(inode_number)
        self._s_lookups.inc(1)
        if rnode is None:
            self._s_misses.inc(1)
        else:
            self._s_hits.inc(1)
        return rnode

    def probe_slot(self, inode_number: int, index: int) -> Optional[Rnode]:
        """The paper's cache probe: 'the index field in the inode is
        inspected to see whether there is a copy of the file in the RAM
        cache'. ``index`` is the inode's index field (0 = not cached).

        This — not the server — does the hit/miss accounting, so the
        cache is the single counting authority and
        ``hits + misses == lookups`` holds by construction.
        """
        self._s_lookups.inc(1)
        if index == 0:
            self._s_misses.inc(1)
            return None
        rnode = self.get_slot(index)
        if rnode.inode_number != inode_number:
            raise ConsistencyError(
                f"inode.index out of sync: slot {index} caches inode "
                f"{rnode.inode_number}, expected {inode_number}"
            )
        self._s_hits.inc(1)
        return rnode

    def peek(self, inode_number: int) -> Optional[Rnode]:
        """Like :meth:`lookup` but without touching the statistics."""
        return self._by_inode.get(inode_number)

    def get_slot(self, rnode_number: int) -> Rnode:
        """Resolve an inode's index field to its rnode (paper's path:
        'the index is used to locate an rnode')."""
        rnode = self._rnodes.get(rnode_number)
        if rnode is None:
            raise BadRequestError(f"no rnode in slot {rnode_number}")
        return rnode

    def touch(self, rnode: Rnode) -> None:
        """Update the age field to mark a recent access."""
        self._tick += 1
        rnode.age = self._tick

    def pin(self, rnode: Rnode) -> None:
        """Hold the rnode's arena extent across a timed transfer: a
        pinned file cannot be evicted, so a concurrent miss can never
        reuse the bytes a memcpy is still reading (torn read)."""
        rnode.pins += 1

    def unpin(self, rnode: Rnode) -> None:
        if rnode.pins <= 0:
            raise ConsistencyError(
                f"unpin of rnode {rnode.number} which has no pins")
        rnode.pins -= 1

    # ----------------------------------------------------------- mutation

    def insert(self, inode_number: int, data: bytes) -> Rnode:
        """Cache a whole file, evicting and compacting as needed.

        Raises :class:`FileTooBigError` when the file exceeds the cache
        (the server cannot hold it contiguously in memory at all) and
        :class:`NoSpaceError` when every evictable file is busy.
        """
        size = len(data)
        if size > self.capacity:
            raise FileTooBigError(
                f"file of {size} bytes exceeds the {self.capacity}-byte cache"
            )
        if inode_number in self._by_inode:
            raise BadRequestError(f"inode {inode_number} is already cached")
        if not self._free_slots and not self._evict_one():
            raise NoSpaceError(
                "no free rnode slot (every cached file is pinned)"
            )
        addr = self._make_room(size)
        self._tick += 1
        rnode = Rnode(
            number=self._free_slots.pop(),
            inode_number=inode_number,
            addr=addr,
            size=size,
            age=self._tick,
            inserted=self._tick,
            data=bytes(data),
        )
        self._rnodes[rnode.number] = rnode
        self._by_inode[inode_number] = rnode
        self.stats.inserted_bytes += size
        return rnode

    def reserve(self, inode_number: int, size: int) -> Rnode:
        """Allocate space for a file about to be loaded from disk.

        The rnode is marked busy (pinned) until :meth:`fill` supplies the
        bytes, so the in-flight load cannot be evicted from under the
        disk read — the paper's read-miss path: "an rnode is allocated
        for this file ... Then the file can be read into the RAM cache."
        """
        rnode = self.insert(inode_number, bytes(0))
        if size > self.capacity:
            self._release(rnode)
            raise FileTooBigError(
                f"file of {size} bytes exceeds the {self.capacity}-byte cache"
            )
        if size > 0:
            try:
                addr = self._make_room(size)
            except NoSpaceError:
                self._release(rnode)
                raise
            rnode.addr = addr
            rnode.size = size
        rnode.busy = True
        return rnode

    def fill(self, rnode: Rnode, data: bytes) -> None:
        """Complete a :meth:`reserve` with the loaded bytes."""
        if len(data) != rnode.size:
            raise BadRequestError(
                f"fill size {len(data)} != reserved size {rnode.size}"
            )
        rnode.data = bytes(data)
        rnode.busy = False
        self.stats.inserted_bytes += rnode.size

    def remove(self, inode_number: int) -> None:
        """Drop a file from the cache (delete path); no-op if absent."""
        rnode = self._by_inode.pop(inode_number, None)
        if rnode is None:
            return
        self._release(rnode)

    def _release(self, rnode: Rnode) -> None:
        if rnode.pins > 0:
            # Reaching here means a caller freed a file some transfer is
            # still copying — exactly the race the lock plane exists to
            # prevent, so fail loudly instead of tearing the read.
            raise ConsistencyError(
                f"releasing rnode {rnode.number} (inode "
                f"{rnode.inode_number}) while {rnode.pins} transfers "
                f"have it pinned"
            )
        del self._rnodes[rnode.number]
        self._by_inode.pop(rnode.inode_number, None)
        if rnode.size > 0:
            self._arena.free(rnode.addr, rnode.size)
        self._free_slots.append(rnode.number)

    def _make_room(self, size: int) -> int:
        """Allocate ``size`` contiguous bytes, evicting least-recently
        used files and compacting when only fragmentation stands in the
        way. Zero-size files occupy no arena space."""
        if size == 0:
            return 0
        while True:
            try:
                return self._arena.allocate(size)
            except NoSpaceError:
                if self._arena.free_units >= size:
                    # Enough total space, just fragmented: compact.
                    self.compact()
                    continue
                if not self._evict_one():
                    raise

    def _evict_one(self) -> bool:
        """Evict the least desirable non-busy file; False if none."""
        candidates = [
            r for r in self._rnodes.values() if not r.busy and r.pins == 0
        ]
        if not candidates:
            return False
        if self.policy == "lru":
            victim = min(candidates, key=lambda r: r.age)
        else:
            victim = min(candidates, key=lambda r: r.inserted)
        self._release(victim)
        self.stats.evictions += 1
        self.stats.evicted_bytes += victim.size
        if self.on_evict is not None:
            self.on_evict(victim.inode_number)
        return True

    def compact(self) -> int:
        """Slide every cached file toward address zero, coalescing all
        free space into one hole. Returns the number of files moved."""
        rnodes = sorted(
            (r for r in self._rnodes.values() if r.size > 0),
            key=lambda r: r.addr,
        )
        gauges = self._arena.detach_gauges()
        self._arena = ExtentFreeList(0, self.capacity, strategy="first_fit")
        self._arena.attach_gauges(*gauges)
        moved = 0
        cursor = 0
        for rnode in rnodes:
            if rnode.addr != cursor:
                rnode.addr = cursor
                moved += 1
            self._arena.allocate_at(cursor, rnode.size)
            cursor += rnode.size
        self.stats.compactions += 1
        return moved

    # --------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Arena bookkeeping must agree with the rnodes: no overlaps, no
        leaks, indices consistent."""
        self._arena.check_invariants()
        placed = sorted(
            (r for r in self._rnodes.values() if r.size > 0),
            key=lambda r: r.addr,
        )
        prev_end = 0
        total = 0
        for rnode in placed:
            if rnode.addr < prev_end:
                raise ConsistencyError("cached files overlap in the arena")
            if self._arena.is_free(rnode.addr, rnode.size):
                raise ConsistencyError("rnode extent is marked free")
            prev_end = rnode.addr + rnode.size
            total += rnode.size
        if total != self._arena.used_units:
            raise ConsistencyError(
                f"arena accounting leak: rnodes hold {total} bytes, "
                f"arena says {self._arena.used_units}"
            )
        for inode_number, rnode in self._by_inode.items():
            if rnode.inode_number != inode_number:
                raise ConsistencyError("by-inode map inconsistent")
            if self._rnodes.get(rnode.number) is not rnode:
                raise ConsistencyError("rnode slot map inconsistent")
