"""The Bullet file server — the paper's primary contribution (S7).

Public surface:

* :class:`BulletServer` — the server itself (local + RPC planes).
* :func:`compact_disk` / :func:`nightly_compaction` — the §3 compaction job.
* The building blocks (inodes, layout, free lists, cache, recovery) for
  tests, ablations, and downstream reuse.
"""

from .cache import BulletCache, CacheStats, Rnode
from .compaction import CompactionReport, compact_disk, nightly_compaction
from .freelist import Extent, ExtentFreeList
from .inode import INODE_SIZE, DiskDescriptor, Inode, InodeTable
from .layout import VolumeLayout, format_volume, render_layout
from .locks import FileLockTable, LockGrant
from .recovery import ScanReport, scan_volume
from .replication import (
    ReplicatedWrite,
    check_p_factor,
    replicated_file_write,
    replicated_inode_write,
)
from .server import OPCODES, BulletServer, VerifiedCapCache
from .stats import ServerStats

__all__ = [
    "BulletCache",
    "CacheStats",
    "Rnode",
    "CompactionReport",
    "compact_disk",
    "nightly_compaction",
    "Extent",
    "ExtentFreeList",
    "INODE_SIZE",
    "DiskDescriptor",
    "Inode",
    "InodeTable",
    "VolumeLayout",
    "format_volume",
    "render_layout",
    "FileLockTable",
    "LockGrant",
    "ScanReport",
    "scan_volume",
    "ReplicatedWrite",
    "check_p_factor",
    "replicated_file_write",
    "replicated_inode_write",
    "OPCODES",
    "BulletServer",
    "VerifiedCapCache",
    "ServerStats",
]
