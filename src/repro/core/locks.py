"""Per-file readers–writer locks for the concurrent service plane.

The paper's server is single-threaded: "one request is handled at a
time", so CREATE/READ/DELETE and the 3 a.m. compaction job can never
interleave and no synchronization is needed. The moment the serve loop
becomes a worker pool (``BulletServer(workers=N)``), every invariant
that single-threading provided for free — an extent is never freed
under an in-flight READ, compaction never repoints an inode whose old
extent a reader is still following, a CREATE's background replica
writes land before anyone re-reads the extent from disk — must be
restored explicitly. This module is that mechanism.

:class:`FileLockTable` keys a readers–writer lock by inode number:

* **FIFO-fair**: grants are queued in arrival order; a reader arriving
  after a queued writer waits behind it, so writers cannot starve.
* **Sim-aware**: ``acquire_read``/``acquire_write`` return a
  :class:`LockGrant` event to ``yield``. An uncontended grant succeeds
  immediately (zero simulated time), so at ``workers=1`` the lock plane
  is timing-invisible and the paper-faithful figures are unchanged.
* **Crash-safe**: a holder interrupted mid-operation releases in its
  ``finally`` block (``Interrupt`` propagates through generators), and
  a waiter interrupted while queued is cancelled by the same
  :meth:`FileLockTable.release` call.
* **Bounded**: a lock with no holders and no waiters is dropped from
  the table, so the table's size tracks the set of *contended or held*
  files, not every file ever touched.

Everything is deterministic: grants fire through the event heap, whose
ties break by insertion order.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..analysis.runtime import active_checker
from ..errors import ConsistencyError, DeadlockError
from ..obs import MetricsRegistry
from ..sim import Environment, Event
from ..sim.core import Process

__all__ = ["LockGrant", "FileLockTable"]

#: Grant modes.
READ = "read"
WRITE = "write"


class LockGrant(Event):
    """One acquisition of a per-file lock.

    The grant *is* the event the acquirer yields on; once it fires the
    holder owns the lock in ``mode`` until it passes the grant back to
    :meth:`FileLockTable.release`.
    """

    __slots__ = ("key", "mode", "requested_at", "released", "owner")

    def __init__(self, env: Environment, key: int, mode: str):
        super().__init__(env)
        self.key = key
        self.mode = mode
        self.requested_at = env.now
        self.released = False
        #: The sim process that requested the grant (None when acquired
        #: from outside any process, e.g. direct test pokes). Feeds the
        #: waits-for graph and the runtime lockset checker.
        self.owner: Optional[Process] = env.active_process


class _FileLock:
    """State of one file's lock: active holders plus the FIFO queue."""

    __slots__ = ("readers", "writer", "queue")

    def __init__(self) -> None:
        self.readers: set[LockGrant] = set()
        self.writer: Optional[LockGrant] = None
        self.queue: deque[LockGrant] = deque()

    @property
    def idle(self) -> bool:
        return not self.readers and self.writer is None and not self.queue


class FileLockTable:
    """FIFO-fair readers–writer locks keyed by inode number."""

    def __init__(self, env: Environment,
                 metrics: Optional[MetricsRegistry] = None,
                 owner: str = "bullet"):
        self.env = env
        self._name = owner
        registry = metrics if metrics is not None else MetricsRegistry()
        self._locks: dict[int, _FileLock] = {}
        # Waits-for bookkeeping: which grant each queued process is
        # blocked on. One entry per process (a process yields on its
        # grant, so it can wait on at most one at a time). Checked for
        # cycles on every contended enqueue — see _find_cycle.
        self._waiting: dict[Process, LockGrant] = {}
        self._wait_hist = registry.histogram(
            "repro_lock_wait_seconds", server=owner)
        self._acquired = {
            mode: registry.counter(
                "repro_lock_acquisitions_total", server=owner, mode=mode)
            for mode in (READ, WRITE)
        }
        self._contended = registry.counter(
            "repro_lock_contention_total", server=owner)
        self._held = registry.gauge("repro_lock_held", server=owner)
        # Incrementally tracked count of keys with an active holder;
        # always equals len(held_keys()) but costs O(1) per transition
        # instead of a sort of the whole table per admit/release.
        self._held_count = 0

    # ------------------------------------------------------------ queries

    def held_keys(self) -> list[int]:
        """Inode numbers with an active holder (tests/monitoring)."""
        return sorted(
            key for key, lock in self._locks.items()
            if lock.readers or lock.writer is not None
        )

    def waiters(self, key: int) -> int:
        """Queued (not yet granted) acquisitions for ``key``."""
        lock = self._locks.get(key)
        return len(lock.queue) if lock is not None else 0

    def check_invariants(self) -> None:
        """Structural safety of the whole table; raises
        :class:`ConsistencyError` on the first violation.

        Checked (the model checker calls this at every explored state;
        tests call it directly):

        * no key has both readers and a writer, and no key holds two
          writers (the type makes the latter unrepresentable, but a
          released grant lingering as holder is not);
        * no *released* grant is still held or queued;
        * mode tags are well-formed and every grant is filed under its
          own key;
        * idle locks were reaped (``release`` drops empty entries);
        * ``_held_count`` matches the actual number of held keys;
        * every queued grant with an owner has a waits-for entry, and
          the waits-for graph over queued owners is acyclic (grants are
          admitted in FIFO order, so a cycle would wait forever).
        """
        held = 0
        for key, lock in self._locks.items():
            if lock.idle:
                raise ConsistencyError(
                    f"lock table retains idle entry for inode {key}")
            if lock.readers and lock.writer is not None:
                raise ConsistencyError(
                    f"inode {key} has {len(lock.readers)} reader(s) and a "
                    f"writer held simultaneously")
            if lock.readers or lock.writer is not None:
                held += 1
            holders: List[LockGrant] = list(lock.readers)
            if lock.writer is not None:
                holders.append(lock.writer)
            for grant in holders:
                if grant.released:
                    raise ConsistencyError(
                        f"released grant still held on inode {key}")
            for reader in lock.readers:
                if reader.mode != READ:
                    raise ConsistencyError(
                        f"non-read grant {reader.mode!r} among readers of "
                        f"inode {key}")
            if lock.writer is not None and lock.writer.mode != WRITE:
                raise ConsistencyError(
                    f"non-write grant {lock.writer.mode!r} holds the writer "
                    f"slot of inode {key}")
            for grant in list(lock.queue) + holders:
                if grant.key != key:
                    raise ConsistencyError(
                        f"grant for inode {grant.key} filed under inode {key}")
            for queued in lock.queue:
                if queued.released:
                    raise ConsistencyError(
                        f"released grant still queued on inode {key}")
                if queued.owner is not None and (
                        self._waiting.get(queued.owner) is not queued):
                    raise ConsistencyError(
                        f"queued grant on inode {key} missing from the "
                        f"waits-for map")
        if held != self._held_count:
            raise ConsistencyError(
                f"held-key count drifted: tracked {self._held_count}, "
                f"actual {held}")
        for proc in sorted(self._waiting, key=lambda p: p._serial):
            cycle = self._find_cycle(proc)
            if cycle is not None:
                raise ConsistencyError(
                    "waits-for graph has a cycle: " + _render_cycle(cycle))

    # ------------------------------------------------------------ acquire

    def acquire_read(self, key: int) -> LockGrant:
        """A shared grant on ``key``; yields immediately when no writer
        holds or waits for the file."""
        return self._acquire(key, READ)

    def acquire_write(self, key: int) -> LockGrant:
        """An exclusive grant on ``key``."""
        return self._acquire(key, WRITE)

    def _acquire(self, key: int, mode: str) -> LockGrant:
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = _FileLock()
        grant = LockGrant(self.env, key, mode)
        admissible = (
            lock.writer is None and not lock.queue
            and (mode == READ or not lock.readers)
        )
        if admissible:
            self._admit(lock, grant)
        else:
            self._contended.inc()
            lock.queue.append(grant)
            if grant.owner is not None:
                self._waiting[grant.owner] = grant
                cycle = self._find_cycle(grant.owner)
                if cycle is not None:
                    # The grant can never be admitted: fail the acquire
                    # synchronously (before the caller ever yields) and
                    # leave the table exactly as it was.
                    lock.queue.remove(grant)
                    del self._waiting[grant.owner]
                    raise DeadlockError(_render_cycle(cycle))
        return grant

    def _admit(self, lock: _FileLock, grant: LockGrant) -> None:
        if grant.owner is not None:
            self._waiting.pop(grant.owner, None)
            checker = active_checker()
            if checker is not None:
                checker.on_acquire(grant.owner, self._name, grant.key)
        was_held = bool(lock.readers) or lock.writer is not None
        if grant.mode == READ:
            lock.readers.add(grant)
        else:
            lock.writer = grant
        if not was_held:
            self._held_count += 1
        self._acquired[grant.mode].inc()
        self._wait_hist.observe(self.env.now - grant.requested_at)
        self._held.set(self._held_count)
        # Fresh grants (the uncontended _acquire path) complete in
        # place; promoted waiters carry a suspended process's callback,
        # so try_finish_now declines and the grant goes via the heap.
        if not self.env.try_finish_now(grant, grant):
            grant.succeed(grant)

    # ----------------------------------------------------------- transfer

    def transfer(self, grant: LockGrant, new_owner: Optional[Process]) -> None:
        """Hand a *held* grant to another process (the CREATE settle
        watcher owns the new file's write grant from the moment it is
        forked). Waits-for edges and lockset holdings follow the new
        owner: without this, the creator would appear to block on
        itself the instant it re-reads the file it just created."""
        old = grant.owner
        if old is new_owner:
            return
        checker = active_checker()
        if checker is not None:
            if old is not None:
                checker.on_release(old, self._name, grant.key)
            if new_owner is not None:
                checker.on_acquire(new_owner, self._name, grant.key)
        grant.owner = new_owner

    # ------------------------------------------------------------ release

    def release(self, grant: LockGrant) -> None:
        """Give back a grant: active holder, or a queued waiter that was
        interrupted before its turn. Idempotent per grant."""
        if grant.released:
            return
        grant.released = True
        lock = self._locks.get(grant.key)
        if lock is None:
            raise ConsistencyError(
                f"release of unknown lock key {grant.key}")
        was_held = True
        if grant in lock.readers:
            lock.readers.discard(grant)
            if not lock.readers and lock.writer is None:
                self._held_count -= 1
        elif lock.writer is grant:
            lock.writer = None
            self._held_count -= 1
        else:
            was_held = False
            try:
                lock.queue.remove(grant)
            except ValueError:
                raise ConsistencyError(
                    f"grant for inode {grant.key} is neither held nor queued"
                ) from None
            if grant.owner is not None:
                self._waiting.pop(grant.owner, None)
        if was_held and grant.owner is not None:
            checker = active_checker()
            if checker is not None:
                checker.on_release(grant.owner, self._name, grant.key)
        self._promote(lock)
        if lock.idle:
            del self._locks[grant.key]
        self._held.set(self._held_count)

    def _promote(self, lock: _FileLock) -> None:
        """Admit waiters from the head of the FIFO queue: either one
        writer, or the maximal run of consecutive readers."""
        while lock.queue:
            head = lock.queue[0]
            if head.mode == WRITE:
                if lock.readers or lock.writer is not None:
                    return
                lock.queue.popleft()
                self._admit(lock, head)
                return
            if lock.writer is not None:
                return
            lock.queue.popleft()
            self._admit(lock, head)

    # ----------------------------------------------- deadlock detection

    def _blockers(self, grant: LockGrant) -> List[Process]:
        """The processes a queued ``grant`` is waiting on: every current
        holder plus every grant ahead of it in the FIFO queue (fairness
        means it cannot jump any of them). Sorted by process creation
        serial so traversal — and therefore the reported cycle — is
        replay-stable."""
        lock = self._locks.get(grant.key)
        if lock is None:
            return []
        procs: set[Process] = set()
        for holder in lock.readers:
            if holder.owner is not None:
                procs.add(holder.owner)
        if lock.writer is not None and lock.writer.owner is not None:
            procs.add(lock.writer.owner)
        for queued in lock.queue:
            if queued is grant:
                break
            if queued.owner is not None:
                procs.add(queued.owner)
        return sorted(procs, key=lambda p: p._serial)

    def _find_cycle(
            self, start: Process) -> Optional[List[Tuple[Process, LockGrant]]]:
        """DFS over the waits-for graph from ``start`` (which just
        enqueued). Any new cycle must pass through the edge added last,
        i.e. through ``start`` — detection at every enqueue means no
        pre-existing cycle can be lurking elsewhere. Returns the cycle
        as (process, grant-it-waits-on) pairs, or None."""
        path: List[Tuple[Process, LockGrant]] = []
        on_path: set[Process] = set()

        def visit(proc: Process) -> Optional[List[Tuple[Process, LockGrant]]]:
            grant = self._waiting.get(proc)
            if grant is None:
                return None
            path.append((proc, grant))
            on_path.add(proc)
            for blocker in self._blockers(grant):
                if blocker is start:
                    return list(path)
                if blocker in on_path:
                    continue
                found = visit(blocker)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(proc)
            return None

        return visit(start)


def _render_cycle(cycle: List[Tuple[Process, LockGrant]]) -> str:
    parts = [
        f"{proc.name} waits for {grant.mode} on inode {grant.key}"
        for proc, grant in cycle
    ]
    return (f"waits-for cycle among {len(cycle)} process(es): "
            + "; ".join(parts))
