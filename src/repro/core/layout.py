"""On-disk layout of a Bullet volume (§3, Fig. 1).

"The disk is divided into two sections. The first is the inode table
... The second section contains contiguous files, along with the gaps
between files."

This module formats volumes, computes the section boundaries, and
renders the Fig. 1 layout picture from a live volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disk import VirtualDisk
from ..errors import BadRequestError
from ..units import fmt_size
from .freelist import ExtentFreeList
from .inode import INODE_SIZE, DiskDescriptor, InodeTable

__all__ = ["VolumeLayout", "format_volume", "render_layout"]


@dataclass(frozen=True)
class VolumeLayout:
    """Section boundaries of a formatted volume (all in blocks)."""

    block_size: int
    inode_table_start: int   # always 0
    inode_table_blocks: int  # the descriptor's "control size"
    data_start: int
    data_blocks: int         # the descriptor's "data size"

    @property
    def descriptor(self) -> DiskDescriptor:
        return DiskDescriptor(
            block_size=self.block_size,
            control_size=self.inode_table_blocks,
            data_size=self.data_blocks,
        )

    @classmethod
    def for_disk(cls, disk: VirtualDisk, inode_count: int) -> "VolumeLayout":
        """Carve a disk into inode table + data area."""
        block_size = disk.block_size
        per_block = block_size // INODE_SIZE
        table_blocks = (inode_count + per_block - 1) // per_block
        if table_blocks >= disk.total_blocks:
            raise BadRequestError(
                f"inode table of {table_blocks} blocks does not fit on a "
                f"{disk.total_blocks}-block disk"
            )
        return cls(
            block_size=block_size,
            inode_table_start=0,
            inode_table_blocks=table_blocks,
            data_start=table_blocks,
            data_blocks=disk.total_blocks - table_blocks,
        )

    def blocks_for(self, nbytes: int) -> int:
        """Blocks needed to hold ``nbytes`` ("files are aligned on
        blocks")."""
        return (nbytes + self.block_size - 1) // self.block_size


def format_volume(disk: VirtualDisk, inode_count: int) -> InodeTable:
    """mkfs: write a fresh descriptor + zeroed inode table to ``disk``.

    Uses the raw (untimed) plane — formatting precedes the measured
    lifetime of the server.
    """
    layout = VolumeLayout.for_disk(disk, inode_count)
    table = InodeTable(layout.descriptor, inode_count)
    disk.write_raw(0, table.encode())
    return table


def render_layout(table: InodeTable, freelist: ExtentFreeList,
                  max_rows: int = 24) -> str:
    """Render the Fig. 1 picture — inode table, then the data area as
    contiguous files and holes — from live volume state."""
    desc = table.descriptor
    lines = [
        "+----------------------------------------------+",
        "| Disk Descriptor  (inode 0)                   |",
        f"|   block size   = {desc.block_size:<8} bytes              |",
        f"|   control size = {desc.control_size:<8} blocks             |",
        f"|   data size    = {desc.data_size:<8} blocks             |",
        "+---------------- Inode Table -----------------+",
    ]
    live = list(table.live_inodes())
    for number, inode in live[: max_rows // 2]:
        lines.append(
            f"| inode {number:<5} -> block {inode.start_block:<8} "
            f"{fmt_size(inode.size):<14} |"
        )
    if len(live) > max_rows // 2:
        lines.append(f"| ... {len(live) - max_rows // 2} more inodes ...".ljust(47) + "|")
    lines.append("+----------- Contiguous Files and Holes -------+")
    # Merge files and holes into one address-ordered map of the data area.
    segments: list[tuple[int, int, str]] = [
        (inode.start_block,
         max((inode.size + desc.block_size - 1) // desc.block_size, 0),
         f"file (inode {number})")
        for number, inode in live
    ]
    segments.extend(
        (hole.start, hole.length, "free") for hole in freelist.holes()
    )
    segments.sort()
    for start, length, label in segments[:max_rows]:
        bar = "#" if label != "free" else "."
        width = max(1, min(8, length * 8 // max(desc.data_size, 1) + 1))
        line = f"| {start:>8} +{length:<8} {bar * width:<8} {label:<16}"
        lines.append(line.ljust(47) + "|")
    if len(segments) > max_rows:
        lines.append(f"| ... {len(segments) - max_rows} more segments ...".ljust(47) + "|")
    lines.append("+----------------------------------------------+")
    return "\n".join(lines)
