"""Disk compaction — the "3 a.m. job" (§3).

"The disk fragmentation can also be relieved by compaction every morning
at say 3 am when the system is lightly loaded."

Compaction slides every live file toward the start of the data area, in
address order, leaving all free space as one hole at the end. Each move
is a timed read from the primary followed by replicated writes of the
data and the file's inode block, so the experiment A4 can measure what
compaction actually costs.

Moving left in address order is safe even when source and target extents
overlap: the whole file is read into memory before the write starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import AllOf
from .server import BulletServer

__all__ = ["CompactionReport", "compact_disk", "nightly_compaction"]


@dataclass
class CompactionReport:
    """What one compaction pass did."""

    files_moved: int = 0
    blocks_moved: int = 0
    duration: float = 0.0
    fragmentation_before: float = 0.0
    fragmentation_after: float = 0.0
    largest_hole_before: int = 0
    largest_hole_after: int = 0


def compact_disk(server: BulletServer):
    """Process: one full compaction pass over ``server``'s volume."""
    env = server.env
    layout = server.layout
    report = CompactionReport(
        fragmentation_before=server.disk_free.external_fragmentation(),
        largest_hole_before=server.disk_free.largest_hole,
    )
    started = env.now
    live = sorted(server.table.live_inodes(), key=lambda item: item[1].start_block)
    cursor = layout.data_start
    for number, inode in live:
        blocks = layout.blocks_for(inode.size)
        if blocks == 0:
            continue
        if inode.start_block != cursor:
            data = yield from server.mirror.read_with_failover(
                inode.start_block, blocks
            )
            writes = [
                env.process(_move_on_disk(server, disk, number, cursor, data))
                for disk in server.mirror.live_disks
            ]
            old_start = inode.start_block
            inode.start_block = cursor
            # Update the free map: the file now owns [cursor, cursor+blocks).
            server.disk_free.free(old_start, blocks)
            server.disk_free.allocate_at(cursor, blocks)
            yield AllOf(env, writes)
            report.files_moved += 1
            report.blocks_moved += blocks
        cursor += blocks
    server.disk_free.check_invariants()
    report.duration = env.now - started
    report.fragmentation_after = server.disk_free.external_fragmentation()
    report.largest_hole_after = server.disk_free.largest_hole
    server._trace("bullet", "compaction",
                  moved=report.files_moved, blocks=report.blocks_moved)
    return report


def _move_on_disk(server: BulletServer, disk, number: int, new_start: int,
                  data: bytes):
    """Write the relocated extent and its updated inode block on one disk."""
    yield disk.write(new_start, data)
    inode_block = server.table.block_of_inode(number)
    yield disk.write(inode_block, server.table.encode_block(inode_block))


def nightly_compaction(server: BulletServer, period: float = 24 * 3600.0,
                       first_at: float = 3 * 3600.0):
    """Process: run compaction every ``period`` seconds, first at 3 a.m."""
    env = server.env
    if first_at > env.now:
        yield env.timeout(first_at - env.now)
    while True:
        yield from compact_disk(server)
        yield env.timeout(period)
