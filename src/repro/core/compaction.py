"""Disk compaction — now online-safe, not only the "3 a.m. job" (§3).

"The disk fragmentation can also be relieved by compaction every morning
at say 3 am when the system is lightly loaded."

Compaction slides every live file toward the start of the data area, in
address order, leaving free space coalesced toward the end. Each move
is a timed read from the primary followed by replicated writes, so the
experiment A4 can measure what compaction actually costs.

Every move is **copy-then-flip** under the file's write lock:

1. reserve the destination's free blocks in the free map (so a
   concurrent CREATE cannot allocate them mid-move);
2. read the old extent and write it to the new extent on *every* live
   replica — the old extent and the old inode stay untouched;
3. only once the data is durable everywhere, flip ``inode.start_block``
   in RAM, write the updated inode block through to every replica, and
   return the vacated blocks to the free map.

The pre-fix ordering repointed the inode and mutated the free map
*before* the data writes landed, so any READ cache-miss interleaving
with the move window followed ``start_block`` to unwritten blocks, and
any concurrent CREATE could allocate the prematurely freed old extent —
the exact overlap corruption §3's startup scan exists to catch. The bug
was latent while ``_serve`` was single-threaded; with ``workers>1`` (or
compaction running online during service) it is load-bearing, which is
why the write lock and the flip ordering now make it structurally
impossible: a reader either sees the old extent (still intact) or
blocks on the lock until the new extent is durable.

A copy's destination must be *disjoint* from its source: sliding a
file left by less than its own length would overwrite the source in
place, and a mid-copy failure (disk death, injected media error) would
then leave the only copy torn. With disjoint extents the copy touches
no live data, so a hop can be abandoned at any point — the claim is
unwound and the old extent is still intact on every replica. A file
whose slide *would* overlap its source is bounced: copy-then-flip to a
disjoint staging extent elsewhere on the volume, then a second hop from
staging into place — twice the I/O, but every individual hop stays
abandonable. Files whose destination is partly occupied (a concurrent
CREATE won the blocks), whose bounce cannot find staging, or whose copy
errors mid-hop are skipped and left in place (or at staging) —
compaction is best-effort under load, correct always.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConsistencyError, NoSpaceError, ReproError
from ..sim import AllOf
from .replication import replicated_inode_write
from .server import BulletServer

__all__ = ["CompactionReport", "compact_disk", "nightly_compaction"]


@dataclass
class CompactionReport:
    """What one compaction pass did."""

    files_moved: int = 0
    blocks_moved: int = 0
    files_skipped: int = 0
    duration: float = 0.0
    fragmentation_before: float = 0.0
    fragmentation_after: float = 0.0
    largest_hole_before: int = 0
    largest_hole_after: int = 0


def compact_disk(server: BulletServer):
    """Process: one full compaction pass over ``server``'s volume.

    Safe to run online, concurrently with a serving worker pool: each
    file moves under its write lock with copy-then-flip ordering.
    """
    env = server.env
    layout = server.layout
    report = CompactionReport(
        fragmentation_before=server.disk_free.external_fragmentation(),
        largest_hole_before=server.disk_free.largest_hole,
    )
    started = env.now
    live = sorted(server.table.live_inodes(),
                  key=lambda item: item[1].start_block)
    cursor = layout.data_start
    for number, _snapshot_inode in live:
        grant = server.locks.acquire_write(number)
        try:
            yield grant
            # Revalidate under the lock: the file may have been deleted
            # (or its number reincarnated at a new address) while the
            # pass worked through earlier files.
            inode = server.table.get(number)
            if inode.free:
                continue
            blocks = layout.blocks_for(inode.size)
            if blocks == 0:
                continue
            start = inode.start_block
            if start <= cursor:
                # Already at (or left of, via a concurrent CREATE into
                # an earlier hole) the watermark: leave it.
                cursor = max(cursor, start + blocks)
                continue
            try:
                moved = yield from _relocate(server, number, inode,
                                             start, cursor, blocks)
            except ReproError as exc:
                # A replica erroring mid-hop (media fault, disk death)
                # aborts that file's move, not the pass: the hop has
                # already unwound, the file's current extent is intact.
                server._trace("bullet", "compaction.move_failed",
                              inode=number, status=exc.status.name)
                moved = False
            if moved:
                report.files_moved += 1
                report.blocks_moved += blocks
                cursor += blocks
            else:
                report.files_skipped += 1
                cursor = start + blocks
        finally:
            server.locks.release(grant)
    server.disk_free.check_invariants()
    report.duration = env.now - started
    report.fragmentation_after = server.disk_free.external_fragmentation()
    report.largest_hole_after = server.disk_free.largest_hole
    server._trace("bullet", "compaction",
                  moved=report.files_moved, blocks=report.blocks_moved,
                  skipped=report.files_skipped)
    return report


def _relocate(server: BulletServer, number: int, inode, start: int,
              cursor: int, blocks: int):
    """Process: bring one file to ``cursor`` (``cursor < start``).
    A slide of at least the file's own length is one disjoint hop; a
    shorter slide bounces through a disjoint staging extent. Returns
    False when the file could not reach ``cursor``; raises the
    underlying :class:`ReproError` after unwinding when a replica
    errors mid-hop."""
    if start - cursor < blocks:
        # The direct slide would overlap the source: bounce through any
        # disjoint free extent (the coalescing tail, usually). No
        # staging room means the file stays put this pass.
        try:
            staging = server.disk_free.allocate(blocks)
        except NoSpaceError:
            return False
        yield from _copy_flip(server, number, inode, start, staging, blocks)
        start = staging  # hop two below moves staging -> cursor
    if not server.disk_free.is_free(cursor, blocks):
        # A concurrent CREATE owns part of the destination: skip the
        # move. (Single-threaded passes never hit this — the snapshot
        # cannot go stale.)
        return False
    server.disk_free.allocate_at(cursor, blocks)
    yield from _copy_flip(server, number, inode, start, cursor, blocks)
    return True


def _copy_flip(server: BulletServer, number: int, inode, src: int,
               dst: int, blocks: int):
    """Process: one abandonable hop from ``src`` to a *disjoint*,
    already-claimed ``dst``. Unwinds the claim and re-raises if a
    replica errors before the flip."""
    env = server.env
    if abs(src - dst) < blocks:
        raise ConsistencyError(
            f"compaction hop [{src},{src + blocks}) -> [{dst},{dst + blocks}) "
            "overlaps; a mid-copy failure would tear the only copy"
        )
    try:
        data = yield from server.mirror.read_with_failover(src, blocks)
        # Copy: the relocated extent becomes durable on every live
        # replica while the old extent and the on-disk inode still
        # describe the old location — an abort here loses nothing.
        writes = [disk.write(dst, data)
                  for disk in server.mirror.live_disks]
        server.mirror.resync_note(dst, len(data), writes)
        yield AllOf(env, writes)
    except ReproError:
        server.disk_free.free(dst, blocks)
        raise
    # Flip: repoint the RAM inode and write the inode block through
    # while the old extent is still allocated (so a crash between the
    # two leaves whichever inode version is on disk pointing at an
    # extent nobody has reused), then return the vacated blocks.
    inode.start_block = dst
    inode_block = server.table.block_of_inode(number)
    try:
        yield replicated_inode_write(
            env, server.mirror, inode_block,
            server.table.encode_block(inode_block)
        )
    finally:
        # Even if the write-through errored, RAM state (inode + free
        # map) must stay self-consistent: the file now lives at dst.
        server.disk_free.free(src, blocks)


def nightly_compaction(server: BulletServer, period: float = 24 * 3600.0,
                       first_at: float = 3 * 3600.0):
    """Process: run compaction every ``period`` seconds, first at 3 a.m."""
    env = server.env
    if first_at > env.now:
        yield env.timeout(first_at - env.now)
    while True:
        yield from compact_disk(server)
        yield env.timeout(period)
