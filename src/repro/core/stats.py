"""Operation statistics for the Bullet server.

Since the observability plane (PR 4), the counters live in a
:class:`~repro.obs.MetricsRegistry` — ``ServerStats`` is a facade over
registry counters (``repro_server_<field>_total{server=...}``), so the
values reported by ``std_status``, the Prometheus/JSON exporters, and
the bench emitter are one and the same.
"""

from __future__ import annotations

from ..obs import RegistryStats


class ServerStats(RegistryStats):
    """Counters the server maintains for std_status-style reporting."""

    _PREFIX = "repro_server"
    _COUNTER_FIELDS = (
        "creates",
        "reads",
        "sizes",
        "deletes",
        "modifies",
        "restricts",
        "errors",
        "bytes_created",
        "bytes_read",
        "bytes_modified",
        "cap_checks",
        "cap_check_cache_hits",
    )
