"""Operation statistics for the Bullet server."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ServerStats:
    """Counters the server maintains for std_status-style reporting."""

    creates: int = 0
    reads: int = 0
    sizes: int = 0
    deletes: int = 0
    modifies: int = 0
    restricts: int = 0
    errors: int = 0
    bytes_created: int = 0
    bytes_read: int = 0
    cap_checks: int = 0
    cap_check_cache_hits: int = 0

    def snapshot(self) -> dict:
        return {
            "creates": self.creates,
            "reads": self.reads,
            "sizes": self.sizes,
            "deletes": self.deletes,
            "modifies": self.modifies,
            "restricts": self.restricts,
            "errors": self.errors,
            "bytes_created": self.bytes_created,
            "bytes_read": self.bytes_read,
            "cap_checks": self.cap_checks,
            "cap_check_cache_hits": self.cap_check_cache_hits,
        }
