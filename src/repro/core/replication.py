"""Write-through replication and the P-FACTOR (§2.2, §3).

"If the P-FACTOR is zero, BULLET.CREATE will return immediately after
the file has been copied to the file server's RAM cache, but before it
has been stored on disk. ... If the P-FACTOR is N, the file will be
stored on N disks before the client can resume."

Each live replica gets the same two-step, crash-ordered write: the data
extent first, then the block of the inode table containing the new
inode — so a crash between the two leaves only an unreferenced extent,
never an inode pointing at garbage. The create path replies once
``p_factor`` replicas have completed both steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..disk import MirroredDiskSet, VirtualDisk
from ..errors import BadRequestError, ConsistencyError, ServerDownError
from ..sim import CountOf, Environment, Event

__all__ = ["ReplicatedWrite", "replicated_file_write",
           "replicated_inode_write", "check_p_factor"]


def check_p_factor(p_factor: int, mirror: MirroredDiskSet) -> None:
    """Validate a requested paranoia factor against the configuration.

    "If the P-FACTOR is N, ... this requires the file server to have at
    least N disks available for replication."
    """
    if p_factor < 0:
        raise BadRequestError(f"p-factor must be >= 0, got {p_factor}")
    if p_factor > len(mirror.disks):
        raise BadRequestError(
            f"p-factor {p_factor} exceeds the server's {len(mirror.disks)} disks"
        )
    if p_factor > mirror.replica_count:
        raise ServerDownError(
            f"p-factor {p_factor} requires more live disks than the "
            f"{mirror.replica_count} currently available"
        )


def _write_one_replica(env: Environment, disk: VirtualDisk,
                       data_block: Optional[int], data: bytes,
                       inode_block: int, inode_block_bytes: bytes):
    """Process: make one replica durable (data extent, then inode block)."""
    if data:
        if data_block is None:
            raise ConsistencyError("replica write carries data but no data block")
        yield disk.write(data_block, data)
    yield disk.write(inode_block, inode_block_bytes)
    return disk.name


@dataclass
class ReplicatedWrite:
    """An in-flight replicated write: the quorum event the create path
    blocks on, plus the individual per-replica write processes so the
    caller can observe the background stragglers (a ``p_factor=0``
    CREATE replies before *any* replica is durable; failures past the
    quorum used to vanish silently)."""

    durable: Event
    writes: list


def replicated_file_write(env: Environment, mirror: MirroredDiskSet,
                          data_block: Optional[int], data: bytes,
                          inode_block: int, inode_block_bytes: bytes,
                          p_factor: int) -> ReplicatedWrite:
    """Start data+inode writes on every live replica.

    ``durable`` fires once ``p_factor`` replicas have completed both
    steps (immediately for ``p_factor == 0``); the remaining replicas
    keep writing in the background and stay observable via ``writes``.
    """
    writes = [
        env.process(_write_one_replica(env, disk, data_block, data,
                                       inode_block, inode_block_bytes))
        for disk in mirror.live_disks
    ]
    # These writes bypass mirror.write(), so an in-flight recovery copy
    # must be told about them or it can clobber the rebuilt replica's
    # copy with a stale snapshot (the model checker's repair-race bug).
    if data and data_block is not None:
        mirror.resync_note(data_block, len(data), writes)
    mirror.resync_note(inode_block, len(inode_block_bytes), writes)
    durable = CountOf(env, writes, need=min(p_factor, len(writes)))
    return ReplicatedWrite(durable=durable, writes=writes)


def replicated_inode_write(env: Environment, mirror: MirroredDiskSet,
                           inode_block: int, inode_block_bytes: bytes) -> Event:
    """Write one inode-table block through to every live replica (the
    delete path: "freeing an inode by zeroing it and writing it back to
    the disk"; waits for all replicas)."""
    return mirror.write(inode_block, inode_block_bytes)
