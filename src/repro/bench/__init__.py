"""Benchmark harness (S13/S14): workloads, the §4 testbed rig, paper-
style tables, and the per-figure measurement functions."""

from .coherence import (
    coherence_policy_tradeoff,
    coherence_vs_workstations,
    make_policy,
)
from .harness import (
    PAPER_SIZES,
    Rig,
    bullet_figure2,
    client_cache_scaling,
    cold_read_disciplines,
    make_rig,
    nfs_figure3,
    throughput_vs_clients,
    throughput_vs_workers,
    timed,
)
from .tables import MeasurementTable, ascii_chart, comparison_lines
from .workload import FileSizeDistribution, Op, TraceGenerator

__all__ = [
    "PAPER_SIZES",
    "Rig",
    "bullet_figure2",
    "make_rig",
    "nfs_figure3",
    "throughput_vs_clients",
    "throughput_vs_workers",
    "client_cache_scaling",
    "coherence_policy_tradeoff",
    "coherence_vs_workstations",
    "cold_read_disciplines",
    "make_policy",
    "timed",
    "MeasurementTable",
    "ascii_chart",
    "comparison_lines",
    "FileSizeDistribution",
    "Op",
    "TraceGenerator",
]
