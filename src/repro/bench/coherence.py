"""PR 10: coherence traffic vs workstation count (the §5 trade-off).

§5 keeps the file server out of the coherence protocol entirely: a
workstation checks a cached copy's currency against the *directory*
("simply by checking whether the capability is still stored under the
given name"), so as workstations multiply the file server's READ load
stays within one workstation's envelope — cold misses plus
re-fetches of replaced versions — while the directory service absorbs
one LOOKUP per currency check. This bench measures both sides of that
bargain: N workstations (each a :class:`~repro.client.WorkstationCache`
+ :class:`~repro.client.NamedFileClient`) read a directory-published
hot set under Zipf popularity while a seeded writer REPLACEs bindings;
the sweep shows directory RPCs growing with N and with check frequency
(the :class:`~repro.client.CurrencyPolicy`), server READs flat per
workstation, and — the correctness half — zero stale reads served
under the check-always policy.

A read is counted **stale-served** when the bytes decode to a version
older than the name's ground-truth version *before the open began*
(reads concurrent with a REPLACE are legitimately either version; reads
of data older than the binding at open time are the §5 violation).
"""

from __future__ import annotations

from typing import Optional

from ..capability import RIGHT_READ
from ..client import (CachingBulletClient, CurrencyPolicy, NamedFileClient,
                      WorkstationCache)
from ..errors import BadRequestError, ConsistencyError
from ..profiles import DEFAULT_TESTBED, Testbed
from ..sim import SeededStream, run_process
from ..units import KB
from .harness import make_rig

__all__ = ["coherence_vs_workstations", "coherence_policy_tradeoff",
           "make_policy"]


def make_policy(spec: str, check_interval: float) -> CurrencyPolicy:
    """A :class:`CurrencyPolicy` from its bench spelling: ``always``,
    ``after`` (using ``check_interval``), or ``session``."""
    if spec == "always":
        return CurrencyPolicy.always()
    if spec == "after":
        return CurrencyPolicy.after(check_interval)
    if spec == "session":
        return CurrencyPolicy.session()
    raise BadRequestError(f"unknown policy spec {spec!r}")


def _encode(name: str, version: int, size: int) -> bytes:
    """The bench's file contents: a self-describing version header
    padded to ``size`` bytes, so a reader can tell which version it
    was served without any side channel."""
    header = f"{name}:v{version}:".encode()
    if len(header) > size:
        raise BadRequestError(
            f"file size {size} too small for the version header"
        )
    return header + b"." * (size - len(header))


def _version_of(data: bytes) -> int:
    return int(data.split(b":v", 1)[1].split(b":", 1)[0])


def _coherence_cell(n_workstations: int, policy: CurrencyPolicy,
                    hot_files: int, file_size: int,
                    ops_per_workstation: int, think: float,
                    n_replaces: int, write_interval: float,
                    cache_bytes: int, seed: int,
                    testbed: Testbed) -> dict:
    """One measured cell: N workstations under one currency policy."""
    rig = make_rig(seed=seed, testbed=testbed, with_nfs=False,
                   background_load=False, with_directory=True)
    env, bullet = rig.env, rig.bullet
    root = run_process(env, rig.directory_client.create_directory())

    names = [f"hot-f{i:03d}" for i in range(hot_files)]
    # Even-numbered files are published under owner capabilities, odd
    # ones under read-only restrictions — so the currency check runs
    # both evidence paths (owner-vs-restricted lineage and known-pair).
    masks: list = [None if i % 2 == 0 else RIGHT_READ
                   for i in range(hot_files)]

    writer_session = NamedFileClient(
        CachingBulletClient(
            rig.bullet_client,
            cache=WorkstationCache(4 * file_size, name="writer",
                                   metrics=rig.metrics, cpu=testbed.cpu)),
        rig.directory_client, root, policy=CurrencyPolicy.session(),
        name="writer")
    truth: dict[str, int] = {}
    owners: dict = {}
    for i, name in enumerate(names):
        owner, _old = run_process(
            env, writer_session.publish(name, _encode(name, 0, file_size),
                                        1, mask=masks[i]))
        owners[name] = owner
        truth[name] = 0

    sessions = []
    for w in range(n_workstations):
        cache = WorkstationCache(cache_bytes, name=f"ws{w}",
                                 metrics=rig.metrics, cpu=testbed.cpu)
        caching = CachingBulletClient(rig.bullet_client, cache=cache)
        sessions.append(NamedFileClient(caching, rig.directory_client,
                                        root, policy=policy,
                                        name=f"ws{w}"))

    stale_served = [0] * n_workstations

    def reader(index: int):
        named = sessions[index]
        stream = SeededStream(seed, f"coherence:ws{index}")
        for _ in range(ops_per_workstation):
            name = names[stream.zipf_index(hot_files)]
            expected = truth[name]
            data = yield from named.read(name)
            if _version_of(data) < expected:
                stale_served[index] += 1
            yield env.timeout(think)

    def writer():
        stream = SeededStream(seed, "coherence:writer")
        for _ in range(n_replaces):
            yield env.timeout(write_interval)
            i = stream.zipf_index(hot_files)
            name = names[i]
            version = truth[name] + 1
            owner, _old = yield from writer_session.publish(
                name, _encode(name, version, file_size), 1, mask=masks[i])
            truth[name] = version
            # Dispose of the superseded version: readers mid-fetch
            # recover through their own currency re-check.
            doomed = owners[name]
            owners[name] = owner
            yield from rig.bullet_client.delete(doomed)

    reads_before = bullet.stats.reads
    start = env.now
    waits = [env.process(reader(index)) for index in range(n_workstations)]
    waits.append(env.process(writer()))
    for wait in waits:
        env.run(until=wait)
    elapsed = env.now - start

    total_ops = n_workstations * ops_per_workstation
    dir_rpcs = sum(s.stats.dir_rpcs for s in sessions)
    checks = sum(s.stats.checks for s in sessions)
    stale = sum(s.stats.stale for s in sessions)
    revalidations = sum(s.stats.revalidations for s in sessions)
    cache_hits = sum(s.client.cache.stats.hits for s in sessions)
    cache_misses = sum(s.client.cache.stats.misses for s in sessions)
    cache_lookups = sum(s.client.cache.stats.lookups for s in sessions)
    if cache_hits + cache_misses != cache_lookups:
        raise ConsistencyError(
            f"client cache conservation violated: {cache_hits} + "
            f"{cache_misses} != {cache_lookups}"
        )
    server_reads = bullet.stats.reads - reads_before
    return {
        "workstations": n_workstations,
        "policy": repr(policy),
        "total_ops": total_ops,
        "elapsed_s": elapsed,
        "served_ops_per_sec": total_ops / elapsed,
        "server_reads": server_reads,
        "server_reads_per_workstation": server_reads / n_workstations,
        "dir_rpcs": dir_rpcs,
        "dir_rpcs_per_op": dir_rpcs / total_ops,
        "dir_rpcs_writer": writer_session.stats.dir_rpcs,
        "coherence_checks": checks,
        "stale_bindings": stale,
        "revalidations": revalidations,
        "stale_reads_served": sum(stale_served),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }


def coherence_vs_workstations(workstation_counts=(1, 2, 4, 8, 16),
                              policy: str = "always",
                              check_interval: float = 0.05,
                              hot_files: int = 12,
                              file_size: int = 8 * KB,
                              ops_per_workstation: int = 120,
                              think: float = 2e-3,
                              n_replaces: int = 10,
                              write_interval: float = 0.03,
                              cache_bytes: Optional[int] = None,
                              seed: int = 1989,
                              testbed: Testbed = DEFAULT_TESTBED) -> dict:
    """Directory coherence traffic as workstations multiply.

    Each workstation's cache is sized for full hot-set residency (the
    cache shields the file server; what remains is the coherence
    traffic), every workstation performs the same fixed number of Zipf
    open+read ops, and the writer's REPLACE schedule is identical
    across cells — so cells compare the cost of the *same* job as N
    grows. Returns per-N result rows (see ``_coherence_cell``).
    """
    if cache_bytes is None:
        # Full residency plus headroom for freshly fetched versions.
        cache_bytes = 2 * hot_files * file_size
    pol = make_policy(policy, check_interval)
    results: dict = {}
    for n_workstations in workstation_counts:
        results[n_workstations] = _coherence_cell(
            n_workstations, pol, hot_files, file_size,
            ops_per_workstation, think, n_replaces, write_interval,
            cache_bytes, seed, testbed)
    return results


def coherence_policy_tradeoff(n_workstations: int = 8,
                              policies=("always", "after", "session"),
                              check_interval: float = 0.05,
                              hot_files: int = 12,
                              file_size: int = 8 * KB,
                              ops_per_workstation: int = 120,
                              think: float = 2e-3,
                              n_replaces: int = 10,
                              write_interval: float = 0.03,
                              cache_bytes: Optional[int] = None,
                              seed: int = 1989,
                              testbed: Testbed = DEFAULT_TESTBED) -> dict:
    """The traffic/staleness trade-off at a fixed workstation count:
    the same workload under each currency policy. Check-always pays
    one directory RPC per open and serves nothing stale; session pays
    almost nothing and serves whatever the binding aged into;
    check-after-T sits between."""
    if cache_bytes is None:
        cache_bytes = 2 * hot_files * file_size
    results: dict = {}
    for spec in policies:
        results[spec] = _coherence_cell(
            n_workstations, make_policy(spec, check_interval), hot_files,
            file_size, ops_per_workstation, think, n_replaces,
            write_interval, cache_bytes, seed, testbed)
    return results
