"""Paper-style table rendering (S14).

The paper reports each experiment twice: delay in msec (figure part a)
and bandwidth in Kbytes/sec (part b). These helpers render exactly that
shape from measured results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import bandwidth_kb_per_sec, fmt_size, to_msec

__all__ = ["MeasurementTable", "comparison_lines"]


@dataclass
class MeasurementTable:
    """Measured delays (seconds) per (file size, column)."""

    title: str
    columns: list
    rows: dict = field(default_factory=dict)  # size -> {column: seconds}

    def record(self, size: int, column: str, seconds: float) -> None:
        if column not in self.columns:
            raise ValueError(f"unknown column {column!r}")
        self.rows.setdefault(size, {})[column] = seconds

    def delay(self, size: int, column: str) -> float:
        return self.rows[size][column]

    def bandwidth(self, size: int, column: str) -> float:
        return bandwidth_kb_per_sec(size, self.rows[size][column])

    # ------------------------------------------------------------ render

    def render_delay(self) -> str:
        """Part (a): delay in msec."""
        return self._render(
            f"{self.title} — Delay (msec)",
            lambda size, col: f"{to_msec(self.rows[size][col]):.1f}",
        )

    def render_bandwidth(self) -> str:
        """Part (b): bandwidth in Kbytes/sec."""
        return self._render(
            f"{self.title} — Bandwidth (Kbytes/sec)",
            lambda size, col: f"{self.bandwidth(size, col):.1f}",
        )

    def _render(self, title: str, cell) -> str:
        width = 14
        header = "File Size".ljust(width) + "".join(
            col.rjust(width) for col in self.columns
        )
        lines = [title, "=" * len(header), header, "-" * len(header)]
        for size in sorted(self.rows):
            line = fmt_size(size).ljust(width)
            for col in self.columns:
                if col in self.rows[size]:
                    line += cell(size, col).rjust(width)
                else:
                    line += "-".rjust(width)
            lines.append(line)
        return "\n".join(lines)


def ascii_chart(tables: dict, column_of: dict, width: int = 56,
                title: str = "Bandwidth vs file size (KB/s, log-size axis)") -> str:
    """A bar chart of bandwidth per file size for several series.

    ``tables`` maps a series label to a :class:`MeasurementTable`;
    ``column_of`` maps the same label to the column to plot. Bars are
    scaled to the global maximum so series are visually comparable —
    the shape the paper's figures convey.
    """
    rows = []
    peak = 0.0
    for label, table in tables.items():
        column = column_of[label]
        for size in sorted(table.rows):
            if column in table.rows[size]:
                bandwidth = table.bandwidth(size, column)
                rows.append((size, label, bandwidth))
                peak = max(peak, bandwidth)
    if peak <= 0:
        return title + "\n(no data)"
    label_width = max(len(label) for _s, label, _b in rows) + 2
    lines = [title, "=" * (width + label_width + 22)]
    last_size = None
    for size, label, bandwidth in sorted(rows, key=lambda r: (r[0], r[1])):
        if size != last_size:
            lines.append(fmt_size(size))
            last_size = size
        bar = "#" * max(int(bandwidth / peak * width), 1)
        lines.append(f"  {label:<{label_width}}{bar} {bandwidth:8.1f}")
    return "\n".join(lines)


def comparison_lines(bullet: MeasurementTable, nfs: MeasurementTable,
                     bullet_read: str = "READ", nfs_read: str = "READ",
                     bullet_write: str = "CREATE+DEL",
                     nfs_write: str = "CREATE") -> str:
    """The §4–§5 claims, checked numerically against two tables."""
    lines = ["Claim checks (paper §4/§5)", "=" * 60]
    sizes = sorted(set(bullet.rows) & set(nfs.rows))
    for size in sizes:
        ratio = nfs.delay(size, nfs_read) / bullet.delay(size, bullet_read)
        lines.append(
            f"C1 read speedup @ {fmt_size(size):<12} "
            f"Bullet {to_msec(bullet.delay(size, bullet_read)):9.1f} ms vs "
            f"NFS {to_msec(nfs.delay(size, nfs_read)):9.1f} ms "
            f"=> {ratio:4.1f}x"
        )
    big = max(sizes)
    # C2: "Although the Bullet file server stores the files on two disks,
    # for large files the bandwidth is ten times that of SUN NFS" — the
    # storing (write) bandwidths.
    lines.append(
        f"C2 large-file WRITE bandwidth ratio @ {fmt_size(big)}: "
        f"{bullet.bandwidth(big, bullet_write) / nfs.bandwidth(big, nfs_write):.1f}x"
        f" (read ratio: "
        f"{bullet.bandwidth(big, bullet_read) / nfs.bandwidth(big, nfs_read):.1f}x)"
    )
    for size in sizes:
        if size > 64 * 1024 - 1:
            lines.append(
                f"C3 Bullet WRITE bw {bullet.bandwidth(size, bullet_write):7.1f} "
                f"vs NFS READ bw {nfs.bandwidth(size, nfs_read):7.1f} KB/s "
                f"@ {fmt_size(size)} => "
                f"{'HOLDS' if bullet.bandwidth(size, bullet_write) > nfs.bandwidth(size, nfs_read) else 'FAILS'}"
            )
    if 64 * 1024 in nfs.rows and 1024 * 1024 in nfs.rows:
        for col in (nfs_read, nfs_write):
            bw64 = nfs.bandwidth(64 * 1024, col)
            bw1m = nfs.bandwidth(1024 * 1024, col)
            lines.append(
                f"C4 NFS {col}: 64KB {bw64:7.1f} vs 1MB {bw1m:7.1f} KB/s => "
                f"{'HOLDS (1MB slower)' if bw1m < bw64 else 'FAILS'}"
            )
    return "\n".join(lines)
