"""The measurement harness (S14): builds the paper's testbed and runs
the §4 experiments.

The rig reproduces the measurement setup of §4:

* a Bullet server on a dedicated 16.7 MHz MC68020 with 16 MB RAM and two
  800 MB disks, reached over a normally loaded 10 Mb/s Ethernet;
* a SUN-NFS-style server (3 MB buffer cache, one disk, write-through),
  measured from a diskless client with local caching disabled (lockf),
  with background churn standing in for the shared departmental load.

Delays are simulated milliseconds; bandwidths derive from them. Repeats
are averaged; everything is seeded, so tables reproduce bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..capability import RIGHT_READ
from ..client import (BulletClient, CachingBulletClient, DirectoryClient,
                      LocalBulletStub, WorkstationCache)
from ..core import BulletServer
from ..directory import DirectoryServer
from ..disk import MirroredDiskSet, VirtualDisk
from ..errors import BadRequestError, ConsistencyError
from ..net import Ethernet, RpcTransport
from ..nfs import NfsClient, NfsServer
from ..obs import MetricsRegistry
from ..profiles import DEFAULT_TESTBED, Testbed
from ..sim import Environment, SeededStream, run_process
from ..units import KB
from .tables import MeasurementTable
from .workload import PAPER_SIZES

__all__ = [
    "Rig",
    "make_rig",
    "timed",
    "bullet_figure2",
    "nfs_figure3",
    "throughput_vs_clients",
    "throughput_vs_workers",
    "cold_read_disciplines",
    "client_cache_scaling",
    "PAPER_SIZES",
]


@dataclass
class Rig:
    """One assembled testbed."""

    env: Environment
    testbed: Testbed
    ethernet: Ethernet
    rpc: RpcTransport
    seed: int
    metrics: Optional[MetricsRegistry] = None
    bullet: Optional[BulletServer] = None
    bullet_client: Optional[BulletClient] = None
    nfs: Optional[NfsServer] = None
    nfs_client: Optional[NfsClient] = None
    directory: Optional[DirectoryServer] = None
    directory_client: Optional[DirectoryClient] = None


def make_rig(seed: int = 1989, testbed: Testbed = DEFAULT_TESTBED,
             background_load: bool = True, with_bullet: bool = True,
             with_nfs: bool = True, nfs_churn: bool = True,
             bullet_disks: int = 2, cache_policy: str = "lru",
             workers: int = 1, disk_discipline: str = "fcfs",
             with_directory: bool = False) -> Rig:
    """Build the §4 testbed (or a subset of it).

    ``workers`` sizes the Bullet server's service pool (1 = the paper's
    single-threaded loop); ``disk_discipline`` picks the per-disk queue
    ("fcfs" or "elevator" — the latter only matters once concurrent
    workers actually queue disk requests). ``with_directory`` adds a
    directory server (its rows stored on the Bullet server through the
    local plane, its own private slot disk) plus a
    :class:`~repro.client.DirectoryClient` over the shared transport —
    the naming/coherence half of the testbed.

    Every component shares one :class:`~repro.obs.MetricsRegistry`
    (``rig.metrics``), so a single export covers the whole testbed.
    """
    env = Environment()
    metrics = MetricsRegistry()
    ethernet = Ethernet(
        env, testbed.ethernet,
        stream=SeededStream(seed, "ethernet") if background_load else None,
        background_load=background_load,
        metrics=metrics,
    )
    rpc = RpcTransport(env, ethernet, testbed.cpu, metrics=metrics)
    rig = Rig(env=env, testbed=testbed, ethernet=ethernet, rpc=rpc, seed=seed,
              metrics=metrics)
    if with_bullet:
        disks = [VirtualDisk(env, testbed.disk, name=f"bullet-d{i}",
                             discipline=disk_discipline, metrics=metrics)
                 for i in range(bullet_disks)]
        mirror = MirroredDiskSet(env, disks)
        rig.bullet = BulletServer(env, mirror, testbed, transport=rpc,
                                  master_seed=seed, cache_policy=cache_policy,
                                  metrics=metrics, workers=workers)
        rig.bullet.format()
        env.run(until=env.process(rig.bullet.boot()))
        rig.bullet_client = BulletClient(env, rpc, rig.bullet.port,
                                         metrics=metrics)
    if with_directory:
        if rig.bullet is None:
            raise BadRequestError("a directory rig needs the Bullet server")
        dir_disk = VirtualDisk(env, testbed.disk, name="dir-disk",
                               metrics=metrics)
        rig.directory = DirectoryServer(env, dir_disk,
                                        LocalBulletStub(rig.bullet),
                                        testbed, transport=rpc,
                                        master_seed=seed)
        rig.directory.format()
        env.run(until=env.process(rig.directory.boot()))
        rig.directory_client = DirectoryClient(
            env, rpc, default_port=rig.directory.port)
    if with_nfs:
        nfs_disk = VirtualDisk(env, testbed.disk, name="nfs-disk",
                               metrics=metrics)
        rig.nfs = NfsServer(env, nfs_disk, testbed, transport=rpc,
                            background_churn=nfs_churn, master_seed=seed,
                            metrics=metrics)
        rig.nfs.format()
        env.run(until=env.process(rig.nfs.boot()))
        rig.nfs_client = NfsClient(env, testbed, rpc=rpc,
                                   server_port=rig.nfs.port)
    return rig


def timed(env: Environment, gen):
    """Run one client process; returns (elapsed_seconds, result)."""
    start = env.now
    result = run_process(env, gen)
    return env.now - start, result


# ------------------------------------------------------------- Figure 2


def bullet_figure2(rig: Rig, sizes=None, repeats: int = 3,
                   p_factor: int = 2) -> MeasurementTable:
    """Fig. 2: Bullet READ and CREATE+DEL delay per file size.

    READ is measured with the file fully in the server's RAM cache
    ("In all cases the test file will be completely in memory, and no
    disk accesses are necessary"); CREATE+DEL writes through to both
    disks ("the file is written to both disks. Note that both creation
    and deletion involve requests to two disks.").
    """
    if rig.bullet_client is None:
        raise BadRequestError("rig was built without Bullet")
    env, client = rig.env, rig.bullet_client
    table = MeasurementTable(title="Bullet file server", columns=["READ", "CREATE+DEL"])
    for size in sizes or PAPER_SIZES:
        payload = bytes(size)
        # --- READ: create once (warms the cache), then timed reads.
        _setup, cap = timed(env, client.create(payload, p_factor))
        total = 0.0
        for _ in range(repeats):
            elapsed, data = timed(env, client.read(cap))
            if len(data) != size:
                raise ConsistencyError(
                    f"READ returned {len(data)} bytes, expected {size}"
                )
            total += elapsed
        table.record(size, "READ", total / repeats)
        timed(env, client.delete(cap))
        # --- CREATE+DEL measured together, as in the paper.
        total = 0.0
        for _ in range(repeats):
            def create_and_delete():
                c = yield from client.create(payload, p_factor)
                yield from client.delete(c)

            elapsed, _ = timed(env, create_and_delete())
            total += elapsed
        table.record(size, "CREATE+DEL", total / repeats)
    return table


# ------------------------------------------------------------- Figure 3


def nfs_figure3(rig: Rig, sizes=None, repeats: int = 3) -> MeasurementTable:
    """Fig. 3: SUN NFS READ and CREATE delay per file size.

    "The read test consisted of an lseek followed by a read system
    call. The write test consisted of consecutively executing creat,
    write, and close." Local client caching is off (lockf).
    """
    if rig.nfs_client is None:
        raise BadRequestError("rig was built without NFS")
    env, client = rig.env, rig.nfs_client
    table = MeasurementTable(title="SUN NFS file server", columns=["READ", "CREATE"])
    for i, size in enumerate(sizes or PAPER_SIZES):
        payload = bytes(size)
        path = f"/bench_{i}_{size}"

        # Setup: put the file in place (and warm the server cache).
        def setup():
            fd = yield from client.creat(path)
            yield from client.write(fd, payload)
            yield from client.close(fd)
            return (yield from client.open(path))

        _elapsed, fd = timed(env, setup())

        def lseek_read():
            yield from client.lseek(fd, 0)
            data = yield from client.read(fd, size)
            if len(data) != size:
                raise ConsistencyError(
                    f"READ returned {len(data)} bytes, expected {size}"
                )

        total = 0.0
        for _ in range(repeats):
            elapsed, _ = timed(env, lseek_read())
            total += elapsed
        table.record(size, "READ", total / repeats)
        timed(env, client.close(fd))
        timed(env, client.unlink(path))

        # CREATE: creat + write + close, cleanup unmeasured.
        total = 0.0
        for r in range(repeats):
            cpath = f"/create_{i}_{r}"

            def creat_write_close():
                cfd = yield from client.creat(cpath)
                yield from client.write(cfd, payload)
                yield from client.close(cfd)

            elapsed, _ = timed(env, creat_write_close())
            total += elapsed
            timed(env, client.unlink(cpath))
        table.record(size, "CREATE", total / repeats)
    return table


# ----------------------------------------------------- A5: scalability


def throughput_vs_clients(client_counts, file_size: int = 4 * KB,
                          duration: float = 20.0, seed: int = 1989,
                          testbed: Testbed = DEFAULT_TESTBED) -> dict:
    """Sustained read throughput (ops/sec) as concurrent clients grow.

    Each client loops whole-file reads of a private cached file; the
    shared Ethernet and the single-threaded server are the contended
    resources, exactly the paper's quantitative-scalability concern.
    """
    results = {}
    for n in client_counts:
        rig = make_rig(seed=seed, testbed=testbed, with_nfs=False,
                       background_load=False)
        env, client = rig.env, rig.bullet_client
        caps = [run_process(env, client.create(bytes(file_size), 1))
                for _ in range(n)]
        completed = [0] * n

        def client_loop(index):
            while True:
                yield from client.read(caps[index])
                completed[index] += 1

        start = env.now
        for index in range(n):
            # Intentional fork: n concurrent client loops race for the
            # measurement window; env.run(until=...) below bounds them.
            env.process(client_loop(index))  # repro: allow(S001)
        env.run(until=start + duration)
        results[n] = sum(completed) / duration
    return results


# --------------------------------------------- PR 5: worker-pool scaling


def throughput_vs_workers(worker_counts=(1, 2, 4), n_clients: int = 8,
                          file_size: int = 256, duration: float = 5.0,
                          seed: int = 1989,
                          testbed: Testbed = DEFAULT_TESTBED) -> dict:
    """Sustained cache-hit READ throughput (ops/sec) as the server's
    worker pool grows, under a fixed closed-loop client population.

    This is the first measurement past the paper's envelope: with one
    worker the server serializes dispatch, capability check, memcpy,
    and the per-packet network send; with N workers those phases
    pipeline across requests and only the shared Ethernet remains. The
    file is small (one fragment) and cache-hot, so the worker-side CPU
    cost dominates the wire time and added workers genuinely help.
    """
    results = {}
    for workers in worker_counts:
        rig = make_rig(seed=seed, testbed=testbed, with_nfs=False,
                       background_load=False, workers=workers)
        env, client = rig.env, rig.bullet_client
        caps = [run_process(env, client.create(bytes(file_size), 2))
                for _ in range(n_clients)]
        # Warm each client's capability into the verified-cap cache so
        # the measured loop runs the steady-state (cached-check) path.
        for cap in caps:
            run_process(env, client.read(cap))
        completed = [0] * n_clients

        def client_loop(index):
            while True:
                yield from client.read(caps[index])
                completed[index] += 1

        start = env.now
        for index in range(n_clients):
            # Intentional fork: the measurement window below bounds them.
            env.process(client_loop(index))  # repro: allow(S001)
        env.run(until=start + duration)
        results[workers] = sum(completed) / duration
    return results


# ------------------------------------- PR 9: workstation cache scaling


def client_cache_scaling(cache_sizes, n_clients: Optional[int] = None,
                         hot_files: int = 24, file_size: int = 16 * KB,
                         ops_per_client: int = 150, think: float = 2e-3,
                         seed: int = 1989,
                         testbed: Testbed = DEFAULT_TESTBED) -> dict:
    """Served throughput and server load vs the workstation cache size.

    One simulated workstation runs ``n_clients`` client processes
    sharing a single :class:`~repro.client.WorkstationCache`. Each
    process performs ``ops_per_client`` Zipf-distributed whole-file
    reads over a hot set of ``hot_files`` files with a little client
    compute between reads (fixed total work, so the per-size numbers
    compare load for the *same* job, not for whatever a saturated
    server happened to admit). Even-numbered processes read under the
    owner capabilities; odd-numbered ones under read-only restrictions
    minted at setup (by the server: nothing is cached yet, so the cache
    cannot vouch for the owner capabilities and restrict() falls
    through) — so both local-verification paths run during the sweep:
    known-pair hits and verifier derivation from the secret learned
    off an owner admission.

    As the byte budget grows toward the working-set size the hit rate
    rises, the server's READ load falls, and served ops/sec climbs —
    the §5 claim that client caching lifts the server ceiling,
    measured. Returns per-cache-size dicts of served ops/sec, server-
    side load, and the workstation cache counters.
    """
    n_clients = (testbed.workstation.processes
                 if n_clients is None else n_clients)
    results: dict = {}
    for cache_bytes in cache_sizes:
        rig = make_rig(seed=seed, testbed=testbed, with_nfs=False,
                       background_load=False)
        env, client, bullet = rig.env, rig.bullet_client, rig.bullet
        owners = [run_process(env, client.create(bytes([i % 251]) * file_size, 1))
                  for i in range(hot_files)]
        shared = CachingBulletClient(
            client, cache=WorkstationCache(
                cache_bytes, name="ws0", metrics=rig.metrics,
                cpu=testbed.cpu),
        )
        readers = [run_process(env, shared.restrict(cap, RIGHT_READ))
                   for cap in owners]
        served_before = bullet.stats.reads

        def client_loop(index):
            caps = owners if index % 2 == 0 else readers
            stream = SeededStream(seed, f"ws0:client{index}")
            for _ in range(ops_per_client):
                cap = caps[stream.zipf_index(hot_files)]
                yield from shared.read(cap)
                # Client compute between reads, so a hit loop does not
                # spin in zero simulated time.
                yield env.timeout(think)

        start = env.now
        waits = [env.process(client_loop(index))
                 for index in range(n_clients)]
        for wait in waits:
            env.run(until=wait)
        elapsed = env.now - start
        stats = shared.cache.stats
        total_ops = n_clients * ops_per_client
        results[cache_bytes] = {
            "served_ops_per_sec": total_ops / elapsed,
            "server_reads": bullet.stats.reads - served_before,
            "lookups": stats.lookups,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "bytes_saved": stats.bytes_saved,
            "rpcs_avoided": stats.rpcs_avoided,
            "local_verifies": stats.local_verifies,
            "cached_bytes": shared.cache.cached_bytes,
        }
    return results


def cold_read_disciplines(n_clients: int = 8, n_files: int = 48,
                          file_size: int = 16 * KB, workers: int = 4,
                          seed: int = 1989,
                          testbed: Testbed = DEFAULT_TESTBED) -> dict:
    """Cold-read storm, FCFS vs elevator disk scheduling.

    Every read misses the cache (files are evicted after each pass), so
    a pool of concurrent workers keeps a real queue on each disk — the
    first workload in the reproduction where the disk scheduler has
    requests to reorder. Reports per-discipline ops/sec and the number
    of arm seeks performed.
    """
    results: dict = {}
    for discipline in ("fcfs", "elevator"):
        rig = make_rig(seed=seed, testbed=testbed, with_nfs=False,
                       background_load=False, workers=workers,
                       disk_discipline=discipline)
        env, client, bullet = rig.env, rig.bullet_client, rig.bullet
        caps = [run_process(env, client.create(bytes(file_size), 2))
                for _ in range(n_files)]
        for cap in caps:
            bullet.evict(cap.object)
        done = [0]

        def storm(index):
            # Client i walks the file list from a different phase, so
            # concurrent misses hit scattered cylinders.
            for step in range(n_files):
                cap = caps[(index * (n_files // n_clients) + step) % n_files]
                yield from client.read(cap)
                bullet.evict(cap.object)
                done[0] += 1

        waits = [env.process(storm(index)) for index in range(n_clients)]
        start = env.now
        for wait in waits:
            env.run(until=wait)
        elapsed = env.now - start
        seeks = sum(disk.stats.seeks for disk in bullet.mirror.disks)
        results[discipline] = {
            "ops_per_sec": done[0] / elapsed if elapsed else 0.0,
            "seeks": seeks,
        }
    return results
