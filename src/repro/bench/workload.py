"""Workload generation (S13).

File sizes follow the measurements the paper cites ([1] Mullender &
Tanenbaum, "Immediate Files": **median file size 1 Kbyte, 99 % of files
under 64 Kbytes**), modeled as a bounded log-normal. Access popularity
is Zipf (a small set of hot files dominates), and ~75 % of accesses
read a file in its entirety [4] — which in this system is every access,
since transfer is whole-file by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..sim import SeededStream
from ..units import KB

__all__ = ["FileSizeDistribution", "Op", "TraceGenerator", "PAPER_SIZES"]

#: The file-size column of the paper's figures 2 and 3. The OCR of the
#: paper preserves the row pattern (1 byte / bytes / bytes / Kbytes /
#: Kbytes / 1 Mbyte); these are our concrete choices, recorded in
#: EXPERIMENTS.md.
PAPER_SIZES = [1, 16, 256, 1 * KB, 64 * KB, 1024 * KB]


@dataclass(frozen=True)
class FileSizeDistribution:
    """Bounded log-normal file sizes.

    With median 1 KB, sigma is solved so that P(size < 64 KB) = 0.99:
    sigma = ln(64) / z_0.99 = 4.159 / 2.326 ≈ 1.788.
    """

    median: float = 1 * KB
    sigma: float = math.log(64) / 2.326
    minimum: int = 1
    maximum: int = 1024 * KB

    def sample(self, stream: SeededStream) -> int:
        value = stream.lognormal_bounded(self.median, self.sigma,
                                         self.minimum, self.maximum)
        return max(int(value), self.minimum)


@dataclass(frozen=True)
class Op:
    """One trace operation."""

    kind: str            # "create" | "read" | "delete"
    file_id: int         # logical file identity within the trace
    size: int = 0        # bytes, for creates


class TraceGenerator:
    """Generates create/read/delete traces with Zipf-popular reads.

    The trace maintains a live-file set: reads and deletes only target
    files that exist, creates introduce new ones. The default mix is
    read-heavy, matching the BSD trace study's observation that reads
    dominate.
    """

    def __init__(self, seed: int, sizes: Optional[FileSizeDistribution] = None,
                 read_fraction: float = 0.7, delete_fraction: float = 0.1,
                 zipf_skew: float = 0.9):
        if not 0 <= read_fraction + delete_fraction <= 1:
            raise ValueError("fractions must sum to at most 1")
        self.sizes = sizes or FileSizeDistribution()
        self.read_fraction = read_fraction
        self.delete_fraction = delete_fraction
        self.zipf_skew = zipf_skew
        self._stream = SeededStream(seed, "trace")
        self._next_id = 0
        self._live: list[int] = []
        self._size_of: dict[int, int] = {}

    def generate(self, n_ops: int, prepopulate: int = 0) -> list[Op]:
        """A trace of ``n_ops`` operations, optionally preceded by
        ``prepopulate`` creates (which are part of the returned trace)."""
        ops: list[Op] = [self._create() for _ in range(prepopulate)]
        for _ in range(n_ops):
            roll = self._stream.random()
            if self._live and roll < self.read_fraction:
                ops.append(self._read())
            elif self._live and roll < self.read_fraction + self.delete_fraction:
                ops.append(self._delete())
            else:
                ops.append(self._create())
        return ops

    def size_of(self, file_id: int) -> int:
        return self._size_of[file_id]

    def _create(self) -> Op:
        file_id = self._next_id
        self._next_id += 1
        size = self.sizes.sample(self._stream)
        self._live.append(file_id)
        self._size_of[file_id] = size
        return Op(kind="create", file_id=file_id, size=size)

    def _read(self) -> Op:
        # Zipf over live files in creation order: long-lived files are
        # the hot set (system binaries, shared headers), giving a stable
        # popularity skew.
        index = self._stream.zipf_index(len(self._live), self.zipf_skew)
        file_id = self._live[index]
        return Op(kind="read", file_id=file_id,
                  size=self._size_of[file_id])

    def _delete(self) -> Op:
        index = self._stream.randint(0, len(self._live) - 1)
        file_id = self._live.pop(index)
        return Op(kind="delete", file_id=file_id)
