"""Garbage collection of unreachable immutable files.

Immutability plus capability naming creates a classic problem: a file
whose last capability is lost (a client crashed between BULLET.CREATE
and the directory append, a pruned version, an abandoned temporary) can
never be deleted explicitly. Amoeba solved it with **object aging**:
servers give every object a number of *lives*; a periodic sweep
(``std_age``) decrements them, a ``std_touch`` resets them, and an
object that reaches zero is reclaimed. The directory service touches
everything it can reach, so exactly the orphans die.

:func:`gc_sweep` runs one cycle; :func:`gc_daemon` runs it on a period
(the same nightly cadence as the §3 disk compaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .core import BulletServer
from .directory import DirectoryServer

__all__ = ["GcReport", "gc_sweep", "gc_daemon"]


@dataclass
class GcReport:
    """Outcome of one sweep."""

    touched: int = 0
    reclaimed: list = field(default_factory=list)


def gc_sweep(bullet: BulletServer,
             directory_servers: Iterable[DirectoryServer],
             include_history: bool = True,
             extra_collectors: Iterable = ()):
    """Process: one mark(touch)-and-age cycle.

    Touch every capability reachable through the directory service that
    names an object on ``bullet``, then age every object on the server.
    Files survive ``max_lives`` sweeps without a touch before they are
    reclaimed, so a client holding an unbound capability has that many
    periods to bind it; binding is the durable form of reachability.

    ``extra_collectors``: zero-argument callables returning a *process*
    that yields further reachable capabilities — used by structures the
    directory cannot see inside, e.g. the interior nodes of an
    :class:`~repro.btree.ImmutableBTree`
    (``lambda: tree.collect_caps(root)``).
    """
    report = GcReport()
    for dirs in directory_servers:
        caps = yield from dirs.reachable_caps(include_history=include_history)
        for cap in caps:
            if cap.port == bullet.port:
                yield from bullet.touch(cap)
                report.touched += 1
    for collector in extra_collectors:
        caps = yield from collector()
        for cap in caps:
            if cap.port == bullet.port:
                yield from bullet.touch(cap)
                report.touched += 1
    report.reclaimed = yield from bullet.age_all()
    return report


def gc_daemon(bullet: BulletServer,
              directory_servers: Iterable[DirectoryServer],
              period: float = 24 * 3600.0):
    """Process: run :func:`gc_sweep` every ``period`` seconds, forever."""
    directory_servers = list(directory_servers)
    while True:
        yield bullet.env.timeout(period)
        yield from gc_sweep(bullet, directory_servers)
