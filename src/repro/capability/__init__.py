"""Capability system (substrate S3): sparse capabilities with
cryptographic check fields, as used by Amoeba and the Bullet server."""

from .capability import (
    CAP_WIRE_SIZE,
    Capability,
    NULL_CAPABILITY,
    local_verifier,
    mint_owner,
    port_for_name,
    require,
    restrict,
    server_restrict,
    verify,
)
from .crypto import CHECK_BITS, CHECK_MASK, one_way, xtea_decrypt_block, xtea_encrypt_block
from .rights import (
    ALL_RIGHTS,
    RIGHT_ADMIN,
    RIGHT_CREATE,
    RIGHT_DELETE,
    RIGHT_MODIFY,
    RIGHT_READ,
    has_rights,
    rights_names,
)

__all__ = [
    "CAP_WIRE_SIZE",
    "Capability",
    "NULL_CAPABILITY",
    "local_verifier",
    "mint_owner",
    "port_for_name",
    "require",
    "restrict",
    "server_restrict",
    "verify",
    "CHECK_BITS",
    "CHECK_MASK",
    "one_way",
    "xtea_decrypt_block",
    "xtea_encrypt_block",
    "ALL_RIGHTS",
    "RIGHT_ADMIN",
    "RIGHT_CREATE",
    "RIGHT_DELETE",
    "RIGHT_MODIFY",
    "RIGHT_READ",
    "has_rights",
    "rights_names",
]
