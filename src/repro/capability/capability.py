"""Amoeba-style sparse capabilities (§2.1 of the paper).

A capability has four parts:

1. **Server port** — a 48-bit location-independent number naming the
   server that manages the object.
2. **Object number** — identifies the object within the server (e.g. the
   index into the Bullet server's inode table).
3. **Rights field** — which operations the holder may invoke.
4. **Check field** — 48 bits protecting the capability against forging
   and tampering.

The check-field scheme follows Tanenbaum/Mullender/van Renesse, "Using
Sparse Capabilities in a Distributed Operating System" (ref. [12] of the
paper), which is the scheme the Bullet server actually used:

* The **owner capability** has ``rights == ALL_RIGHTS`` and carries the
  object's secret random number *itself* in the check field.
* Anyone holding the owner capability may **restrict** it locally
  (without a server round trip): the restricted capability has
  ``rights' = rights & mask`` and ``check' = f(secret ^ pad(rights'))``
  where ``f`` is a public one-way function.
* The server **verifies** a presented capability against the secret in
  the object's inode: owner capabilities must match the secret exactly;
  restricted ones must match ``f(secret ^ pad(rights))``.

Because ``f`` is one-way, a holder of a restricted capability cannot
recover the secret and therefore cannot amplify rights.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from ..errors import BadRequestError, CapabilityError, RightsError
from .crypto import CHECK_MASK, one_way
from .rights import ALL_RIGHTS, has_rights, rights_names

__all__ = [
    "Capability",
    "NULL_CAPABILITY",
    "mint_owner",
    "restrict",
    "local_verifier",
    "verify",
    "require",
    "port_for_name",
    "CAP_WIRE_SIZE",
]

PORT_BITS = 48
PORT_MASK = (1 << PORT_BITS) - 1
OBJECT_BITS = 24
OBJECT_MASK = (1 << OBJECT_BITS) - 1

#: Wire size of a marshalled capability: 6 (port) + 3 (object) +
#: 1 (rights) + 6 (check) = 16 bytes, as in Amoeba.
CAP_WIRE_SIZE = 16


@dataclass(frozen=True, slots=True)
class Capability:
    """An unforgeable reference to one object on one server."""

    port: int
    object: int
    rights: int
    check: int

    def __post_init__(self):
        if not 0 <= self.port <= PORT_MASK:
            raise BadRequestError(f"port out of range: {self.port:#x}")
        if not 0 <= self.object <= OBJECT_MASK:
            raise BadRequestError(f"object number out of range: {self.object}")
        if not 0 <= self.rights <= ALL_RIGHTS:
            raise BadRequestError(f"rights out of range: {self.rights:#x}")
        if not 0 <= self.check <= CHECK_MASK:
            raise BadRequestError(f"check field out of range: {self.check:#x}")

    def pack(self) -> bytes:
        """Marshal to the 16-byte wire format."""
        return (
            self.port.to_bytes(6, "big")
            + self.object.to_bytes(3, "big")
            + self.rights.to_bytes(1, "big")
            + self.check.to_bytes(6, "big")
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Capability":
        """Unmarshal from the 16-byte wire format."""
        if len(data) != CAP_WIRE_SIZE:
            raise BadRequestError(
                f"capability wire size must be {CAP_WIRE_SIZE}, got {len(data)}"
            )
        return cls(
            port=int.from_bytes(data[0:6], "big"),
            object=int.from_bytes(data[6:9], "big"),
            rights=data[9],
            check=int.from_bytes(data[10:16], "big"),
        )

    def __str__(self) -> str:
        return (
            f"cap(port={self.port:#014x}, obj={self.object}, "
            f"rights={rights_names(self.rights)})"
        )


#: The all-zero capability, conventionally "no object".
NULL_CAPABILITY = Capability(port=0, object=0, rights=0, check=0)


def _pad_rights(rights: int) -> int:
    """Spread the 8 rights bits across 48 bits before XOR with the
    secret, so flipping one rights bit perturbs the whole OWF input."""
    value = 0
    for i in range(6):
        value |= rights << (8 * i)
    return value & CHECK_MASK


def mint_owner(port: int, object_number: int, secret: int) -> Capability:
    """The owner capability for a freshly created object.

    ``secret`` is the object's 48-bit random number, stored in its inode.
    """
    return Capability(port=port, object=object_number,
                      rights=ALL_RIGHTS, check=secret & CHECK_MASK)


def restrict(cap: Capability, mask: int) -> Capability:
    """Derive a capability with fewer rights, entirely client-side.

    Only the owner capability can be restricted locally (its check field
    *is* the secret). Restricting an already-restricted capability needs
    the server's help — see the servers' ``std_restrict`` operations.
    """
    new_rights = cap.rights & mask & ALL_RIGHTS
    if new_rights == cap.rights:
        return cap
    if cap.rights != ALL_RIGHTS:
        raise RightsError(
            "only an owner capability can be restricted locally; "
            "ask the server to restrict a restricted capability"
        )
    check = one_way(cap.check ^ _pad_rights(new_rights))
    return replace(cap, rights=new_rights, check=check)


def server_restrict(cap_rights: int, secret: int, mask: int) -> tuple[int, int]:
    """Server-side restriction: compute (rights', check') for a verified
    capability. The server knows ``secret`` so it can mint a check field
    for any subset of the presented rights."""
    new_rights = cap_rights & mask & ALL_RIGHTS
    return new_rights, local_verifier(secret, new_rights)


def local_verifier(secret: int, rights: int) -> int:
    """The check field a genuine capability with ``rights`` must carry,
    derived from the object's secret.

    This is the whole trick behind client-side verification (§5 /
    BuffetFS-style "permission checks without RPCs"): an *owner*
    capability's check field is the secret itself, so any party holding
    the owner capability can derive the verifier for any rights subset
    locally and validate presented capabilities without consulting the
    server. The server's :func:`verify` is this same function compared
    against the secret stored in the inode.
    """
    if rights == ALL_RIGHTS:
        return secret & CHECK_MASK
    return one_way(secret ^ _pad_rights(rights))


def verify(cap: Capability, secret: int) -> bool:
    """Check of a presented capability against the object's secret
    random number (server-side, or client-side by a secret holder).
    Constant logic regardless of rights value."""
    return cap.check == local_verifier(secret, cap.rights)


def require(cap: Capability, secret: int, needed_rights: int) -> None:
    """Verify ``cap`` and demand ``needed_rights``; raise otherwise.

    Raises :class:`CapabilityError` on a forged/tampered capability and
    :class:`RightsError` on a genuine capability lacking rights — the two
    cases the paper's server distinguishes.
    """
    if not verify(cap, secret):
        raise CapabilityError(f"check field mismatch for {cap}")
    if not has_rights(cap.rights, needed_rights):
        raise RightsError(
            f"{cap} lacks rights {rights_names(needed_rights)}"
        )


def port_for_name(name: str) -> int:
    """A deterministic 48-bit server port derived from a service name.

    Real Amoeba servers chose random ports and published them; for
    reproducible simulations we derive them from the service name.
    """
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:6], "big")
