"""Rights bits carried in capabilities.

The paper (§2.1): "The rights field specifies which access rights the
holder of the capability has to the object. For a file server there may
be a bit indicating the right to read the file, another bit for deleting
the file, and so on."
"""

from __future__ import annotations

__all__ = [
    "RIGHT_READ",
    "RIGHT_DELETE",
    "RIGHT_CREATE",
    "RIGHT_MODIFY",
    "RIGHT_ADMIN",
    "ALL_RIGHTS",
    "RIGHTS_BITS",
    "rights_names",
    "has_rights",
]

RIGHT_READ = 0x01     # read the file / look up directory entries
RIGHT_DELETE = 0x02   # delete the file / remove directory entries
RIGHT_CREATE = 0x04   # create objects (directory: add entries)
RIGHT_MODIFY = 0x08   # derive a new file from this one (BULLET.MODIFY)
RIGHT_ADMIN = 0x10    # administrative operations (restrict, fsck, stats)

ALL_RIGHTS = 0xFF
RIGHTS_BITS = 8

_NAMES = {
    RIGHT_READ: "read",
    RIGHT_DELETE: "delete",
    RIGHT_CREATE: "create",
    RIGHT_MODIFY: "modify",
    RIGHT_ADMIN: "admin",
}


def rights_names(rights: int) -> str:
    """Human-readable rendering, e.g. ``read|delete``."""
    if rights == ALL_RIGHTS:
        return "all"
    names = [name for bit, name in _NAMES.items() if rights & bit]
    return "|".join(names) if names else "none"


def has_rights(rights: int, required: int) -> bool:
    """True when every bit of ``required`` is present in ``rights``."""
    return (rights & required) == required
