"""Rule framework for the invariant linter.

The analyzer is a small, dependency-free static-analysis engine over the
project's own source. It exists because the reproduction's core promises
are *conventions* that nothing enforced: the sim kernel's "no wall-clock
time or global RNG is consulted anywhere" (:mod:`repro.sim.core`), the
capability discipline of the servers (every opcode handler must pass a
``require(...)`` gate before touching server state, paper §2.2), and the
process discipline of the simulator (a generator process that is never
``yield``-ed silently runs un-timed). Each of those conventions is now a
:class:`Rule` with machine-checked findings.

Pieces:

* :class:`Finding` — one violation: rule id, path, line, column, message.
* :class:`Rule` — base class; subclasses declare ``id``/``title``/
  ``rationale`` and implement :meth:`Rule.check` over a
  :class:`FileContext`.
* ``register``/``all_rules`` — the rule registry; the CLI and tests
  enumerate rules through it.
* :class:`Suppressions` — per-line ``# repro: allow(<rule>[, <rule>...])``
  pragmas. A pragma on its own line applies to the next code line, so
  multi-line statements can be suppressed too.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..errors import BadRequestError

__all__ = [
    "Config",
    "FileContext",
    "Finding",
    "Rule",
    "Suppressions",
    "all_rules",
    "register",
    "rule_ids",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Config:
    """Tunable scoping for the rules.

    Every entry is a tuple of :mod:`fnmatch` patterns matched against the
    analyzed file's POSIX-style path. The defaults encode this repo's
    layout; tests override them to point rules at fixture trees.
    """

    #: Files allowed to read the wall clock (D001). Empty by default: the
    #: whole tree runs on simulated time.
    wallclock_allow: tuple = ()
    #: Files allowed to touch global randomness (D002). ``sim/rng.py`` is
    #: the one legitimate consumer: it wraps ``random.Random`` behind
    #: :class:`repro.sim.rng.SeededStream`.
    rng_allow: tuple = ("*/sim/rng.py",)
    #: Where unordered-iteration (D003) is enforced: the deterministic
    #: replay core.
    ordered_scope: tuple = ("*/repro/sim/*", "*/repro/core/*", "*/repro/net/*")
    #: The RPC server modules whose opcode handlers must pass a rights
    #: check (C001) and whose dispatch tables are audited (C002).
    server_scope: tuple = (
        "*/core/server.py",
        "*/directory/server.py",
        "*/logsvc/server.py",
        "*/nfs/server.py",
    )
    #: Validator functions accepted by C001 in addition to anything that
    #: transitively calls ``require``. ``_resolve`` is the NFS server's
    #: stale-handle generation check — NFS v2 is deliberately capability-
    #: free (it is the paper's §4 comparison target), so its handle check
    #: is the closest analogue of a rights gate.
    extra_validators: tuple = ("_resolve",)
    #: Restrict the run to these rule ids (empty means: all registered).
    select: tuple = ()

    def path_matches(self, path: str, patterns: Iterable[str]) -> bool:
        return any(fnmatch.fnmatch(path, pat) for pat in patterns)


_PRAGMA = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")
_PRAGMA_ONLY_LINE = re.compile(r"^\s*#")


class Suppressions:
    """Per-line suppression pragmas parsed from one file's source.

    ``# repro: allow(D001)`` at the end of a line suppresses D001 findings
    reported on that line. A comment-only pragma line suppresses the
    following line instead, for statements too long to annotate inline.
    Several rules may be listed: ``# repro: allow(S001, D002)``.
    """

    def __init__(self, source_lines: Iterable[str]):
        self._by_line: dict[int, set] = {}
        for number, text in enumerate(source_lines, start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group(1).replace(",", " ").split()
                if part.strip()
            }
            if not rules:
                continue
            target = number
            if _PRAGMA_ONLY_LINE.match(text):
                target = number + 1
            self._by_line.setdefault(target, set()).update(rules)

    def is_suppressed(self, finding: Finding) -> bool:
        return finding.rule in self._by_line.get(finding.line, ())

    def filter(self, findings: Iterable[Finding]) -> list:
        return [f for f in findings if not self.is_suppressed(f)]


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str                 # POSIX-style path, as given to the analyzer
    module: str               # dotted module name ("repro.core.server")
    tree: ast.Module
    lines: list
    index: "object"           # ProjectIndex (untyped to avoid the import cycle)
    config: Config = field(default_factory=Config)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id`` (e.g. ``"D001"``), a one-line ``title``, a
    ``rationale`` tying the check to the design, and implement
    :meth:`check` yielding findings for one file.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def make(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return ctx.finding(self.id, node, message)


_REGISTRY: dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not rule_cls.id:
        raise BadRequestError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise BadRequestError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules(select: Optional[Iterable[str]] = None) -> list:
    """Instances of every registered rule, sorted by id.

    ``select`` limits the run to the given ids; an unknown id raises
    :class:`~repro.errors.BadRequestError` (a typo in ``--select`` should
    fail loudly, not silently check nothing).
    """
    chosen = set(select or ())
    unknown = chosen - set(_REGISTRY)
    if unknown:
        raise BadRequestError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        cls()
        for rule_id, cls in sorted(_REGISTRY.items())
        if not chosen or rule_id in chosen
    ]


def rule_ids() -> list:
    return sorted(_REGISTRY)
