"""Rule framework for the invariant linter.

The analyzer is a small, dependency-free static-analysis engine over the
project's own source. It exists because the reproduction's core promises
are *conventions* that nothing enforced: the sim kernel's "no wall-clock
time or global RNG is consulted anywhere" (:mod:`repro.sim.core`), the
capability discipline of the servers (every opcode handler must pass a
``require(...)`` gate before touching server state, paper §2.2), and the
process discipline of the simulator (a generator process that is never
``yield``-ed silently runs un-timed). Each of those conventions is now a
:class:`Rule` with machine-checked findings.

Pieces:

* :class:`Finding` — one violation: rule id, path, line, column, message.
* :class:`Rule` — base class; subclasses declare ``id``/``title``/
  ``rationale`` and implement :meth:`Rule.check` over a
  :class:`FileContext`.
* ``register``/``all_rules`` — the rule registry; the CLI and tests
  enumerate rules through it.
* :class:`Suppressions` — per-line ``# repro: allow(<rule>[, <rule>...])``
  pragmas. A pragma on its own line applies to the next code line, so
  multi-line statements can be suppressed too.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Set, Tuple)

from ..errors import BadRequestError

if TYPE_CHECKING:  # import cycle at runtime only (engine imports both)
    from .index import ProjectIndex

__all__ = [
    "Config",
    "FileContext",
    "Finding",
    "Rule",
    "Suppressions",
    "all_rules",
    "register",
    "rule_ids",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Config:
    """Tunable scoping for the rules.

    Every entry is a tuple of :mod:`fnmatch` patterns matched against the
    analyzed file's POSIX-style path. The defaults encode this repo's
    layout; tests override them to point rules at fixture trees.
    """

    #: Files allowed to read the wall clock (D001). Empty by default: the
    #: whole tree runs on simulated time.
    wallclock_allow: tuple = ()
    #: Files allowed to touch global randomness (D002). ``sim/rng.py`` is
    #: the one legitimate consumer: it wraps ``random.Random`` behind
    #: :class:`repro.sim.rng.SeededStream`.
    rng_allow: tuple = ("*/sim/rng.py",)
    #: Where unordered-iteration (D003) is enforced: the deterministic
    #: replay core.
    ordered_scope: tuple = ("*/repro/sim/*", "*/repro/core/*", "*/repro/net/*")
    #: The RPC server modules whose opcode handlers must pass a rights
    #: check (C001) and whose dispatch tables are audited (C002).
    server_scope: tuple = (
        "*/core/server.py",
        "*/directory/server.py",
        "*/logsvc/server.py",
        "*/nfs/server.py",
    )
    #: Validator functions accepted by C001 in addition to anything that
    #: transitively calls ``require``. ``_resolve`` is the NFS server's
    #: stale-handle generation check — NFS v2 is deliberately capability-
    #: free (it is the paper's §4 comparison target), so its handle check
    #: is the closest analogue of a rights gate.
    extra_validators: tuple = ("_resolve",)
    #: Restrict the run to these rule ids (empty means: all registered).
    select: tuple = ()
    #: Functions L004 exempts from the guarded-write discipline, as
    #: :mod:`fnmatch` patterns over ``module:qualname``. These run before
    #: (or instead of) concurrent service: construction, volume format,
    #: boot-time scan, and crash recovery all mutate server state while
    #: no worker pool exists to race with.
    unlocked_contexts: tuple = (
        "*:__init__",
        "*:*.__init__",
        "*:boot",
        "*:*.boot",
        "*:format",
        "*:*.format",
        "*.recovery:*",
    )
    #: Terminal method names whose *yielded call* parks the process on
    #: external input (``yield q.get()``, ``yield svr.getreq()``). L002
    #: seeds its blocking-function fixpoint with these: suspending on one
    #: while holding a write grant stalls every queued request on that
    #: inode for an unbounded time.
    blocking_primitives: tuple = ("get", "getreq", "recv")

    def path_matches(self, path: str, patterns: Iterable[str]) -> bool:
        return any(fnmatch.fnmatch(path, pat) for pat in patterns)

    def context_exempt(self, module: str, qualname: str) -> bool:
        tag = f"{module}:{qualname}"
        return any(fnmatch.fnmatch(tag, pat) for pat in self.unlocked_contexts)


_PRAGMA = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")
_PRAGMA_ONLY_LINE = re.compile(r"^\s*#")


class Suppressions:
    """Per-line suppression pragmas parsed from one file's source.

    ``# repro: allow(D001)`` at the end of a line suppresses D001 findings
    reported on that line. A comment-only pragma line suppresses the
    following line instead, for statements too long to annotate inline.
    Several rules may be listed: ``# repro: allow(S001, D002)``.

    Pragmas are found by tokenizing the source, so only real ``#``
    comments count — a pragma *mentioned* inside a docstring or string
    literal is prose, not a suppression (and is never reported stale).
    Each pragma entry records whether it suppressed anything;
    :meth:`unused` reports the stale ones for ``--strict-pragmas``.
    """

    def __init__(self, source_lines: Iterable[str]):
        lines = list(source_lines)
        self._by_line: Dict[int, Set[str]] = {}
        #: (effective line, rule) -> line the pragma comment sits on.
        self._declared: Dict[Tuple[int, str], int] = {}
        self._used: Set[Tuple[int, str]] = set()
        for comment_line, text in self._comments(lines):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group(1).replace(",", " ").split()
                if part.strip()
            }
            if not rules:
                continue
            target = comment_line
            if _PRAGMA_ONLY_LINE.match(lines[comment_line - 1]):
                target = comment_line + 1
            self._by_line.setdefault(target, set()).update(rules)
            for rule in rules:
                self._declared.setdefault((target, rule), comment_line)

    @staticmethod
    def _comments(lines: List[str]) -> Iterator[Tuple[int, str]]:
        """(lineno, text) of every real comment token in the source."""
        source = "".join(
            line if line.endswith("\n") else line + "\n" for line in lines
        )
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unterminated constructs etc.: fall back to the lexical scan
            # (over-matching beats dropping real suppressions).
            for number, text in enumerate(lines, start=1):
                if "#" in text:
                    yield number, text

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule in self._by_line.get(finding.line, ()):
            self._used.add((finding.line, finding.rule))
            return True
        return False

    def filter(self, findings: Iterable[Finding]) -> list:
        return [f for f in findings if not self.is_suppressed(f)]

    def unused(self, judged_rules: Iterable[str]) -> List[Tuple[int, str]]:
        """(pragma line, rule id) for every stale pragma entry.

        An entry is stale when it suppressed no finding during the run.
        Only rules in ``judged_rules`` (the ids that actually ran) are
        judged — except ids that are not registered rules at all, which
        can never suppress anything and are always reported.
        """
        judged = set(judged_rules)
        known = set(_REGISTRY)
        stale = []
        for (line, rule), comment_line in self._declared.items():
            if (line, rule) in self._used:
                continue
            if rule in judged or rule not in known:
                stale.append((comment_line, rule))
        return sorted(stale)


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str                 # POSIX-style path, as given to the analyzer
    module: str               # dotted module name ("repro.core.server")
    tree: ast.Module
    lines: list
    index: "ProjectIndex"
    config: Config = field(default_factory=Config)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id`` (e.g. ``"D001"``), a one-line ``title``, a
    ``rationale`` tying the check to the design, and implement
    :meth:`check` yielding findings for one file.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def make(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return ctx.finding(self.id, node, message)


_REGISTRY: dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not rule_cls.id:
        raise BadRequestError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise BadRequestError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules(select: Optional[Iterable[str]] = None) -> list:
    """Instances of every registered rule, sorted by id.

    ``select`` limits the run to the given ids; an unknown id raises
    :class:`~repro.errors.BadRequestError` (a typo in ``--select`` should
    fail loudly, not silently check nothing).
    """
    chosen = set(select or ())
    unknown = chosen - set(_REGISTRY)
    if unknown:
        raise BadRequestError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        cls()
        for rule_id, cls in sorted(_REGISTRY.items())
        if not chosen or rule_id in chosen
    ]


def rule_ids() -> list:
    return sorted(_REGISTRY)


@register
class StalePragmaRule(Rule):
    """P001 — stale suppression pragma (``--strict-pragmas``).

    The engine emits these itself after running the real rules (a pragma
    is stale only relative to a whole run), so :meth:`check` yields
    nothing; the class exists to give the findings a catalogue entry,
    a ``--select`` handle, and a suppression id of their own.
    """

    id = "P001"
    title = "suppression pragma no longer suppresses anything"
    rationale = (
        "A stale `# repro: allow(...)` is a latent hole: the code it "
        "excused has moved or been fixed, and the pragma now silently "
        "licenses the next regression on that line. PR 6's "
        "de-processification left several behind; --strict-pragmas keeps "
        "the set honest."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
