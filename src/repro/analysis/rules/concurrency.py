"""L0xx lock-discipline rules: the static half of the concurrency suite.

PR 5 gave the server FIFO-fair per-inode reader/writer locks
(:class:`repro.core.locks.FileLockTable`); these rules mechanically
enforce the conventions that make that locking correct, the way D/S/C
rules enforce determinism and capability discipline:

* **L001 lock-leak** — an acquired :class:`LockGrant` must reach
  ``release`` on *every* path out of the function: release it in a
  ``finally``, or hand the grant to another function/process that
  assumes ownership (the CREATE settle-watcher pattern). A release only
  on the happy path leaks the grant on the exception edge and wedges the
  inode's FIFO queue forever.
* **L002 yield-under-lock** — suspending on a caller-supplied event, a
  bare ``yield``, or a blocking mailbox primitive while holding a
  *write* grant parks every queued request on that inode for an
  unbounded time. Intentional blocking sections (the settle watcher
  drains its replica writes under the grant by design) carry
  ``# repro: allow(L002)``.
* **L003 lock-order violation** — the global nested-acquire graph must
  be acyclic; any cycle (including acquiring a second grant from the
  *same* table while holding one) is an AB-BA deadlock waiting for the
  right interleaving.
* **L004 unlocked-shared-access** — fields declared
  ``# repro: guarded_by(<lock>)`` may only be mutated by functions that
  hold that lock: they acquire it themselves, receive a grant from their
  caller, are boot/recovery contexts, or are reachable *only* from such
  functions. Violations are blamed on the root of the unlocked path
  (the entry point with no resolvable caller), where a fix or pragma
  belongs.

All four lean on the :class:`~repro.analysis.index.ProjectIndex` lock
facts: acquire/release sites, ``guarded_by`` declarations, typed
attribute resolution into the cache/free-list helpers, and the
transitive-acquire and blocking-function fixpoints.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..framework import Config, FileContext, Finding, Rule, register
from ..index import FunctionInfo, ProjectIndex, call_ref, dotted_name

__all__ = [
    "LockLeak",
    "LockOrderViolation",
    "UnlockedSharedAccess",
    "YieldUnderLock",
]

_ACQUIRE_METHODS = {"acquire_read": "read", "acquire_write": "write"}


def _function_nodes(tree: ast.Module) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """Every function/method definition with its enclosing class name."""

    def descend(node: ast.AST, cls: Optional[str]) -> Iterator[Tuple[ast.AST, Optional[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from descend(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from descend(child, cls)
            else:
                yield from descend(child, cls)

    yield from descend(tree, None)


def _own_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """``ast.walk`` over one statement, not descending into nested defs."""
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _acquire_in(value: ast.expr) -> Optional[Tuple[str, str]]:
    """(table dotted, mode) when the expression is an acquire call."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr in _ACQUIRE_METHODS
    ):
        table = dotted_name(value.func.value) or value.func.attr
        return table, _ACQUIRE_METHODS[value.func.attr]
    return None


def _release_var(node: ast.AST) -> Optional[str]:
    """The grant variable a ``<expr>.release(<var>)`` call releases."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "release"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Name)
    ):
        return node.args[0].id
    return None


def _grant_param_names(fn_node: ast.AST) -> Set[str]:
    """Parameters that carry a lock grant into the function: named
    ``*grant*`` or annotated with a ``LockGrant`` type."""
    names: Set[str] = set()
    args = fn_node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if "grant" in arg.arg:
            names.add(arg.arg)
        elif arg.annotation is not None and "LockGrant" in ast.unparse(
            arg.annotation
        ):
            names.add(arg.arg)
    return names


# --------------------------------------------------------------------- L001


@register
class LockLeak(Rule):
    id = "L001"
    title = "lock-leak"
    rationale = (
        "An acquired LockGrant must be released on every path out of the "
        "function — including exception edges and early returns — or "
        "handed to a function/process that assumes ownership. A leaked "
        "grant wedges the inode's FIFO queue forever: every later "
        "request on that file waits behind a release that never comes."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn_node, _cls in _function_nodes(ctx.tree):
            yield from self._check_function(ctx, fn_node)

    def _check_function(self, ctx: FileContext, fn_node: ast.AST) -> Iterator[Finding]:
        acquires: List[Tuple[Optional[str], str, str, ast.stmt]] = []
        releases: Dict[str, List[bool]] = {}     # var -> [in_finally, ...]
        handoffs: Set[str] = set()
        finally_stack: List[ast.stmt] = []

        def scan_leaf(stmt: ast.stmt, in_finally: bool) -> None:
            for node in _own_nodes(stmt):
                released = _release_var(node)
                if released is not None:
                    releases.setdefault(released, []).append(in_finally)
                    continue
                if isinstance(node, ast.Call) and _acquire_in(node) is None:
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        if isinstance(arg, ast.Name):
                            handoffs.add(arg.id)
                if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Name
                ):
                    handoffs.add(node.value.id)
            if isinstance(stmt, ast.Assign):
                found = _acquire_in(stmt.value)
                if found is not None:
                    target = (
                        stmt.targets[0].id
                        if len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        else None
                    )
                    acquires.append((target, found[0], found[1], stmt))
            elif isinstance(stmt, ast.Expr):
                found = _acquire_in(stmt.value)
                if found is not None:
                    acquires.append((None, found[0], found[1], stmt))

        def walk(body: List[ast.stmt], in_finally: bool) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Try):
                    walk(stmt.body, in_finally)
                    for handler in stmt.handlers:
                        walk(handler.body, in_finally)
                    walk(stmt.orelse, in_finally)
                    walk(stmt.finalbody, True)
                elif isinstance(stmt, (ast.If,)):
                    scan_header(stmt.test, in_finally)
                    walk(stmt.body, in_finally)
                    walk(stmt.orelse, in_finally)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    scan_header(stmt.iter, in_finally)
                    walk(stmt.body, in_finally)
                    walk(stmt.orelse, in_finally)
                elif isinstance(stmt, ast.While):
                    scan_header(stmt.test, in_finally)
                    walk(stmt.body, in_finally)
                    walk(stmt.orelse, in_finally)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        scan_header(item.context_expr, in_finally)
                    walk(stmt.body, in_finally)
                else:
                    scan_leaf(stmt, in_finally)

        def scan_header(expr: ast.expr, in_finally: bool) -> None:
            fake = ast.Expr(value=expr)
            for node in _own_nodes(fake):
                released = _release_var(node)
                if released is not None:
                    releases.setdefault(released, []).append(in_finally)

        walk(fn_node.body, False)
        for var, table, mode, stmt in acquires:
            if var is None:
                yield self.make(
                    ctx, stmt,
                    f"{mode} grant from `{table}` is discarded at the "
                    f"acquire site: nothing can ever release it",
                )
                continue
            if var in handoffs:
                continue
            flags = releases.get(var, [])
            if any(flags):
                continue
            if flags:
                yield self.make(
                    ctx, stmt,
                    f"grant `{var}` ({mode} on `{table}`) is released only "
                    f"on the happy path: an exception or early return "
                    f"between acquire and release leaks it — release in a "
                    f"`finally` (or hand the grant off)",
                )
            else:
                yield self.make(
                    ctx, stmt,
                    f"grant `{var}` ({mode} on `{table}`) is never "
                    f"released and never handed off: every later request "
                    f"on that key waits forever",
                )


# --------------------------------------------------------------------- L002


@register
class YieldUnderLock(Rule):
    id = "L002"
    title = "yield-under-lock"
    rationale = (
        "Suspending on a caller-supplied event, a bare yield, or a "
        "blocking mailbox primitive while holding a write grant parks "
        "every queued request on that inode for as long as the outside "
        "world pleases. Timed work (timeouts, disk I/O) under the grant "
        "is fine; unbounded waits need an explicit "
        "`# repro: allow(L002)` declaring the blocking section "
        "intentional."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        blocking = ctx.index.blocking_functions(ctx.config.blocking_primitives)
        for fn_node, cls in _function_nodes(ctx.tree):
            caller = ctx.index.function(ctx.module, cls, fn_node.name)
            yield from self._check_function(ctx, fn_node, caller, blocking)

    def _check_function(
        self,
        ctx: FileContext,
        fn_node: ast.AST,
        caller: Optional[FunctionInfo],
        blocking: Set[tuple],
    ) -> Iterator[Finding]:
        grant_params = _grant_param_names(fn_node)
        held: Dict[str, str] = {name: "write" for name in grant_params}
        tainted: Set[str] = {
            arg.arg
            for arg in list(fn_node.args.posonlyargs)
            + list(fn_node.args.args)
            + list(fn_node.args.kwonlyargs)
            if arg.arg != "self"
        }
        findings: List[Finding] = []

        def write_held() -> bool:
            return any(mode == "write" for mode in held.values())

        def classify(node: ast.AST) -> None:
            """Flag the yield if it can suspend unboundedly."""
            is_from = isinstance(node, ast.YieldFrom)
            value = node.value
            what = "yield from" if is_from else "yield"
            locked = ", ".join(
                sorted(var for var, mode in held.items() if mode == "write")
            )
            if value is None:
                findings.append(self.make(
                    ctx, node,
                    f"bare `yield` while holding write grant(s) {locked}: "
                    f"the process parks until an external send, with the "
                    f"inode locked the whole time",
                ))
                return
            if isinstance(value, ast.Name):
                if value.id in held:
                    return  # yielding your own grant is the admission wait
                if value.id in tainted:
                    findings.append(self.make(
                        ctx, node,
                        f"`{what} {value.id}` suspends on a caller-supplied "
                        f"event while holding write grant(s) {locked}: the "
                        f"lock is held for as long as the caller pleases",
                    ))
                return
            if isinstance(value, ast.Call):
                ref = call_ref(value)
                if ref is None:
                    return
                if ref.name in ctx.config.blocking_primitives:
                    findings.append(self.make(
                        ctx, node,
                        f"`{what} {ref.dotted}(...)` blocks on a mailbox "
                        f"primitive while holding write grant(s) {locked}",
                    ))
                    return
                if caller is not None:
                    callee = ctx.index.resolve_call_typed(caller, ref)
                    if callee is not None and callee.key in blocking:
                        findings.append(self.make(
                            ctx, node,
                            f"`{what} {ref.dotted}(...)` reaches a blocking "
                            f"mailbox primitive (via {callee.qualname}) "
                            f"while holding write grant(s) {locked}",
                        ))

        def scan_leaf(stmt: ast.stmt) -> None:
            yields = [
                node for node in _own_nodes(stmt)
                if isinstance(node, (ast.Yield, ast.YieldFrom))
            ]
            for node in sorted(
                yields, key=lambda n: (n.lineno, n.col_offset)
            ):
                if write_held():
                    classify(node)
            if isinstance(stmt, ast.Assign):
                found = _acquire_in(stmt.value)
                if (
                    found is not None
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    held[stmt.targets[0].id] = found[1]
            for node in _own_nodes(stmt):
                released = _release_var(node)
                if released is not None:
                    held.pop(released, None)

        def walk(body: List[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    for handler in stmt.handlers:
                        walk(handler.body)
                    walk(stmt.orelse)
                    walk(stmt.finalbody)
                elif isinstance(stmt, ast.If):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if isinstance(stmt.target, ast.Name) and self._iter_tainted(
                        stmt.iter, tainted
                    ):
                        tainted.add(stmt.target.id)
                    scan_leaf(ast.Expr(value=stmt.iter))
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, ast.While):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    walk(stmt.body)
                else:
                    scan_leaf(stmt)

        walk(fn_node.body)
        yield from findings

    @staticmethod
    def _iter_tainted(expr: ast.expr, tainted: Set[str]) -> bool:
        node = expr
        if isinstance(node, ast.Call) and node.args:
            # list(writes), iter(writes), enumerate(writes), ...
            node = node.args[0]
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id in tainted


# --------------------------------------------------------------------- L003


@register
class LockOrderViolation(Rule):
    id = "L003"
    title = "lock-order violation"
    rationale = (
        "Nested acquires define a global lock-order graph; any cycle — "
        "two functions nesting two tables in opposite orders, or a "
        "second grant taken from the same table while one is held — is "
        "an AB-BA deadlock waiting for the right interleaving of "
        "workers. The graph must stay acyclic."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        edges = ctx.index.lock_order_edges()
        if not edges:
            return
        graph: Dict[str, Set[str]] = {}
        for held, acquired, _module, _lineno, _detail in edges:
            graph.setdefault(held, set()).add(acquired)

        def reaches(start: str, goal: str) -> bool:
            seen: Set[str] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(sorted(graph.get(node, ())))
            return False

        for held, acquired, module, lineno, detail in edges:
            if module != ctx.module:
                continue
            if not reaches(acquired, held):
                continue
            if held == acquired:
                cycle = f"{held} -> {held}"
            else:
                cycle = f"{held} -> {acquired} -> ... -> {held}"
            yield Finding(
                rule=self.id, path=ctx.path, line=lineno, col=1,
                message=(
                    f"lock-order cycle [{cycle}]: {detail}; a concurrent "
                    f"request acquiring in the opposite order deadlocks "
                    f"both"
                ),
            )


# --------------------------------------------------------------------- L004


@register
class UnlockedSharedAccess(Rule):
    id = "L004"
    title = "unlocked-shared-access"
    rationale = (
        "A field declared `# repro: guarded_by(<lock>)` is shared "
        "mutable server state; writing it without holding the lock is "
        "exactly the torn-state race PR 5 fixed by hand. A writer must "
        "acquire the lock, receive a grant from its caller, be a "
        "boot/recovery context, or be reachable only from such "
        "functions; the violation is reported at the root of the "
        "unlocked path, where the fix belongs."
    )

    _cached: Optional[Tuple[ProjectIndex, Dict[str, List[Tuple[int, str]]]]] = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        per_module = self._analysis(ctx)
        for line, message in per_module.get(ctx.module, []):
            yield Finding(rule=self.id, path=ctx.path, line=line, col=1,
                          message=message)

    def _analysis(self, ctx: FileContext) -> Dict[str, List[Tuple[int, str]]]:
        cached = self._cached
        if cached is not None and cached[0] is ctx.index:
            return cached[1]
        index = ctx.index
        config = ctx.config

        guarded: Dict[Tuple[str, str, str], str] = {}
        for module, gf in index.all_guarded_fields():
            guarded[(module, gf.cls, gf.attr)] = gf.lock

        # Direct guarded writes per function:
        # fn key -> [(lock, lineno, "Cls.attr"), ...]
        direct: Dict[tuple, List[Tuple[str, int, str]]] = {}
        functions: Dict[tuple, FunctionInfo] = {}
        if guarded:
            for fn in index.all_functions():
                functions[fn.key] = fn
                for base, attr, lineno in fn.attr_writes:
                    located = index.resolve_base_class(fn, base)
                    if located is None:
                        continue
                    lock = guarded.get((located[0], located[1], attr))
                    if lock is not None:
                        direct.setdefault(fn.key, []).append(
                            (lock, lineno, f"{located[1]}.{attr}")
                        )

        per_module: Dict[str, List[Tuple[int, str]]] = {}
        if direct:
            callers = index.callers()
            acquirers = index.direct_acquirers()
            locks = {lock for sites in direct.values() for lock, _l, _f in sites}
            for lock in sorted(locks):
                self._check_lock(
                    lock, direct, functions, callers, acquirers, config,
                    index, per_module,
                )
        for entries in per_module.values():
            entries.sort()
        self._cached = (ctx.index, per_module)
        return per_module

    def _check_lock(
        self,
        lock: str,
        direct: Dict[tuple, List[Tuple[str, int, str]]],
        functions: Dict[tuple, FunctionInfo],
        callers: Dict[tuple, Set[tuple]],
        acquirers: Dict[tuple, Set[str]],
        config: Config,
        index: ProjectIndex,
        per_module: Dict[str, List[Tuple[int, str]]],
    ) -> None:
        # A function locally satisfies the guard when it acquires the
        # lock itself, receives a grant parameter, or is an exempt
        # (boot-time) context.
        ok: Set[tuple] = set()
        for key, fn in functions.items():
            if lock in acquirers.get(key, ()):
                ok.add(key)
            elif any(
                "grant" in name
                or (annotation is not None and "LockGrant" in annotation)
                for name, annotation in fn.params
            ):
                ok.add(key)
            elif config.context_exempt(fn.module, fn.qualname):
                ok.add(key)
        # ...or when every resolvable caller satisfies it (the lock is
        # held around the call).
        changed = True
        while changed:
            changed = False
            for key in functions:
                if key in ok:
                    continue
                above = callers.get(key, set())
                if above and all(parent in ok for parent in above):
                    ok.add(key)
                    changed = True

        # Functions on an unlocked path to a guarded write of this lock,
        # with a representative target for the message.
        writers: Dict[tuple, str] = {}
        for key, sites in direct.items():
            if key in ok:
                continue
            for site_lock, _lineno, field_name in sites:
                if site_lock == lock:
                    writers.setdefault(key, field_name)
        changed = True
        while changed:
            changed = False
            for key, fn in functions.items():
                if key in ok or key in writers:
                    continue
                for ref in fn.calls:
                    callee = index.resolve_call_typed(fn, ref)
                    if callee is not None and callee.key in writers:
                        writers[key] = writers[callee.key]
                        changed = True
                        break

        roots = {
            key for key in writers
            if not callers.get(key)
        } or set(writers)
        for key in roots:
            fn = functions[key]
            entries = per_module.setdefault(fn.module, [])
            for site_lock, lineno, field_name in direct.get(key, ()):
                if site_lock != lock:
                    continue
                entries.append((
                    lineno,
                    f"write to {field_name} (guarded_by {lock}) in "
                    f"{fn.qualname}, which holds no {lock} grant on any "
                    f"path reaching it",
                ))
            for ref in fn.calls:
                callee = index.resolve_call_typed(fn, ref)
                if callee is None or callee.key not in writers:
                    continue
                if callee.key in roots and callee.key in direct:
                    continue  # reported at its own write sites
                entries.append((
                    ref.lineno,
                    f"call into {callee.qualname} reaches a write to "
                    f"{writers[callee.key]} (guarded_by {lock}) on a path "
                    f"that never acquires {lock}",
                ))
