"""The shipped invariant rules.

Importing this package registers every rule with the framework registry:

* D001 ``no-wallclock`` — simulated time only; never the host clock.
* D002 ``no-global-rng`` — randomness flows through ``SeededStream``.
* D003 ``unordered-iteration`` — no order-dependent iteration over sets
  in the deterministic replay core.
* S001 ``unyielded-process`` — generator processes must be driven.
* C001 ``missing-rights-check`` — opcode handlers must reach a rights
  check.
* C002 ``dead-or-missing-opcode`` — dispatch tables and dispatchers must
  agree.
* A001 ``assert-as-validation`` — library validation must survive
  ``python -O``.
"""

from . import asserts, caps, determinism, simproc  # noqa: F401  (registration)
