"""The shipped invariant rules.

Importing this package registers every rule with the framework registry:

* D001 ``no-wallclock`` — simulated time only; never the host clock.
* D002 ``no-global-rng`` — randomness flows through ``SeededStream``.
* D003 ``unordered-iteration`` — no order-dependent iteration over sets
  in the deterministic replay core.
* S001 ``unyielded-process`` — generator processes must be driven.
* C001 ``missing-rights-check`` — opcode handlers must reach a rights
  check.
* C002 ``dead-or-missing-opcode`` — dispatch tables and dispatchers must
  agree.
* A001 ``assert-as-validation`` — library validation must survive
  ``python -O``.
* L001 ``lock-leak`` — acquired grants reach release on every path.
* L002 ``yield-under-lock`` — no unbounded suspension under a write
  grant.
* L003 ``lock-order violation`` — the nested-acquire graph stays
  acyclic.
* L004 ``unlocked-shared-access`` — ``guarded_by`` fields are only
  written with the lock held.

(P001 ``stale pragma`` is registered by the framework itself and driven
by the engine's ``--strict-pragmas`` pass.)
"""

from . import asserts, caps, concurrency, determinism, simproc  # noqa: F401  (registration)
