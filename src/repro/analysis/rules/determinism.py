"""Determinism rules: D001 no-wallclock, D002 no-global-rng, D003
unordered-iteration.

The simulation kernel's contract (:mod:`repro.sim.core`) is that "a given
program always replays identically. No wall-clock time or global RNG is
consulted anywhere." These rules make that contract structural: any code
path that reads the host clock, draws from process-global randomness, or
iterates a hash-ordered container in the replay core would break
bit-identical replay, so it is a finding unless explicitly allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..framework import FileContext, Finding, Rule, register
from ..index import dotted_name

__all__ = ["NoWallclock", "NoGlobalRng", "UnorderedIteration"]


#: Host-clock reads. Simulated components must use ``env.now``.
_WALLCLOCK_DOTTED = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime", "time.ctime", "time.strftime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_WALLCLOCK_IMPORTS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns",
             "localtime", "gmtime", "ctime", "strftime"},
}

#: Global randomness sources. All randomness must flow through
#: :class:`repro.sim.rng.SeededStream`.
_RNG_MODULES = frozenset({"random", "secrets"})
_RNG_DOTTED = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})
_RNG_IMPORTS = {
    "os": {"urandom"},
    "uuid": {"uuid1", "uuid4"},
}

#: Builtins whose result does not depend on argument order, so feeding
#: them a set directly is deterministic.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})


@register
class NoWallclock(Rule):
    id = "D001"
    title = "no-wallclock"
    rationale = (
        "The sim kernel promises replay determinism; reading the host "
        "clock (time.time, datetime.now, ...) makes behaviour depend on "
        "the machine running the experiment. Use env.now."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.path_matches(ctx.path, ctx.config.wallclock_allow):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted in _WALLCLOCK_DOTTED:
                    yield self.make(
                        ctx, node,
                        f"wall-clock read `{dotted}`: simulated components "
                        f"must use env.now",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                banned = _WALLCLOCK_IMPORTS.get(node.module or "", ())
                for alias in node.names:
                    if alias.name in banned:
                        yield self.make(
                            ctx, node,
                            f"wall-clock import `from {node.module} import "
                            f"{alias.name}`: simulated components must use env.now",
                        )


@register
class NoGlobalRng(Rule):
    id = "D002"
    title = "no-global-rng"
    rationale = (
        "Global RNG (random.*, os.urandom, uuid.uuid4) is seeded per "
        "process, so replays diverge and components perturb each other's "
        "streams. Draw from repro.sim.rng.SeededStream instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.path_matches(ctx.path, ctx.config.rng_allow):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                root = dotted.split(".", 1)[0]
                if dotted in _RNG_DOTTED or root in _RNG_MODULES:
                    yield self.make(
                        ctx, node,
                        f"global randomness `{dotted}`: draw from a "
                        f"repro.sim.rng.SeededStream",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                banned = _RNG_IMPORTS.get(module)
                for alias in node.names:
                    if module in _RNG_MODULES or (
                        banned is not None and alias.name in banned
                    ):
                        yield self.make(
                            ctx, node,
                            f"global randomness import `from {module} import "
                            f"{alias.name}`: draw from a repro.sim.rng.SeededStream",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _RNG_MODULES:
                        yield self.make(
                            ctx, node,
                            f"import of global RNG module `{alias.name}`: "
                            f"draw from a repro.sim.rng.SeededStream",
                        )


def _annotation_is_set(annotation: Optional[str]) -> tuple:
    """(is_set, element annotation or None) for an annotation string."""
    if not annotation:
        return False, None
    text = annotation.strip().strip("'\"")
    for prefix in ("set", "frozenset", "Set", "FrozenSet",
                   "typing.Set", "typing.FrozenSet"):
        if text == prefix:
            return True, None
        if text.startswith(prefix + "["):
            inner = text[len(prefix) + 1: -1].strip()
            return True, inner or None
    return False, None


class _SetTypes:
    """Poor-man's type environment: which names/attributes hold sets.

    Sources, in order: parameter annotations, function-local
    ``x: set[...]`` annotations and ``x = set()`` / ``x = {literal}`` /
    ``x = set comprehension`` assignments, and ``self.attr: set[...]``
    annotations collected by the project index.
    """

    def __init__(self, ctx: FileContext, function: Optional[ast.AST],
                 cls_name: Optional[str]):
        self.locals: dict = {}
        if function is not None:
            args = function.args
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                if arg.annotation is not None:
                    self.locals[arg.arg] = ast.unparse(arg.annotation)
            for stmt in ast.walk(function):
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    self.locals[stmt.target.id] = ast.unparse(stmt.annotation)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and _is_set_expr(
                            stmt.value
                        ):
                            self.locals.setdefault(target.id, "set")
        self.attrs: dict = {}
        module_info = ctx.index.modules.get(ctx.module)
        if module_info is not None and cls_name is not None:
            self.attrs = module_info.class_attr_annotations.get(cls_name, {})

    def annotation_for(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.locals.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self.attrs.get(node.attr)
        return None


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-evident set expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class UnorderedIteration(Rule):
    id = "D003"
    title = "unordered-iteration"
    rationale = (
        "Set iteration order is a function of element hashes and "
        "insertion history, not program meaning: renumbering an inode or "
        "reordering two inserts silently reorders an iteration in the "
        "replay core (sim/core/net) and with it every downstream event. "
        "Iterate sorted(...) instead. Dicts are exempt (Python preserves "
        "insertion order), as are sets annotated set[str] (every str-set "
        "in this tree is sorted at its API boundary)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.path_matches(ctx.path, ctx.config.ordered_scope):
            return
        parents: dict = {}
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        enclosing: dict = {}  # node -> (function node | None, class name | None)
        self._map_scopes(ctx.tree, None, None, enclosing)

        for node in ast.walk(ctx.tree):
            iters: list = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if self._order_insensitive_use(node, parents):
                    continue
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
            ):
                iters.append(node.args[0])
            else:
                continue
            fn_node, cls_name = enclosing.get(node, (None, None))
            env = _SetTypes(ctx, fn_node, cls_name)
            for iterable in iters:
                hazard, detail = self._set_hazard(iterable, env)
                if hazard:
                    yield self.make(
                        ctx, iterable,
                        f"order-dependent iteration over a set ({detail}); "
                        f"iterate sorted(...) for deterministic replay",
                    )

    @staticmethod
    def _order_insensitive_use(node: ast.AST, parents: dict) -> bool:
        parent = parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE
            and len(parent.args) == 1
            and parent.args[0] is node
        )

    def _map_scopes(self, node: ast.AST, fn: Optional[ast.AST],
                    cls: Optional[str], out: dict) -> None:
        for child in ast.iter_child_nodes(node):
            child_fn, child_cls = fn, cls
            if isinstance(node, ast.ClassDef):
                child_cls = node.name
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_fn = node
            out[child] = (child_fn, child_cls)
            self._map_scopes(child, child_fn, child_cls, out)

    @staticmethod
    def _set_hazard(iterable: ast.expr, env: _SetTypes) -> tuple:
        if _is_set_expr(iterable):
            return True, "set expression"
        annotation = env.annotation_for(iterable)
        if annotation is not None:
            is_set, element = _annotation_is_set(annotation)
            if is_set and element != "str":
                return True, f"annotated `{annotation}`"
        return False, None
