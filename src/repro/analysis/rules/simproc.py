"""S001 unyielded-process: generator processes must be driven.

Every timed subroutine in this codebase is a Python generator resumed by
the simulation kernel. There are exactly two correct ways to run one:

* ``yield env.process(gen())`` / ``yield from gen()`` — composed into the
  caller's timeline; or
* ``env.process(gen())`` assigned/returned so someone awaits the
  :class:`~repro.sim.core.Process` event.

Two silent failure modes remain, and this rule flags both when they
appear as a bare expression statement:

* ``self.sub_operation(...)`` where the target is a generator — the
  generator object is created and dropped; the operation *never runs*;
* ``env.process(...)`` — the process runs, but as an unobserved fork the
  caller does not wait for, so its simulated time never reaches the
  caller (and its failures surface from nowhere). Intentional background
  daemons (serve loops, churn) must carry an explicit
  ``# repro: allow(S001)`` pragma explaining themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..framework import FileContext, Finding, Rule, register
from ..index import FunctionInfo, call_ref, dotted_name

__all__ = ["UnyieldedProcess"]


def _is_env_process(call: ast.Call) -> bool:
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    return dotted == "env.process" or dotted.endswith(".env.process")


def _class_scopes(tree: ast.Module) -> dict:
    """Map every node to the name of its innermost enclosing class."""
    scopes: dict = {}

    def walk(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            child_cls = node.name if isinstance(node, ast.ClassDef) else cls
            scopes[child] = child_cls
            walk(child, child_cls)

    walk(tree, None)
    return scopes


@register
class UnyieldedProcess(Rule):
    id = "S001"
    title = "unyielded-process"
    rationale = (
        "A generator process called as a bare statement never executes; "
        "a bare env.process(...) forks a process nobody awaits, so its "
        "simulated time and failures detach from the caller. Drive "
        "processes with `yield env.process(...)` or `yield from ...`."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes = _class_scopes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            if _is_env_process(call):
                yield self.make(
                    ctx, node,
                    "un-awaited env.process(...): the forked process's "
                    "timing and failures detach from the caller; use "
                    "`yield env.process(...)` (or pragma an intentional "
                    "daemon)",
                )
                continue
            ref = call_ref(call)
            if ref is None or ref.kind == "attr":
                continue
            caller = FunctionInfo(module=ctx.module, cls=scopes.get(node),
                                  name="<stmt>", lineno=node.lineno,
                                  is_generator=False)
            target = ctx.index.resolve_call(caller, ref)
            if target is None:
                continue
            # Judge by what the call ultimately constructs, not by the
            # callee's own body: a plain wrapper that `return`s a
            # generator-returning call (PR 6's de-processified helper
            # chains) drops the process just as surely as calling the
            # generator itself.
            if target.key not in ctx.index.process_constructors():
                continue
            if target.is_generator:
                yield self.make(
                    ctx, node,
                    f"generator process `{ref.dotted}(...)` is created but "
                    f"never runs; drive it with `yield from "
                    f"{ref.dotted}(...)` or `yield env.process(...)`",
                )
            else:
                yield self.make(
                    ctx, node,
                    f"`{ref.dotted}(...)` returns a generator process "
                    f"(through its delegation chain) that is created but "
                    f"never runs; drive it with `yield from "
                    f"{ref.dotted}(...)` or `yield env.process(...)`",
                )
