"""A001 assert-as-validation: library errors must survive ``python -O``.

``assert`` statements are compiled away under ``python -O``, and
``AssertionError`` carries no wire-level status code, so neither belongs
in library code paths that validate inputs or guard invariants: the RPC
layer cannot marshal them (:mod:`repro.errors`), and an optimized
deployment silently drops the check. Raise a :class:`repro.errors.ReproError`
subclass with a message instead (``BadRequestError`` for inputs,
``ConsistencyError`` for violated internal invariants). Tests are not
scanned — pytest asserts are the idiom there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, Finding, Rule, register

__all__ = ["AssertAsValidation"]


def _raises_assertion_error(node: ast.Raise) -> bool:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "AssertionError"


@register
class AssertAsValidation(Rule):
    id = "A001"
    title = "assert-as-validation"
    rationale = (
        "Bare asserts vanish under python -O and AssertionError has no "
        "wire status, so RPC clients cannot reconstruct the failure. "
        "Raise a ReproError subclass (BadRequestError, ConsistencyError, "
        "...) with a message."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.make(
                    ctx, node,
                    "bare assert is stripped under python -O; raise a "
                    "ReproError subclass (ConsistencyError for internal "
                    "invariants, BadRequestError for inputs)",
                )
            elif isinstance(node, ast.Raise) and _raises_assertion_error(node):
                yield self.make(
                    ctx, node,
                    "AssertionError has no wire-level status code; raise "
                    "a ReproError subclass instead",
                )
