"""Capability-discipline rules: C001 missing-rights-check and C002
dead-or-missing-opcode.

Paper §2.2: every Bullet operation starts by verifying the presented
capability's check field and rights mask (``require(...)`` in
:mod:`repro.capability.rights`). BuffetFS (arXiv 2110.13551) makes the
same argument structurally: a permission check that is only a convention
will eventually be skipped by a refactor. C001 therefore demands that
every RPC opcode handler taking a capability (or NFS file handle) reach
a rights check on some path; C002 cross-checks each ``*OPCODES`` table
against the ``_dispatch`` body that consumes it, so an opcode cannot be
declared without a handler nor dispatched without a declaration.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..framework import FileContext, Finding, Rule, register
from ..index import FunctionInfo, ModuleInfo

__all__ = ["MissingRightsCheck", "DeadOrMissingOpcode"]

#: Parameter names that mark a handler as operating on a protected
#: object: Amoeba capabilities and NFS file handles.
_CAP_PARAM_NAMES = ("cap", "fh")
_CAP_ANNOTATIONS = ("Capability", "FileHandle")


def _takes_protected_object(fn: FunctionInfo) -> bool:
    for name, annotation in fn.params:
        if name == "self":
            continue
        if name in _CAP_PARAM_NAMES or any(
            name.endswith("_" + suffix) for suffix in _CAP_PARAM_NAMES
        ):
            return True
        if annotation and any(tag in annotation for tag in _CAP_ANNOTATIONS):
            return True
    return False


@register
class MissingRightsCheck(Rule):
    id = "C001"
    title = "missing-rights-check"
    rationale = (
        "Paper §2.2: an opcode handler must verify the capability "
        "(require(...)) before touching the inode/record table. A "
        "handler reachable from _dispatch that takes a capability or "
        "file handle but never reaches a rights check is an open door."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.path_matches(ctx.path, ctx.config.server_scope):
            return
        info = ctx.index.modules.get(ctx.module)
        if info is None:
            return
        checkers = ctx.index.rights_checkers(ctx.config.extra_validators)
        for (cls, name), dispatch in sorted(info.functions.items(),
                                            key=lambda kv: kv[1].lineno):
            if name != "_dispatch" or cls is None:
                continue
            handler_names = sorted({
                ref.name for ref in dispatch.calls if ref.kind == "self"
            })
            for handler_name in handler_names:
                handler = info.functions.get((cls, handler_name))
                if handler is None or handler.name == "_dispatch":
                    continue
                if not _takes_protected_object(handler):
                    continue
                if handler.key in checkers:
                    continue
                yield Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=handler.lineno,
                    col=1,
                    message=(
                        f"opcode handler `{handler.qualname}` takes a "
                        f"capability/handle but never reaches a "
                        f"require(...)/rights check on any call path"
                    ),
                )


@register
class DeadOrMissingOpcode(Rule):
    id = "C002"
    title = "dead-or-missing-opcode"
    rationale = (
        "Every opcode declared in an *OPCODES table must be consumed by "
        "the module's dispatch code, and every dispatched opcode must "
        "exist in its table — otherwise the protocol silently grows "
        "unreachable operations or KeyError landmines."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        info = ctx.index.modules.get(ctx.module)
        if info is None:
            return
        # (a) Tables defined here: every key must be referenced somewhere
        # in this module (the dispatch wiring lives beside the table).
        for table_name, entries in sorted(info.opcode_tables.items()):
            referenced = {
                ref.key for ref in info.opcode_refs if ref.table == table_name
            }
            for key, lineno in sorted(entries.items()):
                if key not in referenced:
                    yield Finding(
                        rule=self.id, path=ctx.path, line=lineno, col=1,
                        message=(
                            f"opcode {key!r} is declared in {table_name} "
                            f"but never dispatched in {ctx.module} "
                            f"(dead or missing handler)"
                        ),
                    )
        # (b) References here: the key must exist in the table, whether
        # the table is local or imported from another indexed module.
        for ref in info.opcode_refs:
            entries = self._resolve_table(ctx, info, ref.table)
            if entries is None:
                continue
            if ref.key not in entries:
                yield Finding(
                    rule=self.id, path=ctx.path, line=ref.lineno, col=1,
                    message=(
                        f"dispatch references unknown opcode {ref.key!r}: "
                        f"not a key of {ref.table}"
                    ),
                )

    def _resolve_table(self, ctx: FileContext, info: ModuleInfo,
                       table_name: str) -> Optional[dict]:
        if table_name in info.opcode_tables:
            return info.opcode_tables[table_name]
        imported = info.imports.get(table_name)
        if imported is None:
            return None
        source_module, original = imported
        source = ctx.index.modules.get(source_module)
        if source is None:
            return None
        return source.opcode_tables.get(original)
