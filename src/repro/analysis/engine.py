"""The analysis driver: collect files, index, run rules, filter pragmas.

This is the programmatic face of the linter; the CLI in
:mod:`repro.analysis.cli` and the test suite both call
:func:`analyze_paths`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import BadRequestError
from .framework import Config, FileContext, Finding, Suppressions, all_rules
from .index import ProjectIndex

__all__ = ["AnalysisResult", "ParseError", "analyze_paths", "collect_files",
           "module_name_for"]


@dataclass(frozen=True)
class ParseError:
    """A file the analyzer could not parse (reported, exit code 2)."""

    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:1: E999 {self.message}"


@dataclass
class AnalysisResult:
    findings: list = field(default_factory=list)
    parse_errors: list = field(default_factory=list)
    files_checked: int = 0
    rules_run: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def exit_code(self) -> int:
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0


def collect_files(paths: Iterable[str]) -> list:
    """Expand files/directories into a sorted list of ``.py`` paths."""
    collected = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            raise BadRequestError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(os.path.normpath(p) for p in collected))


def module_name_for(path: str) -> str:
    """A dotted module name for ``path``.

    Rooted at the last path component named ``repro`` (the package root)
    when present, so rules and the index see the same names the code
    imports; otherwise the whole path is dotted, keeping module names
    unique per file (two unrelated ``core/server.py`` fixtures must not
    merge in the project index).
    """
    parts = [p for p in path.replace(os.sep, "/").split("/")
             if p not in ("", ".", "..")]
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        anchor = 0
    dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
    return ".".join(dotted) or stem


def analyze_paths(paths: Iterable[str],
                  config: Optional[Config] = None,
                  strict_pragmas: bool = False) -> AnalysisResult:
    """Run every (selected) rule over the given files/directories.

    With ``strict_pragmas``, every ``# repro: allow(...)`` entry that
    suppressed nothing during the run is itself reported as a P001
    finding (judged only for the rule ids that actually ran, plus ids
    that are not registered rules at all).
    """
    config = config or Config()
    result = AnalysisResult()
    parsed = []
    for path in collect_files(paths):
        posix = path.replace(os.sep, "/")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            result.parse_errors.append(
                ParseError(path=posix, line=exc.lineno or 1,
                           message=f"syntax error: {exc.msg}")
            )
            continue
        parsed.append((posix, module_name_for(posix), tree, source.splitlines()))

    index = ProjectIndex.build(parsed)
    rules = all_rules(config.select)
    result.rules_run = [rule.id for rule in rules]
    judged = [rule_id for rule_id in result.rules_run if rule_id != "P001"]
    for path, module, tree, lines in parsed:
        ctx = FileContext(path=path, module=module, tree=tree, lines=lines,
                          index=index, config=config)
        suppressions = Suppressions(lines)
        for rule in rules:
            result.findings.extend(suppressions.filter(rule.check(ctx)))
        if strict_pragmas:
            stale = [
                Finding(
                    rule="P001", path=path, line=line, col=1,
                    message=(f"stale pragma: allow({rule_id}) suppressed "
                             "nothing in this run"),
                )
                for line, rule_id in suppressions.unused(judged)
            ]
            result.findings.extend(suppressions.filter(stale))
        result.files_checked += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
