"""Runtime concurrency checking: an Eraser-style lockset checker.

The static plane (:mod:`repro.analysis.rules.concurrency`) proves lock
discipline over the paths it can see; this module checks the paths that
actually *run*. It follows the lockset algorithm of Savage et al.'s
Eraser, adapted to the simulation's cooperative concurrency: instead of
threads there are sim processes (:class:`repro.sim.core.Process`), and
instead of pthread mutexes there are per-file grants from
:class:`repro.core.locks.FileLockTable`.

For every checked variable ``v`` the checker maintains a *candidate
lockset* ``C(v)`` — the locks held at **every** access so far — refined
by intersection on each access. While only one process has ever touched
``v`` the variable is in its exclusive (initialization) phase and no
violation is reported; the moment a second process touches it the
candidate set becomes binding, and if it drains to empty on a history
that includes a write, a :class:`RaceReport` is raised *at the access*,
inside the offending process, with simulated-time stamps and
deterministic process names — so the report itself is replay-stable.

Activation is explicit (:func:`activate` / :func:`deactivate`) and off
by default: production and benchmark runs pay only a per-hook
``active_checker() is None`` test. The test suite turns it on under
``REPRO_LOCKSET=1`` (see ``tests/conftest.py``); CI runs the whole
tier-1 suite that way at ``workers=4``.

This module is imported by :mod:`repro.core.locks` and therefore must
stay dependency-light: nothing here may import the analysis framework,
the engine, or any rule module.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Protocol, Set, Tuple

__all__ = [
    "LockName",
    "RaceReport",
    "LocksetChecker",
    "activate",
    "deactivate",
    "active_checker",
]

#: A lock's identity: (lock-table name, key within the table). The
#: table name comes from the table's ``owner`` label ("bullet", ...),
#: so two servers' inode-7 locks are distinct.
LockName = Tuple[str, int]

#: A checked variable's identity: (field label, instance key) — e.g.
#: ("BulletServer._lives", inode_number). Per-element granularity, so
#: independent inodes do not pollute each other's candidate sets.
VarName = Tuple[str, int]


class SimProcess(Protocol):
    """What the checker needs from a process: a replay-stable name."""

    @property
    def name(self) -> str: ...


class RaceReport(Exception):
    """Two processes reached a checked variable with no common lock.

    Raised synchronously from the access that drained the candidate
    lockset, so it surfaces inside the offending process — the sim
    kernel propagates it like any process failure and the test run
    dies pointing at the exact access.
    """


_active: Optional["LocksetChecker"] = None


def activate(checker: "LocksetChecker") -> "LocksetChecker":
    """Install ``checker`` as the process-wide active checker."""
    global _active
    _active = checker
    return checker


def deactivate() -> None:
    """Clear the active checker (hooks become no-ops again)."""
    global _active
    _active = None


def active_checker() -> Optional["LocksetChecker"]:
    """The installed checker, or None. Hook sites call this and skip
    all work on None — the only cost the checker imposes when off."""
    return _active


class _VarState:
    """Lockset-algorithm state for one checked variable."""

    __slots__ = ("first", "candidate", "written", "shared", "last")

    def __init__(self, first: SimProcess, held: FrozenSet[LockName],
                 written: bool, last: str):
        self.first = first
        self.candidate: FrozenSet[LockName] = held
        self.written = written
        self.shared = False
        self.last = last


class LocksetChecker:
    """Tracks per-process holdings and per-variable candidate locksets.

    Fed by three hook families:

    * :meth:`on_acquire` / :meth:`on_release` — called by
      :class:`~repro.core.locks.FileLockTable` when a grant is admitted
      or a held grant released;
    * :meth:`on_access` — called at instrumented reads/writes of
      guarded fields (the runtime counterpart of the static
      ``# repro: guarded_by(...)`` annotations);
    * :meth:`reset` — forget a variable (object destruction: a
      reincarnated inode number is a fresh variable).
    """

    def __init__(self) -> None:
        self._held: Dict[SimProcess, Set[LockName]] = {}
        self._vars: Dict[VarName, _VarState] = {}
        #: Accesses checked (tests assert the hooks actually fired).
        self.accesses = 0

    # ------------------------------------------------------- lock hooks

    def on_acquire(self, process: SimProcess, table: str, key: int) -> None:
        self._held.setdefault(process, set()).add((table, key))

    def on_release(self, process: SimProcess, table: str, key: int) -> None:
        held = self._held.get(process)
        if held is not None:
            held.discard((table, key))
            if not held:
                del self._held[process]

    def holdings(self, process: SimProcess) -> FrozenSet[LockName]:
        """The locks ``process`` holds right now (sorted-stable set)."""
        return frozenset(self._held.get(process, ()))

    # ----------------------------------------------------- access hooks

    def on_access(self, var: VarName, write: bool,
                  process: Optional[SimProcess], now: float) -> None:
        """Record (and check) one access to ``var``.

        ``process`` is ``env.active_process`` at the access; accesses
        from outside any process (boot-time initialization, direct
        test pokes) are unattributable and skipped.
        """
        if process is None:
            return
        self.accesses += 1
        held = frozenset(self._held.get(process, ()))
        stamp = (f"{'write' if write else 'read'} by {process.name} "
                 f"at t={now} holding {_render_locks(held)}")
        state = self._vars.get(var)
        if state is None:
            self._vars[var] = _VarState(process, held, write, stamp)
            return
        if state.first is not process:
            state.shared = True
        state.candidate &= held
        previous = state.last
        state.last = stamp
        state.written = state.written or write
        if state.shared and state.written and not state.candidate:
            del self._vars[var]  # do not re-report the same variable
            raise RaceReport(
                f"lockset violation on {var[0]}[{var[1]}]: no common lock "
                f"protects it ({stamp}; previously {previous})"
            )

    def reset(self, var: VarName) -> None:
        """Forget ``var`` — its object was destroyed, so the next access
        belongs to a new incarnation and starts a fresh exclusive phase."""
        self._vars.pop(var, None)


def _render_locks(locks: FrozenSet[LockName]) -> str:
    if not locks:
        return "no locks"
    return "{" + ", ".join(f"{t}:{k}" for t, k in sorted(locks)) + "}"
