"""Text and JSON rendering of an :class:`~repro.analysis.engine.AnalysisResult`."""

from __future__ import annotations

import json

from .engine import AnalysisResult
from .framework import all_rules

__all__ = ["render_json", "render_rule_list", "render_text"]


def _plural(n: int, noun: str) -> str:
    return f"{n} {noun}{'s' if n != 1 else ''}"


def render_text(result: AnalysisResult) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [error.render() for error in result.parse_errors]
    lines.extend(finding.render() for finding in result.findings)
    counts: dict = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if result.clean:
        summary = (
            f"repro.analysis: {_plural(result.files_checked, 'file')} clean "
            f"({_plural(len(result.rules_run), 'rule')})"
        )
    else:
        by_rule = ", ".join(f"{rule} x{n}" for rule, n in sorted(counts.items()))
        summary = (
            f"repro.analysis: {_plural(len(result.findings), 'finding')} "
            f"in {_plural(result.files_checked, 'file')}"
        )
        if by_rule:
            summary += f" ({by_rule})"
        if result.parse_errors:
            summary += (
                f"; {_plural(len(result.parse_errors), 'file')} failed to parse"
            )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "findings": [finding.to_dict() for finding in result.findings],
        "parse_errors": [
            {"path": e.path, "line": e.line, "message": e.message}
            for e in result.parse_errors
        ],
        "clean": result.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` catalogue: id, title, and rationale."""
    blocks = []
    for rule in all_rules():
        blocks.append(f"{rule.id} {rule.title}\n    {rule.rationale}")
    return "\n".join(blocks)
