"""Cross-module project index for the invariant linter.

Several rules need knowledge that no single file contains: S001 must know
which functions are generator processes before it can flag a bare call
that silently never starts one; C001 must know which functions
(transitively) perform a ``require(...)`` rights check; C002 must pair
each ``*OPCODES`` dispatch table with the ``_dispatch`` body that
consumes it. The :class:`ProjectIndex` is one cheap pre-pass over every
analyzed file that records exactly those facts:

* every function/method: its qualified name, parameters (with annotation
  text), whether it is a generator, and the calls it makes;
* project-relative ``from ... import`` bindings, so a bare call can be
  resolved across modules;
* every ``*OPCODES`` table literal and every ``TABLE["KEY"]`` reference;
* per-class ``self.attr`` annotations (used by D003's set-type inference
  and by the typed-attribute call resolution below).

The concurrency rule family (L001–L004, :mod:`.rules.concurrency`) adds
lock-centric facts:

* every ``<table>.acquire_read(...)`` / ``<table>.acquire_write(...)``
  call site with the grant variable it is bound to (:class:`LockSite`),
  and every ``<expr>.release(<var>)`` site (:class:`ReleaseSite` — the
  rules correlate them with acquires by grant variable name, so
  ``InodeTable.release(number)`` never masquerades as a lock release);
* ``yield from`` delegations and ``return f(...)`` forwarding, so a
  helper chain introduced by de-processification resolves to the
  function that actually suspends (:meth:`ProjectIndex.process_constructors`,
  :meth:`ProjectIndex.blocking_functions`);
* ``# repro: guarded_by(<lock>)`` field declarations, parsed from the
  source comment on (or immediately above) the attribute definition;
* typed attribute resolution: ``self.cache.insert(...)`` resolves to
  ``BulletCache.insert`` when the caller's class annotates
  ``self.cache: BulletCache`` (or assigns ``self.cache =
  BulletCache(...)``), and ``server.locks.release(...)`` resolves
  through a ``server: BulletServer`` parameter annotation — giving the
  L-rules a call graph that survives the server's delegation into its
  cache/free-list/lock-table objects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

__all__ = [
    "CallRef",
    "FunctionInfo",
    "GuardedField",
    "LockSite",
    "ModuleInfo",
    "OpcodeRef",
    "ProjectIndex",
    "ReleaseSite",
    "guard_comment_map",
]

#: ``# repro: guarded_by(locks)`` — the lock table attribute whose grant
#: must be held to mutate the annotated field.
_GUARDED = re.compile(r"#\s*repro:\s*guarded_by\(\s*([A-Za-z_][\w.]*)\s*\)")

_ACQUIRE_METHODS = {"acquire_read": "read", "acquire_write": "write"}


@dataclass(frozen=True)
class CallRef:
    """One call site inside a function body.

    ``kind`` is ``"self"`` for ``self.name(...)``, ``"bare"`` for
    ``name(...)``, and ``"attr"`` for any dotted call (``a.b.name(...)``);
    ``name`` is always the terminal segment, ``dotted`` the full chain.
    """

    kind: str
    name: str
    dotted: str
    lineno: int


@dataclass(frozen=True)
class LockSite:
    """One ``<table>.acquire_read/acquire_write(...)`` call site.

    ``table`` is the dotted expression the acquire was called on
    (``self.locks``, ``locks``, ``server.locks``); ``table_name`` its
    terminal segment, which is how guard declarations name the lock.
    ``target`` is the variable the grant was bound to, or ``None`` when
    the grant was discarded.
    """

    table: str
    mode: str
    target: Optional[str]
    lineno: int

    @property
    def table_name(self) -> str:
        return self.table.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class ReleaseSite:
    """One ``<expr>.release(<var>)`` call site (any receiver)."""

    table: str
    grant: Optional[str]
    lineno: int
    in_finally: bool


@dataclass(frozen=True)
class GuardedField:
    """A ``# repro: guarded_by(<lock>)`` declaration on a class field."""

    cls: str
    attr: str
    lock: str
    lineno: int


@dataclass
class FunctionInfo:
    module: str
    cls: Optional[str]
    name: str
    lineno: int
    is_generator: bool
    params: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    calls: List[CallRef] = field(default_factory=list)
    acquires: List[LockSite] = field(default_factory=list)
    releases: List[ReleaseSite] = field(default_factory=list)
    #: ``yield from f(...)`` call targets — delegation edges.
    delegations: List[CallRef] = field(default_factory=list)
    #: ``return f(...)`` call targets — forwarding edges.
    returned_calls: List[CallRef] = field(default_factory=list)
    #: Terminal names of calls yielded directly (``yield q.get()``).
    yielded_call_names: Set[str] = field(default_factory=set)
    #: Mutations of ``<base>.<attr>`` (or ``<base>.<attr>[k]``):
    #: (base dotted expr, attribute, lineno).
    attr_writes: List[Tuple[str, str, int]] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, Optional[str], str]:
        return (self.module, self.cls, self.name)

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass(frozen=True)
class OpcodeRef:
    table: str
    key: str
    lineno: int
    function: Optional[tuple]  # enclosing FunctionInfo.key, if any


@dataclass
class ModuleInfo:
    module: str
    path: str
    functions: dict = field(default_factory=dict)      # (cls|None, name) -> FunctionInfo
    imports: dict = field(default_factory=dict)        # local name -> (module, name)
    opcode_tables: dict = field(default_factory=dict)  # table name -> {key: lineno}
    table_linenos: dict = field(default_factory=dict)  # table name -> def lineno
    opcode_refs: list = field(default_factory=list)    # OpcodeRef
    class_attr_annotations: dict = field(default_factory=dict)  # cls -> {attr: ann}
    #: cls -> {attr: class name} inferred from ``self.attr = ClassName(...)``.
    class_attr_constructors: Dict[str, Dict[str, str]] = field(default_factory=dict)
    classes: Set[str] = field(default_factory=set)
    #: cls -> {attr: GuardedField}
    guarded_fields: Dict[str, Dict[str, GuardedField]] = field(default_factory=dict)


def guard_comment_map(lines: Iterable[str]) -> Dict[int, str]:
    """Map each source line to the ``guarded_by`` lock it declares.

    A pragma on a code line applies to that line's statement; a pragma on
    a comment-only line applies to the next line, mirroring the allow()
    pragma convention in :mod:`.framework`.
    """
    guards: Dict[int, str] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _GUARDED.search(line)
        if match is None:
            continue
        target = lineno if line[: match.start()].strip() else lineno + 1
        guards[target] = match.group(1)
    return guards


def _is_generator_body(body: Iterable[ast.stmt]) -> bool:
    """True when the statements contain a yield at their own scope."""

    class _Finder(ast.NodeVisitor):
        found = False

        def visit_Yield(self, node: ast.Yield) -> None:
            self.found = True

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            self.found = True

        # Yields inside nested definitions belong to those definitions.
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

    finder = _Finder()
    for stmt in body:
        finder.visit(stmt)
        if finder.found:
            return True
    return False


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_ref(node: ast.Call) -> Optional[CallRef]:
    func = node.func
    if isinstance(func, ast.Name):
        return CallRef("bare", func.id, func.id, node.lineno)
    if isinstance(func, ast.Attribute):
        dotted = dotted_name(func)
        if dotted is None:
            # Call on a computed expression (e.g. ``fns[i]()``): keep the
            # terminal attribute so name-seeded checks still see it.
            return CallRef("attr", func.attr, func.attr, node.lineno)
        if dotted.startswith("self.") and dotted.count(".") == 1:
            return CallRef("self", func.attr, dotted, node.lineno)
        return CallRef("attr", func.attr, dotted, node.lineno)
    return None


def _bare_type(annotation: str) -> Optional[str]:
    """The class name an annotation refers to, if it is a plain one.

    ``BulletCache`` / ``"BulletCache"`` / ``Optional[BulletCache]`` all
    yield ``BulletCache``; containers and unions yield None.
    """
    text = annotation.strip().strip("'\"")
    match = re.fullmatch(r"(?:typing\.)?Optional\[(.+)\]", text)
    if match is not None:
        text = match.group(1).strip().strip("'\"")
    if re.fullmatch(r"[A-Za-z_][\w.]*", text) is None:
        return None
    return text.rsplit(".", 1)[-1]


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute module name for a ``from ...target import`` statement."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _ModuleVisitor(ast.NodeVisitor):
    """One pass collecting everything :class:`ModuleInfo` holds."""

    def __init__(self, info: ModuleInfo, guards: Optional[Dict[int, str]] = None):
        self.info = info
        self.guards = guards or {}
        self._class_stack: List[str] = []
        self._function_stack: List[FunctionInfo] = []
        self._finally_depth = 0

    # ------------------------------------------------------------ scopes

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.info.classes.add(node.name)
        # Class-body annotations (``members: set[int]``) declare instance
        # attributes just as ``self.members: set[int]`` in __init__ does.
        annotations = self.info.class_attr_annotations.setdefault(node.name, {})
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotations[stmt.target.id] = ast.unparse(stmt.annotation)
                self._record_guard(stmt.target.id, stmt.lineno)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(
            self,
            node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        nested = bool(self._function_stack)
        fn = FunctionInfo(
            module=self.info.module,
            cls=None if nested else cls,
            name=node.name,
            lineno=node.lineno,
            is_generator=_is_generator_body(node.body),
            params=[
                (arg.arg, ast.unparse(arg.annotation) if arg.annotation else None)
                for arg in list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            ],
        )
        # Nested helpers (closures) are indexed by bare name too, so S001
        # can still recognize a local generator; collisions keep the
        # outermost definition.
        self.info.functions.setdefault((fn.cls, fn.name), fn)
        self._function_stack.append(fn)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Try(self, node: ast.Try) -> None:
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        for handler in node.handlers:
            self.visit(handler)
        self._finally_depth += 1
        for stmt in node.finalbody:
            self.visit(stmt)
        self._finally_depth -= 1

    # ------------------------------------------------------------ facts

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        source = _resolve_relative(self.info.module, node.level, node.module)
        for alias in node.names:
            if alias.name == "*":
                continue
            self.info.imports[alias.asname or alias.name] = (source, alias.name)
        self.generic_visit(node)

    def _record_guard(self, attr: str, lineno: int) -> None:
        if not self._class_stack:
            return
        lock = self.guards.get(lineno)
        if lock is None:
            return
        cls = self._class_stack[-1]
        self.info.guarded_fields.setdefault(cls, {})[attr] = GuardedField(
            cls=cls, attr=attr, lock=lock, lineno=lineno
        )

    def _record_self_attr(self, target: ast.expr, value: Optional[ast.expr],
                          lineno: int) -> None:
        """Instance-attribute facts from a ``self.attr`` assignment."""
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
        ):
            return
        self._record_guard(target.attr, lineno)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id[:1].isupper()
        ):
            constructors = self.info.class_attr_constructors.setdefault(
                self._class_stack[-1], {}
            )
            constructors.setdefault(target.attr, value.func.id)

    def _record_write(self, target: ast.expr, lineno: int) -> None:
        if not self._function_stack:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write(elt, lineno)
            return
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return
        base = dotted_name(node.value)
        if base is not None:
            self._function_stack[-1].attr_writes.append((base, node.attr, lineno))

    def _record_acquire(self, target: Optional[str], value: ast.expr,
                        lineno: int) -> bool:
        if not (
            self._function_stack
            and isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _ACQUIRE_METHODS
        ):
            return False
        table = dotted_name(value.func.value) or value.func.attr
        self._function_stack[-1].acquires.append(
            LockSite(
                table=table,
                mode=_ACQUIRE_METHODS[value.func.attr],
                target=target,
                lineno=lineno,
            )
        )
        return True

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_opcode_table(node.targets, node.value, node.lineno)
        for target in node.targets:
            self._record_self_attr(target, node.value, node.lineno)
            self._record_write(target, node.lineno)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._record_acquire(node.targets[0].id, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write(target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
        ):
            annotations = self.info.class_attr_annotations.setdefault(
                self._class_stack[-1], {}
            )
            annotations[target.attr] = ast.unparse(node.annotation)
            self._record_self_attr(target, node.value, node.lineno)
        self._record_write(target, node.lineno)
        if node.value is not None:
            self._record_opcode_table([target], node.value, node.lineno)
            if isinstance(target, ast.Name):
                self._record_acquire(target.id, node.value, node.lineno)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # A discarded acquire (``t.acquire_write(n)`` as a statement).
        self._record_acquire(None, node.value, node.lineno)
        self.generic_visit(node)

    def _record_opcode_table(self, targets: List[ast.expr], value: ast.expr,
                             lineno: int) -> None:
        if self._function_stack or not isinstance(value, ast.Dict):
            return
        for target in targets:
            if not (isinstance(target, ast.Name) and target.id.endswith("OPCODES")):
                continue
            entries = {}
            for key_node in value.keys:
                if isinstance(key_node, ast.Constant) and isinstance(
                    key_node.value, str
                ):
                    entries[key_node.value] = key_node.lineno
            self.info.opcode_tables[target.id] = entries
            self.info.table_linenos[target.id] = lineno

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id.endswith("OPCODES")
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            enclosing = self._function_stack[-1].key if self._function_stack else None
            self.info.opcode_refs.append(
                OpcodeRef(node.value.id, node.slice.value, node.lineno, enclosing)
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._function_stack:
            ref = call_ref(node)
            if ref is not None:
                self._function_stack[-1].calls.append(ref)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
                and len(node.args) == 1
            ):
                grant = node.args[0].id if isinstance(node.args[0], ast.Name) else None
                self._function_stack[-1].releases.append(
                    ReleaseSite(
                        table=dotted_name(node.func.value) or "release",
                        grant=grant,
                        lineno=node.lineno,
                        in_finally=self._finally_depth > 0,
                    )
                )
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if self._function_stack and isinstance(node.value, ast.Call):
            ref = call_ref(node.value)
            if ref is not None:
                self._function_stack[-1].yielded_call_names.add(ref.name)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if self._function_stack and isinstance(node.value, ast.Call):
            ref = call_ref(node.value)
            if ref is not None:
                self._function_stack[-1].delegations.append(ref)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if self._function_stack and isinstance(node.value, ast.Call):
            ref = call_ref(node.value)
            if ref is not None:
                self._function_stack[-1].returned_calls.append(ref)
        self.generic_visit(node)


class ProjectIndex:
    """The cross-module facts shared by every rule."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self._class_locations: Dict[str, Optional[Tuple[str, str]]] = {}
        #: Memo for the derived-set fixpoints (the index is immutable
        #: once built, so each is computed at most once per run).
        self._memo: Dict[object, object] = {}

    @classmethod
    def build(cls, files: Iterable[tuple]) -> "ProjectIndex":
        """``files`` yields (path, module, tree) or (path, module, tree,
        source_lines) tuples; the lines enable guarded_by parsing."""
        index = cls()
        for entry in files:
            path, module, tree = entry[0], entry[1], entry[2]
            lines = entry[3] if len(entry) > 3 else None
            guards = guard_comment_map(lines) if lines is not None else {}
            info = ModuleInfo(module=module, path=path)
            _ModuleVisitor(info, guards).visit(tree)
            index.modules[module] = info
        for module, info in index.modules.items():
            for name in info.classes:
                # A class name resolves globally only while unambiguous.
                if name in index._class_locations:
                    index._class_locations[name] = None
                else:
                    index._class_locations[name] = (module, name)
        return index

    # -------------------------------------------------------- resolution

    def function(self, module: str, cls: Optional[str],
                 name: str) -> Optional[FunctionInfo]:
        info = self.modules.get(module)
        if info is None:
            return None
        return info.functions.get((cls, name))

    def resolve_call(self, caller: FunctionInfo,
                     ref: CallRef) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a call refers to, if it is indexable.

        ``self.x(...)`` resolves within the caller's class; a bare name
        resolves to a module-level function, a sibling nested helper, or
        a project-relative import. Dotted calls on other objects are not
        resolved here (see :meth:`resolve_call_typed`).
        """
        if ref.kind == "self":
            return self.function(caller.module, caller.cls, ref.name)
        if ref.kind == "bare":
            found = self.function(caller.module, None, ref.name) or self.function(
                caller.module, caller.cls, ref.name
            )
            if found is not None:
                return found
            info = self.modules.get(caller.module)
            if info is not None and ref.name in info.imports:
                source, original = info.imports[ref.name]
                return self.function(source, None, original)
        return None

    def class_location(self, name: str) -> Optional[Tuple[str, str]]:
        """(module, class) for a project class name unique in the tree."""
        return self._class_locations.get(name)

    def attr_class(self, module: str, cls: str, attr: str) -> Optional[Tuple[str, str]]:
        """The declared/inferred class of ``<cls instance>.<attr>``."""
        info = self.modules.get(module)
        if info is None:
            return None
        annotation = info.class_attr_annotations.get(cls, {}).get(attr)
        if annotation is not None:
            bare = _bare_type(annotation)
            if bare is not None:
                located = self.class_location(bare)
                if located is not None:
                    return located
        constructor = info.class_attr_constructors.get(cls, {}).get(attr)
        if constructor is not None:
            return self.class_location(constructor)
        return None

    def resolve_base_class(
        self, caller: FunctionInfo, base: str
    ) -> Optional[Tuple[str, str]]:
        """The class a dotted base expression denotes inside ``caller``.

        ``self`` is the caller's class; a leading annotated parameter
        (``server: BulletServer``) starts a chain; each further segment
        hops through :meth:`attr_class`.
        """
        parts = base.split(".")
        current: Optional[Tuple[str, str]] = None
        if parts[0] == "self":
            if caller.cls is None:
                return None
            current = (caller.module, caller.cls)
        else:
            for param, annotation in caller.params:
                if param == parts[0] and annotation is not None:
                    bare = _bare_type(annotation)
                    if bare is not None:
                        current = self.class_location(bare)
                    break
        for part in parts[1:]:
            if current is None:
                return None
            current = self.attr_class(current[0], current[1], part)
        return current

    def resolve_call_typed(self, caller: FunctionInfo,
                           ref: CallRef) -> Optional[FunctionInfo]:
        """:meth:`resolve_call` extended through typed attribute chains,
        so ``self.cache.insert(...)`` reaches ``BulletCache.insert``."""
        found = self.resolve_call(caller, ref)
        if found is not None:
            return found
        if "." not in ref.dotted:
            return None
        base, method = ref.dotted.rsplit(".", 1)
        located = self.resolve_base_class(caller, base)
        if located is None:
            return None
        return self.function(located[0], located[1], method)

    # ------------------------------------------------------- derived sets

    def all_functions(self) -> Iterable[FunctionInfo]:
        for info in self.modules.values():
            yield from info.functions.values()

    def guarded_field(self, cls_location: Tuple[str, str],
                      attr: str) -> Optional[GuardedField]:
        info = self.modules.get(cls_location[0])
        if info is None:
            return None
        return info.guarded_fields.get(cls_location[1], {}).get(attr)

    def all_guarded_fields(self) -> Iterable[Tuple[str, GuardedField]]:
        for module, info in self.modules.items():
            for fields in info.guarded_fields.values():
                for guarded in fields.values():
                    yield module, guarded

    def callers(self) -> Dict[tuple, Set[tuple]]:
        """callee key -> caller keys, over typed-resolvable call sites."""
        memo = self._memo.get("callers")
        if memo is not None:
            return memo  # type: ignore[return-value]
        graph: Dict[tuple, Set[tuple]] = {}
        for fn in self.all_functions():
            for ref in fn.calls:
                callee = self.resolve_call_typed(fn, ref)
                if callee is not None and callee.key != fn.key:
                    graph.setdefault(callee.key, set()).add(fn.key)
        self._memo["callers"] = graph
        return graph

    def rights_checkers(self, extra_validators: Iterable[str] = ()) -> set:
        """Fixpoint of functions that perform a rights check.

        Seeded by any call whose terminal name is ``require`` (the
        capability gate from :mod:`repro.capability`) or one of
        ``extra_validators``; closed over project-resolvable calls, so
        ``lookup -> lookup_set -> _open -> require`` marks all three.
        Returns the set of :attr:`FunctionInfo.key` tuples.
        """
        validators = {"require", *extra_validators}
        checkers: set = set()
        changed = True
        while changed:
            changed = False
            for info in self.modules.values():
                for fn in info.functions.values():
                    if fn.key in checkers:
                        continue
                    for ref in fn.calls:
                        if ref.name in validators:
                            checkers.add(fn.key)
                            changed = True
                            break
                        callee = self.resolve_call(fn, ref)
                        if callee is not None and callee.key in checkers:
                            checkers.add(fn.key)
                            changed = True
                            break
        return checkers

    def process_constructors(self) -> Set[tuple]:
        """Fixpoint of functions whose call produces a process generator.

        Seeded by generator functions; closed over ``return f(...)``
        forwarding, so a plain wrapper that returns a generator-returning
        call is itself something ``env.process`` must consume. S001 uses
        this instead of ``is_generator`` so PR 6's delegation chains are
        judged by what they ultimately construct.
        """
        memo = self._memo.get("process_constructors")
        if memo is not None:
            return memo  # type: ignore[return-value]
        constructors: Set[tuple] = {
            fn.key for fn in self.all_functions() if fn.is_generator
        }
        changed = True
        while changed:
            changed = False
            for fn in self.all_functions():
                if fn.key in constructors or fn.is_generator:
                    continue
                for ref in fn.returned_calls:
                    callee = self.resolve_call_typed(fn, ref)
                    if callee is not None and callee.key in constructors:
                        constructors.add(fn.key)
                        changed = True
                        break
        self._memo["process_constructors"] = constructors
        return constructors

    def blocking_functions(self, seeds: Iterable[str]) -> Set[tuple]:
        """Fixpoint of generators that block on an external-input primitive.

        Seeded by a direct ``yield q.<seed>()`` (e.g. ``get``/``getreq``);
        closed over ``yield from`` delegation and ``return f(...)``
        forwarding, so a helper chain that bottoms out in a mailbox wait
        is blocking at every link. L002 refuses to let these run under a
        held write grant.
        """
        seed_names = set(seeds)
        memo_key = ("blocking", tuple(sorted(seed_names)))
        memo = self._memo.get(memo_key)
        if memo is not None:
            return memo  # type: ignore[return-value]
        blocking: Set[tuple] = {
            fn.key
            for fn in self.all_functions()
            if fn.yielded_call_names & seed_names
        }
        changed = True
        while changed:
            changed = False
            for fn in self.all_functions():
                if fn.key in blocking:
                    continue
                for ref in list(fn.delegations) + list(fn.returned_calls):
                    callee = self.resolve_call_typed(fn, ref)
                    if callee is not None and callee.key in blocking:
                        blocking.add(fn.key)
                        changed = True
                        break
        self._memo[memo_key] = blocking
        return blocking

    def direct_acquirers(self) -> Dict[tuple, Set[str]]:
        """fn key -> lock-table names it acquires in its own body."""
        return {
            fn.key: {site.table_name for site in fn.acquires}
            for fn in self.all_functions()
            if fn.acquires
        }

    def transitive_acquirers(self) -> Dict[tuple, Set[str]]:
        """fn key -> lock-table names it (transitively) acquires.

        Closed over typed-resolvable calls, delegations, and forwarding:
        calling ``compact_disk`` acquires ``locks`` as surely as calling
        ``acquire_write`` yourself. L003 uses this to see the acquire
        hiding behind a call made while a grant is held.
        """
        memo = self._memo.get("transitive_acquirers")
        if memo is not None:
            return memo  # type: ignore[return-value]
        acquired: Dict[tuple, Set[str]] = {
            key: set(tables) for key, tables in self.direct_acquirers().items()
        }
        changed = True
        while changed:
            changed = False
            for fn in self.all_functions():
                mine = acquired.get(fn.key, set())
                before = len(mine)
                for ref in fn.calls:
                    callee = self.resolve_call_typed(fn, ref)
                    if callee is not None and callee.key in acquired:
                        mine |= acquired[callee.key]
                if len(mine) > before or (mine and fn.key not in acquired):
                    acquired[fn.key] = mine
                    changed = True
        self._memo["transitive_acquirers"] = acquired
        return acquired

    def lock_order_edges(self) -> List[Tuple[str, str, str, int, str]]:
        """Global lock-order graph edges from nested-acquire sites.

        Each edge is (held table, acquired table, module, lineno,
        detail): while a grant from the first table is held, a grant
        from the second is acquired — directly, or through a call into a
        function that transitively acquires. The held interval is
        approximated by line span (acquire line to the last release line
        naming the same grant variable, or function end); re-acquiring
        into the *same* variable is the release-then-upgrade dance, not
        nesting, and adds no edge.
        """
        memo = self._memo.get("lock_order_edges")
        if memo is not None:
            return memo  # type: ignore[return-value]
        acquired_map = self.transitive_acquirers()
        edges: List[Tuple[str, str, str, int, str]] = []
        for fn in self.all_functions():
            for site in fn.acquires:
                if site.target is None:
                    continue
                ends = [
                    rel.lineno
                    for rel in fn.releases
                    if rel.grant == site.target and rel.lineno >= site.lineno
                ]
                end = max(ends) if ends else 1_000_000_000
                for other in fn.acquires:
                    if other.target == site.target:
                        continue
                    if site.lineno < other.lineno <= end:
                        edges.append((
                            site.table_name, other.table_name, fn.module,
                            other.lineno,
                            f"{fn.qualname} acquires {other.table_name} while "
                            f"holding {site.table_name} (grant "
                            f"`{site.target}` from line {site.lineno})",
                        ))
                for ref in fn.calls:
                    if not site.lineno < ref.lineno <= end:
                        continue
                    callee = self.resolve_call_typed(fn, ref)
                    if callee is None:
                        continue
                    for table in sorted(acquired_map.get(callee.key, ())):
                        edges.append((
                            site.table_name, table, fn.module, ref.lineno,
                            f"{fn.qualname} calls {callee.qualname} (which "
                            f"acquires {table}) while holding "
                            f"{site.table_name} (grant `{site.target}` from "
                            f"line {site.lineno})",
                        ))
        self._memo["lock_order_edges"] = edges
        return edges
