"""Cross-module project index for the invariant linter.

Several rules need knowledge that no single file contains: S001 must know
which functions are generator processes before it can flag a bare call
that silently never starts one; C001 must know which functions
(transitively) perform a ``require(...)`` rights check; C002 must pair
each ``*OPCODES`` dispatch table with the ``_dispatch`` body that
consumes it. The :class:`ProjectIndex` is one cheap pre-pass over every
analyzed file that records exactly those facts:

* every function/method: its qualified name, parameters (with annotation
  text), whether it is a generator, and the calls it makes;
* project-relative ``from ... import`` bindings, so a bare call can be
  resolved across modules;
* every ``*OPCODES`` table literal and every ``TABLE["KEY"]`` reference;
* per-class ``self.attr`` annotations (used by D003's set-type inference).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["CallRef", "FunctionInfo", "ModuleInfo", "OpcodeRef", "ProjectIndex"]


@dataclass(frozen=True)
class CallRef:
    """One call site inside a function body.

    ``kind`` is ``"self"`` for ``self.name(...)``, ``"bare"`` for
    ``name(...)``, and ``"attr"`` for any dotted call (``a.b.name(...)``);
    ``name`` is always the terminal segment, ``dotted`` the full chain.
    """

    kind: str
    name: str
    dotted: str
    lineno: int


@dataclass
class FunctionInfo:
    module: str
    cls: Optional[str]
    name: str
    lineno: int
    is_generator: bool
    params: list = field(default_factory=list)   # (name, annotation text | None)
    calls: list = field(default_factory=list)    # CallRef

    @property
    def key(self) -> tuple:
        return (self.module, self.cls, self.name)

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass(frozen=True)
class OpcodeRef:
    table: str
    key: str
    lineno: int
    function: Optional[tuple]  # enclosing FunctionInfo.key, if any


@dataclass
class ModuleInfo:
    module: str
    path: str
    functions: dict = field(default_factory=dict)      # (cls|None, name) -> FunctionInfo
    imports: dict = field(default_factory=dict)        # local name -> (module, name)
    opcode_tables: dict = field(default_factory=dict)  # table name -> {key: lineno}
    table_linenos: dict = field(default_factory=dict)  # table name -> def lineno
    opcode_refs: list = field(default_factory=list)    # OpcodeRef
    class_attr_annotations: dict = field(default_factory=dict)  # cls -> {attr: ann}


def _is_generator_body(body: Iterable[ast.stmt]) -> bool:
    """True when the statements contain a yield at their own scope."""

    class _Finder(ast.NodeVisitor):
        found = False

        def visit_Yield(self, node: ast.Yield) -> None:
            self.found = True

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            self.found = True

        # Yields inside nested definitions belong to those definitions.
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

    finder = _Finder()
    for stmt in body:
        finder.visit(stmt)
        if finder.found:
            return True
    return False


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_ref(node: ast.Call) -> Optional[CallRef]:
    func = node.func
    if isinstance(func, ast.Name):
        return CallRef("bare", func.id, func.id, node.lineno)
    if isinstance(func, ast.Attribute):
        dotted = dotted_name(func)
        if dotted is None:
            # Call on a computed expression (e.g. ``fns[i]()``): keep the
            # terminal attribute so name-seeded checks still see it.
            return CallRef("attr", func.attr, func.attr, node.lineno)
        if dotted.startswith("self.") and dotted.count(".") == 1:
            return CallRef("self", func.attr, dotted, node.lineno)
        return CallRef("attr", func.attr, dotted, node.lineno)
    return None


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute module name for a ``from ...target import`` statement."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _ModuleVisitor(ast.NodeVisitor):
    """One pass collecting everything :class:`ModuleInfo` holds."""

    def __init__(self, info: ModuleInfo):
        self.info = info
        self._class_stack: list = []
        self._function_stack: list = []

    # ------------------------------------------------------------ scopes

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        # Class-body annotations (``members: set[int]``) declare instance
        # attributes just as ``self.members: set[int]`` in __init__ does.
        annotations = self.info.class_attr_annotations.setdefault(node.name, {})
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotations[stmt.target.id] = ast.unparse(stmt.annotation)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        nested = bool(self._function_stack)
        fn = FunctionInfo(
            module=self.info.module,
            cls=None if nested else cls,
            name=node.name,
            lineno=node.lineno,
            is_generator=_is_generator_body(node.body),
            params=[
                (arg.arg, ast.unparse(arg.annotation) if arg.annotation else None)
                for arg in list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            ],
        )
        # Nested helpers (closures) are indexed by bare name too, so S001
        # can still recognize a local generator; collisions keep the
        # outermost definition.
        self.info.functions.setdefault((fn.cls, fn.name), fn)
        self._function_stack.append(fn)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # ------------------------------------------------------------ facts

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        source = _resolve_relative(self.info.module, node.level, node.module)
        for alias in node.names:
            if alias.name == "*":
                continue
            self.info.imports[alias.asname or alias.name] = (source, alias.name)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_opcode_table(node.targets, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
        ):
            annotations = self.info.class_attr_annotations.setdefault(
                self._class_stack[-1], {}
            )
            annotations[target.attr] = ast.unparse(node.annotation)
        if node.value is not None:
            self._record_opcode_table([target], node.value, node.lineno)
        self.generic_visit(node)

    def _record_opcode_table(self, targets, value, lineno: int) -> None:
        if self._function_stack or not isinstance(value, ast.Dict):
            return
        for target in targets:
            if not (isinstance(target, ast.Name) and target.id.endswith("OPCODES")):
                continue
            entries = {}
            for key_node in value.keys:
                if isinstance(key_node, ast.Constant) and isinstance(
                    key_node.value, str
                ):
                    entries[key_node.value] = key_node.lineno
            self.info.opcode_tables[target.id] = entries
            self.info.table_linenos[target.id] = lineno

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id.endswith("OPCODES")
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            enclosing = self._function_stack[-1].key if self._function_stack else None
            self.info.opcode_refs.append(
                OpcodeRef(node.value.id, node.slice.value, node.lineno, enclosing)
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._function_stack:
            ref = call_ref(node)
            if ref is not None:
                self._function_stack[-1].calls.append(ref)
        self.generic_visit(node)


class ProjectIndex:
    """The cross-module facts shared by every rule."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}

    @classmethod
    def build(cls, files: Iterable[tuple]) -> "ProjectIndex":
        """``files`` is an iterable of (path, module, tree) triples."""
        index = cls()
        for path, module, tree in files:
            info = ModuleInfo(module=module, path=path)
            _ModuleVisitor(info).visit(tree)
            index.modules[module] = info
        return index

    # -------------------------------------------------------- resolution

    def function(self, module: str, cls: Optional[str], name: str):
        info = self.modules.get(module)
        if info is None:
            return None
        return info.functions.get((cls, name))

    def resolve_call(self, caller: FunctionInfo, ref: CallRef):
        """The :class:`FunctionInfo` a call refers to, if it is indexable.

        ``self.x(...)`` resolves within the caller's class; a bare name
        resolves to a module-level function, a sibling nested helper, or
        a project-relative import. Dotted calls on other objects are not
        resolved (we do not track types).
        """
        if ref.kind == "self":
            return self.function(caller.module, caller.cls, ref.name)
        if ref.kind == "bare":
            found = self.function(caller.module, None, ref.name) or self.function(
                caller.module, caller.cls, ref.name
            )
            if found is not None:
                return found
            info = self.modules.get(caller.module)
            if info is not None and ref.name in info.imports:
                source, original = info.imports[ref.name]
                return self.function(source, None, original)
        return None

    # ------------------------------------------------------- derived sets

    def rights_checkers(self, extra_validators: Iterable[str] = ()) -> set:
        """Fixpoint of functions that perform a rights check.

        Seeded by any call whose terminal name is ``require`` (the
        capability gate from :mod:`repro.capability`) or one of
        ``extra_validators``; closed over project-resolvable calls, so
        ``lookup -> lookup_set -> _open -> require`` marks all three.
        Returns the set of :attr:`FunctionInfo.key` tuples.
        """
        validators = {"require", *extra_validators}
        checkers: set = set()
        changed = True
        while changed:
            changed = False
            for info in self.modules.values():
                for fn in info.functions.values():
                    if fn.key in checkers:
                        continue
                    for ref in fn.calls:
                        if ref.name in validators:
                            checkers.add(fn.key)
                            changed = True
                            break
                        callee = self.resolve_call(fn, ref)
                        if callee is not None and callee.key in checkers:
                            checkers.add(fn.key)
                            changed = True
                            break
        return checkers
