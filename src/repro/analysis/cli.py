"""``python -m repro.analysis`` — the invariant linter's command line.

Usage::

    python -m repro.analysis src/repro             # lint the tree
    python -m repro.analysis --format json src     # machine-readable
    python -m repro.analysis --select D001,S001 f.py
    python -m repro.analysis --concurrency src/repro   # L-rules only
    python -m repro.analysis --strict-pragmas src/repro
    python -m repro.analysis --list-rules

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
parse errors — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..errors import ReproError
from .engine import analyze_paths
from .framework import Config
from .reporter import render_json, render_rule_list, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter: determinism (D...), "
                    "sim-process discipline (S...), capability discipline "
                    "(C...), and error-style (A...) rules over the "
                    "reproduction's own source.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze (e.g. src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default="",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--concurrency", action="store_true",
                        help="run the lock-discipline rule family (L...) "
                             "in addition to any --select ids, and nothing "
                             "else")
    parser.add_argument("--strict-pragmas", action="store_true",
                        help="also report stale `# repro: allow(...)` "
                             "pragmas (P001)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: python -m repro.analysis src/repro)",
              file=sys.stderr)
        return 2
    select = tuple(part.strip() for part in args.select.split(",") if part.strip())
    if args.concurrency:
        from .framework import rule_ids
        select = select + tuple(
            rule_id for rule_id in rule_ids()
            if rule_id.startswith("L") and rule_id not in select
        )
    try:
        result = analyze_paths(args.paths, Config(select=select),
                               strict_pragmas=args.strict_pragmas)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = render_json(result) if args.format == "json" else render_text(result)
    print(report)
    return result.exit_code
