"""Entry point for ``python -m repro.analysis``."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Reader went away (e.g. `... | head`); suppress the traceback
        # that the interpreter would print while flushing at exit.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
