"""repro.analysis — an AST-based invariant linter for this repository.

The reproduction's core guarantees are conventions the code cannot state:
the sim kernel's replay determinism ("no wall-clock time or global RNG is
consulted anywhere", :mod:`repro.sim.core`), the capability gate every
RPC opcode handler must pass (paper §2.2), the rule that every timed
subroutine must be *driven* (``yield env.process(...)`` / ``yield from``)
or it silently never runs, and the lock discipline the worker pool
depends on (:mod:`repro.core.locks`). This package turns each
convention into a machine-checked rule over the project's own AST, with
cross-module knowledge (which functions are generator processes, which
methods are opcode handlers, which tables feed which dispatchers, which
grants reach which releases) supplied by a project-index pre-pass. A
runtime companion — the Eraser-style lockset checker in
:mod:`repro.analysis.runtime` — watches the interleavings the tests
actually execute (armed via ``REPRO_LOCKSET=1``).

Shipped rules — see ``python -m repro.analysis --list-rules``:

=====  ======================  =================================================
D001   no-wallclock            host-clock reads (time.time, datetime.now, ...)
D002   no-global-rng           random.*, os.urandom, uuid.uuid4 outside
                               repro.sim.rng
D003   unordered-iteration     order-dependent set iteration in sim/core/net
S001   unyielded-process       generator process / env.process(...) as a bare
                               statement
C001   missing-rights-check    opcode handler never reaches require(...)
C002   dead-or-missing-opcode  *OPCODES tables vs. _dispatch wiring
A001   assert-as-validation    assert / AssertionError in library code
L001   lock-leak               a grant misses release() on some path out of
                               its function
L002   yield-under-lock        blocking yield while holding a grant
L003   lock-order              AB-BA cycle in the acquired-while-holding graph
L004   unlocked-shared-access  a ``guarded_by`` field written without its lock
P001   stale-pragma            (``--strict-pragmas``) an allow() pragma that
                               suppressed nothing
=====  ======================  =================================================

The L-family alone: ``python -m repro.analysis --concurrency``.

Per-line suppression: append ``# repro: allow(<rule>[, <rule>...])`` to
the offending line (or put it on a comment line directly above) together
with a justification.

Programmatic use::

    from repro.analysis import Config, analyze_paths
    result = analyze_paths(["src/repro"])
    assert result.clean, [f.render() for f in result.findings]
"""

from . import rules  # noqa: F401  (imports register the shipped rules)
from .engine import AnalysisResult, ParseError, analyze_paths, collect_files
from .framework import (
    Config,
    FileContext,
    Finding,
    Rule,
    Suppressions,
    all_rules,
    register,
    rule_ids,
)
from .index import ProjectIndex
from .reporter import render_json, render_rule_list, render_text

__all__ = [
    "AnalysisResult",
    "Config",
    "FileContext",
    "Finding",
    "ParseError",
    "ProjectIndex",
    "Rule",
    "Suppressions",
    "all_rules",
    "analyze_paths",
    "collect_files",
    "register",
    "render_json",
    "render_rule_list",
    "render_text",
    "rule_ids",
]
