"""repro — a full reproduction of the Bullet file server.

van Renesse, Tanenbaum, Wilschut, *The Design of a High-Performance File
Server*, ICDCS 1989: an immutable, contiguous, whole-file-transfer file
server (from the Amoeba project), rebuilt in Python together with every
substrate it needs — a discrete-event simulator, virtual disks, a shared
Ethernet with Amoeba-style RPC, sparse capabilities, a directory/version
service, a SUN-NFS-style baseline, a log server, and a UNIX emulation —
plus the benchmark harness that regenerates the paper's figures.

Quick start (see examples/quickstart.py for the full version)::

    from repro import (
        BulletServer, BulletClient, Environment, Ethernet, MirroredDiskSet,
        RpcTransport, DEFAULT_TESTBED, VirtualDisk, run_process,
    )

    env = Environment()
    eth = Ethernet(env, DEFAULT_TESTBED.ethernet)
    rpc = RpcTransport(env, eth, DEFAULT_TESTBED.cpu)
    disks = [VirtualDisk(env, DEFAULT_TESTBED.disk, name=f"d{i}") for i in (0, 1)]
    server = BulletServer(env, MirroredDiskSet(env, disks), DEFAULT_TESTBED,
                          transport=rpc)
    server.format()
    run_process(env, server.boot())

    client = BulletClient(env, rpc, server.port)
    cap = run_process(env, client.create(b"an immutable file", 2))
    assert run_process(env, client.read(cap)) == b"an immutable file"
"""

from .btree import ImmutableBTree
from .capability import (
    ALL_RIGHTS,
    Capability,
    NULL_CAPABILITY,
    RIGHT_ADMIN,
    RIGHT_CREATE,
    RIGHT_DELETE,
    RIGHT_MODIFY,
    RIGHT_READ,
    local_verifier,
    mint_owner,
    port_for_name,
    restrict,
    verify,
)
from .client import (
    BulletClient,
    CachingBulletClient,
    DirectoryClient,
    LocalBulletStub,
    ReplicaSetClient,
    WorkstationCache,
    replicate_file,
)
from .core import (
    BulletCache,
    BulletServer,
    ExtentFreeList,
    Inode,
    InodeTable,
    ScanReport,
    VolumeLayout,
    compact_disk,
    nightly_compaction,
    render_layout,
    scan_volume,
)
from .client.retry import Retrier, RetryPolicy
from .directory import DirectoryServer
from .disk import MirroredDiskSet, VirtualDisk
from .faults import (
    FaultController,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    arm_fail_after_writes,
)
from .errors import (
    BadRequestError,
    CapabilityError,
    ConsistencyError,
    DiskIOError,
    ExistsError,
    FileTooBigError,
    NoSpaceError,
    NotEmptyError,
    NotFoundError,
    ReproError,
    RightsError,
    RpcTimeoutError,
    ServerDownError,
    Status,
)
from .gc import GcReport, gc_daemon, gc_sweep
from .logsvc import LogServer
from .net import (
    Ethernet,
    Gateway,
    RpcReply,
    RpcRequest,
    RpcTransport,
    WideAreaLink,
    WideAreaProfile,
    connect_sites,
)
from .nfs import NfsClient, NfsServer
from .profiles import (
    DEFAULT_TESTBED,
    BulletProfile,
    CpuProfile,
    DiskProfile,
    EthernetProfile,
    NfsProfile,
    Testbed,
)
from .sim import Environment, SeededStream, Tracer, run_process
from .unixemu import UnixEmulation

__version__ = "1.0.0"

__all__ = [
    # capability
    "ALL_RIGHTS", "Capability", "NULL_CAPABILITY", "RIGHT_ADMIN",
    "RIGHT_CREATE", "RIGHT_DELETE", "RIGHT_MODIFY", "RIGHT_READ",
    "local_verifier", "mint_owner", "port_for_name", "restrict", "verify",
    # clients
    "BulletClient", "CachingBulletClient", "DirectoryClient",
    "LocalBulletStub", "ReplicaSetClient", "Retrier", "RetryPolicy",
    "WorkstationCache", "replicate_file",
    # core
    "BulletCache", "BulletServer", "ExtentFreeList", "Inode", "InodeTable",
    "ScanReport", "VolumeLayout", "compact_disk", "nightly_compaction",
    "render_layout", "scan_volume",
    # servers
    "DirectoryServer", "LogServer", "NfsClient", "NfsServer", "UnixEmulation",
    # fault plane
    "FaultController", "FaultEvent", "FaultInjector", "FaultPlan",
    "arm_fail_after_writes",
    # substrate
    "MirroredDiskSet", "VirtualDisk",
    "Ethernet", "RpcReply", "RpcRequest", "RpcTransport",
    "Gateway", "WideAreaLink", "WideAreaProfile", "connect_sites",
    "Environment", "SeededStream", "Tracer", "run_process",
    # garbage collection
    "GcReport", "gc_daemon", "gc_sweep",
    # database pattern
    "ImmutableBTree",
    # profiles
    "DEFAULT_TESTBED", "BulletProfile", "CpuProfile", "DiskProfile",
    "EthernetProfile", "NfsProfile", "Testbed",
    # errors
    "BadRequestError", "CapabilityError", "ConsistencyError", "DiskIOError",
    "ExistsError", "FileTooBigError", "NoSpaceError", "NotEmptyError",
    "NotFoundError", "ReproError", "RightsError", "RpcTimeoutError",
    "ServerDownError", "Status",
    "__version__",
]
