"""Immutable B-tree (§2's database-over-many-small-files pattern)."""

from .nodes import InternalNode, LeafNode, decode_node
from .tree import ImmutableBTree

__all__ = ["ImmutableBTree", "InternalNode", "LeafNode", "decode_node"]
