"""Node encoding for the immutable B-tree (§2's database pattern).

"Data bases can be subdivided over many smaller Bullet files, for
example based on the identifying keys." Each B-tree node is one
immutable Bullet file; an update path-copies the nodes it touches and
yields a brand-new root capability, so every committed root is a
consistent snapshot forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..capability import CAP_WIRE_SIZE, Capability
from ..errors import ConsistencyError

__all__ = ["LeafNode", "InternalNode", "decode_node"]

_LEAF_MAGIC = 0xB7EE1EAF
_INTERNAL_MAGIC = 0xB7EE0000


@dataclass
class LeafNode:
    """Sorted (key, value) pairs; keys and values are bytes."""

    keys: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def encode(self) -> bytes:
        parts = [_LEAF_MAGIC.to_bytes(4, "big"),
                 len(self.keys).to_bytes(4, "big")]
        for key, value in zip(self.keys, self.values):
            parts.append(len(key).to_bytes(2, "big"))
            parts.append(key)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def decode_body(cls, data: bytes) -> "LeafNode":
        count = int.from_bytes(data[4:8], "big")
        keys, values = [], []
        offset = 8
        for _ in range(count):
            klen = int.from_bytes(data[offset:offset + 2], "big")
            offset += 2
            keys.append(bytes(data[offset:offset + klen]))
            offset += klen
            vlen = int.from_bytes(data[offset:offset + 4], "big")
            offset += 4
            values.append(bytes(data[offset:offset + vlen]))
            offset += vlen
        return cls(keys=keys, values=values)


@dataclass
class InternalNode:
    """``len(children) == len(separators) + 1``; keys < separators[i]
    descend into children[i]."""

    separators: list = field(default_factory=list)   # bytes keys
    children: list = field(default_factory=list)     # Capability per child

    def encode(self) -> bytes:
        parts = [_INTERNAL_MAGIC.to_bytes(4, "big"),
                 len(self.separators).to_bytes(4, "big")]
        for sep in self.separators:
            parts.append(len(sep).to_bytes(2, "big"))
            parts.append(sep)
        for child in self.children:
            parts.append(child.pack())
        return b"".join(parts)

    @classmethod
    def decode_body(cls, data: bytes) -> "InternalNode":
        count = int.from_bytes(data[4:8], "big")
        separators = []
        offset = 8
        for _ in range(count):
            klen = int.from_bytes(data[offset:offset + 2], "big")
            offset += 2
            separators.append(bytes(data[offset:offset + klen]))
            offset += klen
        children = []
        for _ in range(count + 1):
            children.append(Capability.unpack(data[offset:offset + CAP_WIRE_SIZE]))
            offset += CAP_WIRE_SIZE
        return cls(separators=separators, children=children)


def decode_node(data: bytes):
    """Decode either node kind from its file bytes."""
    if len(data) < 8:
        raise ConsistencyError("B-tree node file truncated")
    magic = int.from_bytes(data[0:4], "big")
    if magic == _LEAF_MAGIC:
        return LeafNode.decode_body(data)
    if magic == _INTERNAL_MAGIC:
        return InternalNode.decode_body(data)
    raise ConsistencyError(f"not a B-tree node (magic {magic:#x})")
