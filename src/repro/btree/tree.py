"""A persistent B-tree stored as many small immutable Bullet files.

The paper's prescription for databases (§2): subdivide over many small
files keyed by the identifying keys. Every node is one immutable file;
mutations **path-copy**: they rewrite only the nodes on the root-to-leaf
path and return a *new root capability*. Consequences, all for free:

* every committed root is an immutable, consistent snapshot — readers
  are never blocked or disturbed;
* version history = the sequence of root capabilities (bind the current
  one in the directory service, the chain keeps the rest);
* crash safety = the directory's atomic replace.

Deletes are *lazy* (no rebalancing — underfull leaves are allowed and
empty ones are unlinked); :meth:`ImmutableBTree.rebuild` bulk-rebuilds a
packed tree, the moral equivalent of the 3 a.m. compaction. Superseded
nodes become unreachable and are reclaimed by the GC sweep via
:meth:`collect_caps` (see :mod:`repro.gc`).
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..capability import Capability
from ..errors import BadRequestError, NotFoundError
from .nodes import InternalNode, LeafNode, decode_node

__all__ = ["ImmutableBTree"]


class ImmutableBTree:
    """Handle for operating on trees stored via a Bullet stub.

    The handle is stateless with respect to tree contents: every
    operation takes and/or returns root capabilities, so any number of
    tree versions coexist.
    """

    def __init__(self, bullet_stub, fanout: int = 32, p_factor: int = 1):
        if fanout < 4:
            raise BadRequestError("fanout must be at least 4")
        self.bullet = bullet_stub
        self.env = bullet_stub.env
        self.fanout = fanout
        self.p_factor = p_factor

    # ------------------------------------------------------------ plumbing

    def _load(self, cap: Capability):
        data = yield from self.bullet.read(cap)
        return decode_node(data)

    def _store(self, node):
        return (yield from self.bullet.create(node.encode(), self.p_factor))

    # ------------------------------------------------------------- create

    def empty(self):
        """Process: a fresh empty tree; returns its root capability."""
        return (yield from self._store(LeafNode()))

    # -------------------------------------------------------------- reads

    def get(self, root: Capability, key: bytes):
        """Process: the value for ``key``; NotFoundError if absent."""
        node = yield from self._load(root)
        while isinstance(node, InternalNode):
            index = bisect.bisect_right(node.separators, key)
            node = yield from self._load(node.children[index])
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        raise NotFoundError(f"key {key!r} not in tree")

    def contains(self, root: Capability, key: bytes):
        """Process: membership test."""
        try:
            yield from self.get(root, key)
        except NotFoundError:
            return False
        return True

    def items(self, root: Capability, lo: Optional[bytes] = None,
              hi: Optional[bytes] = None):
        """Process: sorted (key, value) pairs with lo <= key < hi."""
        out = []
        yield from self._collect_items(root, lo, hi, out)
        return out

    def _collect_items(self, cap: Capability, lo, hi, out):
        node = yield from self._load(cap)
        if isinstance(node, LeafNode):
            for key, value in zip(node.keys, node.values):
                if (lo is None or key >= lo) and (hi is None or key < hi):
                    out.append((key, value))
            return
        for index, child in enumerate(node.children):
            # Prune subtrees wholly outside the range.
            if lo is not None and index < len(node.separators) \
                    and node.separators[index] <= lo:
                continue
            if hi is not None and index > 0 and node.separators[index - 1] >= hi:
                break
            yield from self._collect_items(child, lo, hi, out)

    def height(self, root: Capability):
        """Process: tree height (leaf-only tree has height 1)."""
        node = yield from self._load(root)
        levels = 1
        while isinstance(node, InternalNode):
            node = yield from self._load(node.children[0])
            levels += 1
        return levels

    # ------------------------------------------------------------- writes

    def insert(self, root: Capability, key: bytes, value: bytes):
        """Process: a new root with ``key`` bound to ``value`` (existing
        binding replaced). The old root remains a valid snapshot."""
        if not isinstance(key, (bytes, bytearray)):
            raise BadRequestError("keys must be bytes")
        result = yield from self._insert_into(root, bytes(key), bytes(value))
        new_cap, split = result
        if split is None:
            return new_cap
        sep, right_cap = split
        return (yield from self._store(
            InternalNode(separators=[sep], children=[new_cap, right_cap])
        ))

    def _insert_into(self, cap: Capability, key: bytes, value: bytes):
        node = yield from self._load(cap)
        if isinstance(node, LeafNode):
            keys = list(node.keys)
            values = list(node.values)
            index = bisect.bisect_left(keys, key)
            if index < len(keys) and keys[index] == key:
                values[index] = value
            else:
                keys.insert(index, key)
                values.insert(index, value)
            if len(keys) <= self.fanout:
                new_cap = yield from self._store(LeafNode(keys, values))
                return new_cap, None
            mid = len(keys) // 2
            left = LeafNode(keys[:mid], values[:mid])
            right = LeafNode(keys[mid:], values[mid:])
            left_cap = yield from self._store(left)
            right_cap = yield from self._store(right)
            return left_cap, (right.keys[0], right_cap)
        # Internal node: recurse, path-copying.
        index = bisect.bisect_right(node.separators, key)
        child_cap, split = yield from self._insert_into(
            node.children[index], key, value)
        separators = list(node.separators)
        children = list(node.children)
        children[index] = child_cap
        if split is not None:
            sep, right_cap = split
            separators.insert(index, sep)
            children.insert(index + 1, right_cap)
        if len(children) <= self.fanout:
            new_cap = yield from self._store(InternalNode(separators, children))
            return new_cap, None
        mid = len(separators) // 2
        push_up = separators[mid]
        left = InternalNode(separators[:mid], children[:mid + 1])
        right = InternalNode(separators[mid + 1:], children[mid + 1:])
        left_cap = yield from self._store(left)
        right_cap = yield from self._store(right)
        return left_cap, (push_up, right_cap)

    def delete(self, root: Capability, key: bytes):
        """Process: a new root without ``key`` (NotFoundError if absent).

        Lazy: leaves may go underfull; an empty leaf is unlinked from
        its parent; the root collapses when reduced to one child.
        """
        new_cap = yield from self._delete_from(root, bytes(key))
        if new_cap is None:
            # The whole tree emptied out.
            return (yield from self.empty())
        node = yield from self._load(new_cap)
        while isinstance(node, InternalNode) and len(node.children) == 1:
            new_cap = node.children[0]
            node = yield from self._load(new_cap)
        return new_cap

    def _delete_from(self, cap: Capability, key: bytes):
        """Returns the replacement capability, or None if the subtree
        became empty."""
        node = yield from self._load(cap)
        if isinstance(node, LeafNode):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise NotFoundError(f"key {key!r} not in tree")
            keys = list(node.keys)
            values = list(node.values)
            del keys[index], values[index]
            if not keys:
                return None
            return (yield from self._store(LeafNode(keys, values)))
        index = bisect.bisect_right(node.separators, key)
        child_cap = yield from self._delete_from(node.children[index], key)
        separators = list(node.separators)
        children = list(node.children)
        if child_cap is None:
            del children[index]
            if separators:
                del separators[max(index - 1, 0)]
            if not children:
                return None
        else:
            children[index] = child_cap
        return (yield from self._store(InternalNode(separators, children)))

    # --------------------------------------------------------- maintenance

    def rebuild(self, root: Capability):
        """Process: a packed copy of the tree (new root). Use after many
        lazy deletes — the B-tree's own 3 a.m. compaction."""
        pairs = yield from self.items(root)
        new_root = yield from self.empty()
        for key, value in pairs:
            new_root = yield from self.insert(new_root, key, value)
        return new_root

    def collect_caps(self, root: Capability):
        """Process: every node capability reachable from ``root`` — the
        extra root set handed to :func:`repro.gc.gc_sweep` so live tree
        nodes are touched and survive aging."""
        out = [root]
        node = yield from self._load(root)
        if isinstance(node, InternalNode):
            for child in node.children:
                out.extend((yield from self.collect_caps(child)))
        return out

    def node_count(self, root: Capability):
        """Process: number of node files in this tree version."""
        caps = yield from self.collect_caps(root)
        return len(caps)
