"""Network substrate (S6): shared Ethernet + Amoeba-style RPC."""

from .ethernet import Ethernet, EthernetStats
from .gateway import Gateway, WideAreaLink, WideAreaProfile, connect_sites
from .rpc import RpcReply, RpcRequest, RpcTransport, ServiceEndpoint

__all__ = [
    "Ethernet",
    "EthernetStats",
    "Gateway",
    "WideAreaLink",
    "WideAreaProfile",
    "connect_sites",
    "RpcReply",
    "RpcRequest",
    "RpcTransport",
    "ServiceEndpoint",
]
