"""The shared 10 Mb/s Ethernet segment.

One transmission occupies the medium at a time. A message larger than
the MTU is fragmented into packets; each packet costs host software
overhead (driver/protocol, charged *outside* the medium so other hosts
can interleave) plus wire occupancy (charged *inside* the medium).

"Measurements have been done on a normally loaded Ethernet" (§4): the
optional background-traffic process occupies the medium with seeded,
exponential-inter-arrival packets at the profile's utilization, so
foreground transfers experience realistic queueing jitter — long bursts
(1 MB transfers) queue behind more background packets than short ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..profiles import EthernetProfile
from ..sim import Environment, Resource, SeededStream, Tracer

__all__ = ["Ethernet", "EthernetStats"]


@dataclass
class EthernetStats:
    """Traffic counters for the segment."""

    packets: int = 0
    payload_bytes: int = 0
    wire_time: float = 0.0
    background_packets: int = 0
    lost_packets: int = 0


class Ethernet:
    """A single shared Ethernet segment."""

    def __init__(
        self,
        env: Environment,
        profile: EthernetProfile,
        stream: Optional[SeededStream] = None,
        background_load: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.profile = profile
        self.stats = EthernetStats()
        self._medium = Resource(env, capacity=1)
        self._tracer = tracer
        self._stream = stream
        if profile.loss_probability > 0 and stream is None:
            raise ValueError("packet loss requires a seeded stream")
        if background_load:
            if stream is None:
                raise ValueError("background load requires a seeded stream")
            # Intentional daemon fork: seeded background traffic competes
            # for the medium for the whole experiment, detached by design.
            env.process(self._background_traffic())  # repro: allow(S001)

    @property
    def lossy(self) -> bool:
        return self.profile.loss_probability > 0

    def packets_for(self, nbytes: int) -> int:
        """How many packets a message of ``nbytes`` fragments into."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if nbytes == 0:
            return 1  # a header-only packet still crosses the wire
        payload = self.profile.max_payload
        return (nbytes + payload - 1) // payload

    def message_cost_lower_bound(self, nbytes: int) -> float:
        """Uncontended time to move an ``nbytes`` message (for tests and
        back-of-envelope checks)."""
        packets = self.packets_for(nbytes)
        payload = self.profile.max_payload
        total = packets * self.profile.per_packet_overhead
        remaining = nbytes
        for _ in range(packets):
            chunk = min(remaining, payload) if nbytes else 0
            total += self.profile.wire_time(chunk)
            remaining -= chunk
        return total

    def send_message(self, nbytes: int):
        """A process moving an ``nbytes`` message across the segment.

        Yields until the last packet has left the wire. Returns True
        when the whole message arrived; False when any fragment was lost
        (the RPC layer recovers by selective retransmission). The sender
        pays full cost either way.
        """
        lost = yield from self.send_fragments(nbytes)
        return not lost

    def send_fragments(self, nbytes: int, indices=None):
        """A process sending (a subset of) a message's fragments.

        ``indices`` selects which fragments of the ``nbytes`` message to
        transmit (None = all). Returns the list of fragment indices that
        were lost on the wire — the retransmission set. Receivers keep
        fragments, so a message is complete once every index has arrived
        (Amoeba's FLIP did fragment-level recovery the same way).
        """
        payload = self.profile.max_payload
        total = self.packets_for(nbytes)
        if indices is None:
            indices = range(total)
        lost = []
        for index in indices:
            if index == total - 1:
                chunk = nbytes - payload * (total - 1) if nbytes else 0
            else:
                chunk = payload
            # Host-side packet preparation: does not occupy the medium.
            yield self.env.timeout(self.profile.per_packet_overhead)
            grant = self._medium.request()
            yield grant
            wire = self.profile.wire_time(chunk)
            yield self.env.timeout(wire)
            self._medium.release(grant)
            self.stats.packets += 1
            self.stats.payload_bytes += chunk
            self.stats.wire_time += wire
            if self.lossy and self._stream.random() < self.profile.loss_probability:
                self.stats.lost_packets += 1
                lost.append(index)
        return lost

    @property
    def medium_queue_length(self) -> int:
        return self._medium.queue_length

    def _background_traffic(self):
        """Seeded background packets at the profile's mean utilization."""
        p = self.profile
        if p.background_utilization <= 0:
            return
        wire = p.wire_time(p.background_packet_bytes)
        rate = p.background_utilization / wire  # packets per second
        while True:
            yield self.env.timeout(self._stream.expovariate(rate))
            grant = self._medium.request()
            yield grant
            yield self.env.timeout(wire)
            self._medium.release(grant)
            self.stats.background_packets += 1
            self.stats.wire_time += wire
