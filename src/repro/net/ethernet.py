"""The shared 10 Mb/s Ethernet segment.

One transmission occupies the medium at a time. A message larger than
the MTU is fragmented into packets; each packet costs host software
overhead (driver/protocol, charged *outside* the medium so other hosts
can interleave) plus wire occupancy (charged *inside* the medium).

"Measurements have been done on a normally loaded Ethernet" (§4): the
optional background-traffic process occupies the medium with seeded,
exponential-inter-arrival packets at the profile's utilization, so
foreground transfers experience realistic queueing jitter — long bursts
(1 MB transfers) queue behind more background packets than short ones.
"""

from __future__ import annotations

from typing import Optional

from ..obs import MetricsRegistry, RegistryStats
from ..profiles import EthernetProfile
from ..sim import Environment, Resource, SeededStream, Tracer

__all__ = ["Ethernet", "EthernetStats"]


class EthernetStats(RegistryStats):
    """Traffic counters for the segment, backed by the observability
    registry (``repro_ethernet_<field>_total{segment=...}``)."""

    _PREFIX = "repro_ethernet"
    _COUNTER_FIELDS = (
        "packets",
        "payload_bytes",
        "wire_time",
        "background_packets",
        "lost_packets",
    )


class Ethernet:
    """A single shared Ethernet segment."""

    def __init__(
        self,
        env: Environment,
        profile: EthernetProfile,
        stream: Optional[SeededStream] = None,
        background_load: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "ether",
    ):
        self.env = env
        self.profile = profile
        self.name = name
        self.stats = EthernetStats(metrics, segment=name)
        # Direct counter handles for the per-fragment hot loop (the
        # facade's attribute protocol costs a getattr+setattr per bump).
        self._packets = self.stats.handle("packets")
        self._payload_bytes = self.stats.handle("payload_bytes")
        self._wire_time = self.stats.handle("wire_time")
        self._background_packets = self.stats.handle("background_packets")
        self._medium = Resource(env, capacity=1)
        self._tracer = tracer
        self._stream = stream
        # Fault-plane injection seams (see repro.faults): a partition
        # drops every fragment, a loss window drops a seeded fraction,
        # a latency spike charges extra time per fragment.
        self._fault_partitioned = False
        self._fault_loss = 0.0
        self._fault_loss_stream: Optional[SeededStream] = None
        self._fault_extra_latency = 0.0
        if profile.loss_probability > 0 and stream is None:
            raise ValueError("packet loss requires a seeded stream")
        if background_load:
            if stream is None:
                raise ValueError("background load requires a seeded stream")
            # Intentional daemon fork: seeded background traffic competes
            # for the medium for the whole experiment, detached by design.
            env.process(self._background_traffic())  # repro: allow(S001)

    @property
    def lossy(self) -> bool:
        """True when fragments can currently be lost — by the profile's
        steady-state loss or by an injected partition/loss window. The
        RPC layer consults this to arm its retransmission machinery."""
        return (
            self.profile.loss_probability > 0
            or self._fault_partitioned
            or self._fault_loss > 0
        )

    def set_fault(
        self,
        partitioned: Optional[bool] = None,
        loss: Optional[float] = None,
        loss_stream: Optional[SeededStream] = None,
        extra_latency: Optional[float] = None,
    ) -> None:
        """Adjust the injected fault state (None leaves a knob alone).

        ``loss`` > 0 requires a seeded stream (passed here or earlier)
        so the drop pattern replays deterministically; the stream is
        separate from the profile's, so injecting a window does not
        perturb background traffic or steady-state loss draws.
        """
        if partitioned is not None:
            self._fault_partitioned = bool(partitioned)
        if loss_stream is not None:
            self._fault_loss_stream = loss_stream
        if loss is not None:
            if not 0.0 <= loss <= 1.0:
                raise ValueError(f"loss probability must be in [0, 1], got {loss}")
            if loss > 0 and self._fault_loss_stream is None:
                raise ValueError("injected packet loss requires a seeded stream")
            self._fault_loss = loss
        if extra_latency is not None:
            if extra_latency < 0:
                raise ValueError(f"extra latency must be >= 0, got {extra_latency}")
            self._fault_extra_latency = extra_latency

    def packets_for(self, nbytes: int) -> int:
        """How many packets a message of ``nbytes`` fragments into."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if nbytes == 0:
            return 1  # a header-only packet still crosses the wire
        payload = self.profile.max_payload
        return (nbytes + payload - 1) // payload

    def message_cost_lower_bound(self, nbytes: int) -> float:
        """Uncontended time to move an ``nbytes`` message (for tests and
        back-of-envelope checks)."""
        packets = self.packets_for(nbytes)
        payload = self.profile.max_payload
        total = packets * self.profile.per_packet_overhead
        remaining = nbytes
        for _ in range(packets):
            chunk = min(remaining, payload) if nbytes else 0
            total += self.profile.wire_time(chunk)
            remaining -= chunk
        return total

    def send_message(self, nbytes: int):
        """A process moving an ``nbytes`` message across the segment.

        Yields until the last packet has left the wire. Returns True
        when the whole message arrived; False when any fragment was lost
        (the RPC layer recovers by selective retransmission). The sender
        pays full cost either way.
        """
        lost = yield from self.send_fragments(nbytes)
        return not lost

    def send_fragments(self, nbytes: int, indices=None):
        """A process sending (a subset of) a message's fragments.

        ``indices`` selects which fragments of the ``nbytes`` message to
        transmit (None = all). Returns the list of fragment indices that
        were lost on the wire — the retransmission set. Receivers keep
        fragments, so a message is complete once every index has arrived
        (Amoeba's FLIP did fragment-level recovery the same way).
        """
        env = self.env
        profile = self.profile
        payload = profile.max_payload
        overhead = profile.per_packet_overhead
        wire_time = profile.wire_time
        total = self.packets_for(nbytes)
        last_chunk = nbytes - payload * (total - 1) if nbytes else 0
        # Only two distinct fragment sizes exist per message (full
        # payload and the tail), so their wire times are computed once.
        wire_full = wire_time(payload)
        wire_last = wire_time(last_chunk)
        if indices is None:
            indices = range(total)
        idx = list(indices)
        n = len(idx)
        lost = []
        i = 0
        while i < n:
            # Analytic segment: collapse a run of fragments into one
            # "medium busy until T" timeout when provably unobservable —
            # the transfer is deterministic (no loss source, no latency
            # spike: nothing draws RNG or forks the outcome), the medium
            # is free (no holder whose release we would reorder against),
            # and no other event fires strictly before the segment ends
            # (peek/solo guard, see sim.core). Timing is the same left
            # fold of per-hop delays the exact path would walk, so the
            # resume instant is bit-identical.
            if (env.fast and env._solo and not self.lossy
                    and self._fault_extra_latency == 0.0
                    and self._medium.idle):
                horizon = env.peek()
                t = env.now
                j = i
                while j < n:
                    wire = wire_last if idx[j] == total - 1 else wire_full
                    t_next = (t + overhead) + wire
                    if t_next >= horizon:
                        break  # an observer fires at or before this hop
                    t = t_next
                    j += 1
                if j > i:
                    delays = []
                    for k in range(i, j):
                        delays.append(overhead)
                        delays.append(
                            wire_last if idx[k] == total - 1 else wire_full)
                    yield env.timeout_batch(delays)
                    # Flush traffic counters fragment by fragment: the
                    # wire-time counter is a float accumulator, and only
                    # per-fragment increments reproduce the reference
                    # rounding bit for bit.
                    inc_packets = self._packets.inc
                    inc_payload = self._payload_bytes.inc
                    inc_wire = self._wire_time.inc
                    for k in range(i, j):
                        last = idx[k] == total - 1
                        inc_packets(1)
                        inc_payload(last_chunk if last else payload)
                        inc_wire(wire_last if last else wire_full)
                    i = j
                    continue
            index = idx[i]
            last = index == total - 1
            chunk = last_chunk if last else payload
            # Host-side packet preparation: does not occupy the medium.
            yield env.timeout(overhead)
            grant = self._medium.request()
            # Crash-safe: a sender interrupted mid-transmission (a
            # crashing server's worker killed while its reply is on the
            # wire) must not keep the shared medium forever — every
            # later sender would queue behind a grant nobody releases
            # and the whole system would wedge. Found by the model
            # checker (repro.modelcheck) as a scheduler deadlock.
            try:
                yield grant
                wire = wire_last if last else wire_full
                yield env.timeout(wire)
            finally:
                if grant.triggered:
                    self._medium.release(grant)
                else:
                    self._medium.cancel(grant)
            if self._fault_extra_latency > 0:
                # Injected latency spike: charged outside the medium so
                # other hosts still interleave.
                yield env.timeout(self._fault_extra_latency)
            self._packets.inc(1)
            self._payload_bytes.inc(chunk)
            self._wire_time.inc(wire)
            if self._fragment_lost():
                self.stats.lost_packets += 1
                lost.append(index)
            i += 1
        return lost

    def _fragment_lost(self) -> bool:
        """Loss decision for one fragment: partition drops everything,
        then the injected loss window, then the profile's steady loss.
        Draws come from the respective streams only when that source is
        active, so fault windows never perturb the profile's stream."""
        if self._fault_partitioned:
            return True
        if (self._fault_loss > 0
                and self._fault_loss_stream.random() < self._fault_loss):
            return True
        p = self.profile.loss_probability
        return p > 0 and self._stream.random() < p

    @property
    def medium_queue_length(self) -> int:
        return self._medium.queue_length

    def _background_traffic(self):
        """Seeded background packets at the profile's mean utilization."""
        p = self.profile
        if p.background_utilization <= 0:
            return
        wire = p.wire_time(p.background_packet_bytes)
        rate = p.background_utilization / wire  # packets per second
        env = self.env
        stream = self._stream
        medium = self._medium
        inc_bg = self._background_packets.inc
        inc_wire = self._wire_time.inc
        # Inter-arrival pre-drawn by a previous batch round, else None.
        delay = None
        while True:
            if delay is None:
                delay = stream.expovariate(rate)
            # Collapse whole idle-gap packet trains into one timeout.
            # Drawing the next inter-arrival "early" (at decision time
            # instead of after the previous wire) is exact because the
            # guard proves nothing else touches the stream inside the
            # window; the draw *sequence* is what determinism pins.
            if env.fast and env._solo and medium.idle:
                horizon = env.peek()
                t = env.now
                batch: list = []
                # The length cap bounds one collapse round when nothing
                # else is scheduled at all (horizon +inf: this daemon is
                # the whole simulation) — each round then advances the
                # clock and loops, exactly like the reference would.
                while len(batch) < 8192:
                    t_next = (t + delay) + wire
                    if t_next >= horizon:
                        break  # this packet would overlap an observer
                    batch.append(delay)
                    batch.append(wire)
                    t = t_next
                    delay = stream.expovariate(rate)
                if batch:
                    for _ in range(len(batch) // 2):
                        inc_bg(1)
                        inc_wire(wire)
                    yield env.timeout_batch(batch)
                    continue  # `delay` holds the next packet's gap
            yield env.timeout(delay)
            delay = None
            grant = medium.request()
            yield grant
            yield env.timeout(wire)
            medium.release(grant)
            inc_bg(1)
            inc_wire(wire)
