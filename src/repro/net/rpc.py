"""Amoeba-style RPC over the simulated Ethernet (substrate S6).

Amoeba's kernel primitives were ``trans`` (client: send request, await
reply), ``getreq`` (server: await a request on a port), and ``putrep``
(server: send the reply). We reproduce that trio:

* Servers :meth:`~RpcTransport.register` a 48-bit port and loop on
  ``yield endpoint.getreq()`` / ``yield env.process(endpoint.putrep(...))``.
* Clients call ``yield env.process(rpc.trans(port, request))``.

Messages carry real Python payloads (capabilities, bytes) for
functionality, and a computed **wire size** for timing; the Ethernet
charges fragmentation, per-packet overhead and medium contention.

Error model: server handlers either return a reply or raise a
:class:`~repro.errors.ReproError`; the transport marshals the status
code, and the client stub re-raises the matching exception — exactly
how Amoeba's std error codes travelled.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..capability import CAP_WIRE_SIZE, Capability
from ..errors import (
    ConsistencyError,
    ReproError,
    RpcTimeoutError,
    ServerDownError,
    Status,
    error_for_status,
)
from ..obs import MetricsRegistry
from ..profiles import CpuProfile
from ..sim import AnyOf, Environment, Event, Store, Tracer

__all__ = ["RpcRequest", "RpcReply", "RpcTransport", "ServiceEndpoint"]

#: Fixed bytes of an RPC header on the wire (transaction id, port,
#: opcode, sizes) — mirrors Amoeba's header block.
HEADER_WIRE_SIZE = 32


@dataclass(slots=True)
class RpcRequest:
    """A request as seen by a server."""

    opcode: int
    cap: Optional[Capability] = None
    args: tuple = ()
    body: bytes = b""
    # Filled by the transport:
    reply_event: Optional[Event] = None
    txid: Optional[int] = None  # transaction id for duplicate suppression
    reply_missing: Optional[list] = None  # reply fragments still missing
    queue_span: int = 0  # span opened at inbox entry, closed at getreq

    @property
    def wire_size(self) -> int:
        size = HEADER_WIRE_SIZE + len(self.body) + 8 * len(self.args)
        if self.cap is not None:
            size += CAP_WIRE_SIZE
        return size


@dataclass(slots=True)
class RpcReply:
    """A reply as seen by a client."""

    status: int = int(Status.OK)
    args: tuple = ()
    body: bytes = b""
    caps: tuple = ()
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status == Status.OK

    @property
    def wire_size(self) -> int:
        return (
            HEADER_WIRE_SIZE
            + len(self.body)
            + 8 * len(self.args)
            + CAP_WIRE_SIZE * len(self.caps)
        )


class ServiceEndpoint:
    """A registered server port: an inbox of pending requests, plus the
    at-most-once bookkeeping (in-progress transaction ids and a bounded
    cache of recent replies for duplicate-request resends)."""

    REPLY_CACHE_SIZE = 256

    def __init__(self, transport: "RpcTransport", port: int):
        self.transport = transport
        self.port = port
        self.inbox: Store = Store(transport.env)
        self.down = False
        self.in_progress: set[int] = set()
        self.replying: set[int] = set()  # replies currently on the wire
        self.reply_cache: "OrderedDict[int, RpcReply]" = OrderedDict()

    def getreq(self) -> Event:
        """Event firing with the next :class:`RpcRequest`."""
        return self.inbox.get()

    def putrep(self, request: RpcRequest, reply: RpcReply):
        """A process transmitting ``reply`` for ``request``.

        The server blocks until the reply has left the wire (the Bullet
        server is single-threaded, §3), then the client's trans fires.
        The reply is cached against the transaction id so a duplicate
        (retransmitted) request is answered without re-executing — the
        at-most-once half of Amoeba's RPC semantics.
        """
        if request.txid is not None:
            self.in_progress.discard(request.txid)
            self.reply_cache[request.txid] = reply
            while len(self.reply_cache) > self.REPLY_CACHE_SIZE:
                self.reply_cache.popitem(last=False)
            self.replying.add(request.txid)
        lost = yield from self.transport.ethernet.send_fragments(
            reply.wire_size
        )
        if request.txid is not None:
            self.replying.discard(request.txid)
        if request.reply_event is None:
            raise ConsistencyError("reply for a request that was never sent")
        request.reply_missing = lost or None
        if not lost and not request.reply_event.triggered:
            request.reply_event.succeed(reply)

    def crash(self) -> None:
        """Take the service down; pending and future requests fail."""
        self.down = True
        self.in_progress.clear()
        self.replying.clear()
        self.reply_cache.clear()
        while True:
            pending = self.inbox.try_get()
            if pending is None:
                break
            if not pending.reply_event.triggered:
                pending.reply_event.fail(
                    ServerDownError(f"port {self.port:#x} crashed")
                )

    def restart(self) -> None:
        """Bring a crashed endpoint back into service."""
        self.down = False


class RpcTransport:
    """The port registry plus client-side ``trans``."""

    def __init__(self, env: Environment, ethernet, cpu: CpuProfile,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.env = env
        self.ethernet = ethernet
        self.cpu = cpu
        self._ports: dict[int, ServiceEndpoint] = {}
        self._routes: list = []
        self._tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._retransmits = self.metrics.counter("repro_rpc_retransmits_total")
        self._txid = 0
        #: Retransmission policy (only exercised on lossy networks or
        #: when a call sets a timeout): resend after this interval, give
        #: up after max_retransmits sends.
        self.retransmit_interval = 0.5
        self.max_retransmits = 10

    @property
    def stats_retransmits(self) -> int:
        """Retransmission count, read from the registry counter
        (``repro_rpc_retransmits_total``) so the transport and the
        exporters cannot disagree."""
        return self._retransmits.value

    @stats_retransmits.setter
    def stats_retransmits(self, value: int) -> None:
        self._retransmits.inc(value - self._retransmits.value)

    def add_route(self, gateway) -> None:
        """Install a gateway consulted for ports not served locally
        (see :mod:`repro.net.gateway`)."""
        self._routes.append(gateway)

    def register(self, port: int) -> ServiceEndpoint:
        """Claim ``port`` for a server; returns its endpoint."""
        if port in self._ports and not self._ports[port].down:
            raise ValueError(f"port {port:#x} already registered")
        endpoint = ServiceEndpoint(self, port)
        self._ports[port] = endpoint
        return endpoint

    def lookup(self, port: int) -> Optional[ServiceEndpoint]:
        """The endpoint registered on ``port``, if any (locate step)."""
        return self._ports.get(port)

    def new_txid(self) -> int:
        """Mint a transaction id up front.

        Normally :meth:`trans` assigns txids itself, but a client that
        wants to *re-run* a non-idempotent transaction (a CREATE whose
        reply was lost) pre-assigns one and reuses the request object:
        every resend then carries the same txid, so the server's
        duplicate suppression turns the retry into an idempotent
        reply-replay instead of a second execution.
        """
        self._txid += 1
        return self._txid

    def trans(self, port: int, request: RpcRequest,
              timeout: Optional[float] = None):
        """A process performing one transaction: send ``request`` to
        ``port``, await the reply. Returns the :class:`RpcReply`.

        Raises :class:`ServerDownError` for unknown/crashed ports (after
        the locate timeout), :class:`RpcTimeoutError` when ``timeout``
        expires, and re-raises marshalled server errors.
        """
        endpoint = self._ports.get(port)
        if endpoint is None or endpoint.down:
            # Not served at this site: try the wide-area gateways
            # ("Gateways provide transparent communication among Amoeba
            # sites", §2.1).
            for gateway in self._routes:
                if gateway.serves(port):
                    yield self.env.timeout(
                        len(request.body) * self.cpu.memcpy_per_byte
                    )
                    yield self.env.process(
                        self.ethernet.send_message(request.wire_size)
                    )
                    reply = yield self.env.process(
                        gateway.forward(port, request, timeout)
                    )
                    yield self.env.timeout(
                        len(reply.body) * self.cpu.memcpy_per_byte
                    )
                    self._trace("rpc", "trans forwarded", port=port,
                                opcode=request.opcode, via=gateway.name)
                    return reply
            # Port locate fails after a retry interval.
            yield self.env.timeout(timeout if timeout is not None else 1.0)
            raise ServerDownError(f"no server listening on port {port:#x}")
        # Marshal, then transmit with retransmission: at-least-once on
        # the wire, exactly-once at the server (duplicate suppression in
        # the endpoint).
        trans_span = 0
        if self._tracer is not None:
            trans_span = self._tracer.begin_span(
                "span", "rpc.trans", port=port, opcode=request.opcode
            )
        attempts = 0
        try:
            # Marshalling copy. An empty body costs a zero-length
            # timeout in the reference; skipping it is exact only when
            # no other event shares this tick (see sim.core).
            delay = len(request.body) * self.cpu.memcpy_per_byte
            if delay or not self.env.can_collapse(self.env.now):
                yield self.env.timeout(delay)
            request.reply_event = Event(self.env)
            if request.txid is None:
                request.txid = self.new_txid()
            deadline = self.env.now + timeout if timeout is not None else None
            missing = None           # fragment indices still to deliver
            request_delivered = False
            while True:
                if not request_delivered:
                    lost = yield from self.ethernet.send_fragments(
                        request.wire_size, missing
                    )
                    if lost:
                        missing = lost  # selective retransmission next round
                    else:
                        request_delivered = True
                        missing = None
                        self._deliver(endpoint, request)
                else:
                    # The request is complete server-side; we are chasing a
                    # lost reply. A header-only probe makes the endpoint
                    # resend its cached reply.
                    probe_lost = yield from self.ethernet.send_fragments(
                        HEADER_WIRE_SIZE
                    )
                    if not probe_lost:
                        self._deliver(endpoint, request)
                attempts += 1
                if not self.ethernet.lossy and timeout is None:
                    # Lossless, no deadline: the reply will come (or the
                    # endpoint will fail the event on a crash).
                    reply = yield request.reply_event
                    break
                wait = self.retransmit_interval
                if deadline is not None:
                    wait = min(wait, max(deadline - self.env.now, 0.0))
                timer = self.env.timeout(wait)
                yield AnyOf(self.env, [request.reply_event, timer])
                if request.reply_event.triggered:
                    if not request.reply_event.ok:
                        raise request.reply_event.value
                    reply = request.reply_event.value
                    break
                if deadline is not None and self.env.now >= deadline:
                    raise RpcTimeoutError(
                        f"transaction on port {port:#x} timed out after {timeout}s"
                    )
                if attempts >= self.max_retransmits:
                    raise RpcTimeoutError(
                        f"transaction on port {port:#x} gave up after "
                        f"{attempts} transmissions"
                    )
                self.stats_retransmits += 1
            # Client-side copy of the reply body out of the network buffers.
            delay = len(reply.body) * self.cpu.memcpy_per_byte
            if delay or not self.env.can_collapse(self.env.now):
                yield self.env.timeout(delay)
        finally:
            if self._tracer is not None:
                self._tracer.end_span(trans_span, "span", "rpc.trans",
                                      attempts=attempts)
        if self._tracer is not None:
            self._trace("rpc", "trans complete", port=port,
                        opcode=request.opcode, status=reply.status)
        return reply

    def _deliver(self, endpoint: ServiceEndpoint, request: RpcRequest) -> None:
        """Hand an arrived request to the endpoint, suppressing
        duplicates of in-progress or already-answered transactions."""
        if endpoint.down:
            if not request.reply_event.triggered:
                request.reply_event.fail(
                    ServerDownError(f"port {endpoint.port:#x} crashed")
                )
            return
        if request.txid in endpoint.replying:
            return  # the reply is on the wire right now; just wait
        cached = endpoint.reply_cache.get(request.txid)
        if cached is not None:
            # Answered before; the reply (or part of it) was lost.
            endpoint.replying.add(request.txid)
            # Intentional fork: retransmitting a cached reply happens
            # behind the server's back; nobody awaits it by design.
            self.env.process(  # repro: allow(S001)
                self._resend_reply(endpoint, request, cached)
            )
            return
        if request.txid in endpoint.in_progress:
            return  # duplicate of a transaction still being served
        endpoint.in_progress.add(request.txid)
        if self._tracer is not None:
            request.queue_span = self._tracer.begin_span(
                "span", "rpc.queue", port=endpoint.port,
                opcode=request.opcode,
            )
        endpoint.inbox.put(request)

    def _resend_reply(self, endpoint: ServiceEndpoint, request: RpcRequest,
                      reply: RpcReply):
        """Selective resend: only the reply fragments the client is
        still missing (all of them when no record exists, e.g. for a
        duplicate arriving after an endpoint restart)."""
        lost = yield self.env.process(
            self.ethernet.send_fragments(reply.wire_size, request.reply_missing)
        )
        endpoint.replying.discard(request.txid)
        if lost:
            request.reply_missing = lost
            return
        request.reply_missing = None
        if not request.reply_event.triggered:
            request.reply_event.succeed(reply)

    def call(self, port: int, request: RpcRequest,
             timeout: Optional[float] = None):
        """Like :meth:`trans` but raises the marshalled server error when
        the reply status is non-OK. Returns the reply on success."""
        reply = yield self.env.process(self.trans(port, request, timeout))
        if not reply.ok:
            raise error_for_status(reply.status, reply.message)
        return reply

    @staticmethod
    def reply_for_error(exc: ReproError) -> RpcReply:
        """Marshal a server-side exception into an error reply."""
        return RpcReply(status=int(exc.status), message=str(exc))

    def _trace(self, category: str, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(category, message, **fields)
