"""Wide-area gateways (§2.1).

"Gateways provide transparent communication among Amoeba sites
currently operating in four different countries." And: "The directory
service provides a single global naming space for objects. This has
allowed us to link multiple Bullet file servers together providing one
single large file service that crosses international borders."

A :class:`WideAreaLink` is a point-to-point line (think 64 kbit/s –
2 Mbit/s leased line of the era) with real propagation delay; a
:class:`Gateway` joins two sites' RPC transports so a ``trans`` to a
port served at the far site is forwarded transparently — the client
cannot tell, except by the latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment, Resource

__all__ = ["WideAreaProfile", "WideAreaLink", "Gateway", "connect_sites"]


@dataclass(frozen=True)
class WideAreaProfile:
    """A leased line between sites."""

    name: str = "wan-2mbit"
    bandwidth_bits: float = 2e6
    propagation_delay: float = 0.015  # one way, seconds (Amsterdam–Berlin)
    per_packet_overhead: float = 2e-3  # X.25-era gateway processing


class WideAreaLink:
    """A full-duplex point-to-point line: each direction serializes."""

    def __init__(self, env: Environment, profile: WideAreaProfile = WideAreaProfile()):
        self.env = env
        self.profile = profile
        self._directions = (Resource(env, capacity=1), Resource(env, capacity=1))
        self.bytes_carried = 0

    def transfer(self, nbytes: int, direction: int):
        """Process: move ``nbytes`` one way; returns after the last bit
        lands at the far end."""
        line = self._directions[direction & 1]
        grant = line.request()
        # Crash-safe like the Ethernet medium: an interrupted transfer
        # must release (or withdraw) its claim on the line.
        try:
            yield grant
            serialization = (nbytes * 8) / self.profile.bandwidth_bits
            yield self.env.timeout(
                self.profile.per_packet_overhead + serialization)
        finally:
            if grant.triggered:
                line.release(grant)
            else:
                line.cancel(grant)
        # Propagation happens after the line is free for the next packet.
        yield self.env.timeout(self.profile.propagation_delay)
        self.bytes_carried += nbytes


class Gateway:
    """One half of a site-to-site connection.

    Installed into the local site's :class:`~repro.net.rpc.RpcTransport`
    as a route: transactions addressed to ports unknown locally are
    shipped across the link and executed as a transaction on the remote
    transport, and the reply is shipped back.
    """

    def __init__(self, env: Environment, link: WideAreaLink, direction: int,
                 remote_transport, name: str = "gateway"):
        self.env = env
        self.link = link
        self.direction = direction
        self.remote = remote_transport
        self.name = name
        self.forwarded = 0

    def serves(self, port: int) -> bool:
        """Can this gateway reach ``port``? (Remote registry lookup —
        real Amoeba broadcast-located ports; our registry query stands
        in for the locate protocol.)"""
        endpoint = self.remote.lookup(port)
        return endpoint is not None and not endpoint.down

    def forward(self, port: int, request, timeout: Optional[float] = None):
        """Process: carry one transaction across the link and back."""
        self.forwarded += 1
        yield self.env.process(self.link.transfer(request.wire_size,
                                                  self.direction))
        reply = yield self.env.process(self.remote.trans(port, request, timeout))
        yield self.env.process(self.link.transfer(reply.wire_size,
                                                  1 - self.direction))
        return reply


def connect_sites(env: Environment, transport_a, transport_b,
                  profile: WideAreaProfile = WideAreaProfile()) -> WideAreaLink:
    """Join two sites' transports with one wide-area line, installing a
    gateway in each direction. Returns the link (for statistics)."""
    link = WideAreaLink(env, profile)
    transport_a.add_route(Gateway(env, link, 0, transport_b, name="gw-a>b"))
    transport_b.add_route(Gateway(env, link, 1, transport_a, name="gw-b>a"))
    return link
