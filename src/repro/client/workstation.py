"""The workstation cache (§5): shared whole-file client caching with
local capability verification.

The paper's scaling argument rests on two properties of the Bullet
design:

* **Immutability** — "Client caching of immutable files is
  straightforward": a capability names immutable bytes, so a cached
  copy can never be stale *for that capability*. The only thing that
  can change is which capability a directory *name* refers to, and
  that is checked against the directory service (the §5 currency
  check), never against the file server.
* **Sparse capabilities** — an owner capability's check field *is* the
  object's secret (§2.1, ref. [12]), so any holder can derive the
  verifier ``f(secret ^ pad(rights))`` for an arbitrary rights subset
  locally. Permission checks therefore need no RPC either
  (BuffetFS-style): a workstation that cached a file under its owner
  capability can validate any restricted capability presented by a
  sibling process against a **locally derived verifier** and serve the
  bytes straight from RAM.

:class:`WorkstationCache` models the client half of that argument: one
byte-budgeted, LRU-with-pinning, whole-file cache **shared by every
client process on one simulated workstation**. Entries are keyed by
object (port, object number) and carry the verification state learned
about that object:

* ``secret`` — known iff an owner capability has been seen; enables
  verification of *any* capability for the object via
  :func:`repro.capability.local_verifier`.
* ``verified`` — the set of ``(rights, check)`` pairs proven genuine,
  either by a server round trip (the admitting READ) or by a local
  derivation; re-presenting a known pair verifies in O(1) with no
  one-way-function work, mirroring the server's verified-cap cache.

Verification state is only ever seeded from capabilities *proven*
genuine — the capability that admitted the entry after a successful
server READ, or one that derives from an already-known secret. A
merely owner-*shaped* capability is never trusted: the cache refuses to
record it (:meth:`register_verified` is a no-op for it), so a forged
owner capability can neither poison the secret nor mint verified pairs;
it misses through to the server, which remains the authority.

A hot READ through :class:`~repro.client.CachingBulletClient` then
touches neither the network nor the server: lookup, local check-field
validation, local rights check, bytes returned. Every outcome is
accounted on the shared metrics registry
(``repro_client_cache_{lookups,hits,misses,evictions,bytes_saved,
rpcs_avoided,local_verifies}_total`` and the ``repro_client_cache_bytes``
gauge), and the cache maintains the accounting invariant
``cached_bytes == sum(len(entry) for entries)`` under any admit/evict/
pin/invalidate interleaving (:meth:`audit`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..capability import (
    ALL_RIGHTS,
    Capability,
    has_rights,
    local_verifier,
    verify,
)
from ..errors import ConsistencyError, NotFoundError
from ..obs import MetricsRegistry, RegistryStats
from ..profiles import CpuProfile

__all__ = ["WorkstationCache", "WorkstationCacheStats", "LookupResult"]


class WorkstationCacheStats(RegistryStats):
    """Counters of one workstation's shared client cache, as a facade
    over the shared registry (``repro_client_cache_*_total``)."""

    _PREFIX = "repro_client_cache"
    _COUNTER_FIELDS = (
        "lookups",
        "hits",
        "misses",
        "evictions",
        "bytes_saved",
        "rpcs_avoided",
        "local_verifies",
    )


class LookupResult:
    """Outcome of one cache lookup.

    ``data`` carries the file bytes on a hit and is ``None`` otherwise;
    ``denied`` marks a capability that verified as genuine but lacks
    the required rights (the caller must raise
    :class:`~repro.errors.RightsError` — locally, without an RPC);
    ``verify_cost`` is the simulated CPU seconds of check-field work the
    caller must charge before acting on the result (one one-way-function
    evaluation when a previously unseen pair was derived, zero when the
    pair was already known or no local verification was possible).
    """

    __slots__ = ("data", "denied", "verify_cost")

    def __init__(self, data: Optional[bytes], denied: bool,
                 verify_cost: float):
        self.data = data
        self.denied = denied
        self.verify_cost = verify_cost

    @property
    def hit(self) -> bool:
        return self.data is not None


class _Entry:
    """One cached whole file plus its verification state.

    ``dead`` marks an entry invalidated while pinned (the object was
    deleted on the server, but a sibling is still mid-copy on the
    immutable bytes): it no longer serves hits, cannot be re-pinned or
    merged into, and is dropped when the last pin releases.
    """

    __slots__ = ("data", "secret", "verified", "pins", "dead")

    def __init__(self, data: bytes):
        self.data = data
        self.secret: Optional[int] = None
        self.verified: set = set()  # {(rights, check)} proven genuine
        self.pins = 0
        self.dead = False


class WorkstationCache:
    """One workstation's shared, byte-budgeted client file cache."""

    def __init__(self, capacity_bytes: int, name: str = "workstation",
                 metrics: Optional[MetricsRegistry] = None,
                 cpu: Optional[CpuProfile] = None):
        if capacity_bytes is None or capacity_bytes <= 0:
            raise ValueError("client cache capacity must be positive")
        self.capacity = capacity_bytes
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cpu = cpu
        self.stats = WorkstationCacheStats(self.metrics, workstation=name)
        self._c_lookups = self.stats.handle("lookups")
        self._c_hits = self.stats.handle("hits")
        self._c_misses = self.stats.handle("misses")
        self._c_evictions = self.stats.handle("evictions")
        self._c_bytes_saved = self.stats.handle("bytes_saved")
        self._c_rpcs_avoided = self.stats.handle("rpcs_avoided")
        self._c_local_verifies = self.stats.handle("local_verifies")
        self._bytes_gauge = self.metrics.gauge(
            "repro_client_cache_bytes", workstation=name)
        self._entries: OrderedDict[tuple[int, int], _Entry] = OrderedDict()
        self._used = 0

    # ------------------------------------------------------------ queries

    @property
    def cached_bytes(self) -> int:
        """Bytes held; invariant: equals the sum of entry sizes."""
        return self._used

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def __contains__(self, cap: Capability) -> bool:
        entry = self._entries.get((cap.port, cap.object))
        return entry is not None and not entry.dead

    def audit(self) -> int:
        """Check the accounting invariant; returns the byte total."""
        actual = sum(len(e.data) for e in self._entries.values())
        if actual != self._used or actual > self.capacity:
            raise ConsistencyError(
                f"cache accounting drifted: used={self._used}, "
                f"actual={actual}, capacity={self.capacity}"
            )
        return actual

    @property
    def derive_cost(self) -> float:
        """Simulated cost of one local check-field derivation."""
        return self.cpu.capability_check if self.cpu is not None else 0.0

    # ------------------------------------------------------------- lookup

    def lookup(self, cap: Capability, needed_rights: int,
               op: str = "read") -> LookupResult:
        """Probe the cache with a capability.

        A hit requires (a) the object's bytes to be resident and (b) the
        capability to verify *locally*: its ``(rights, check)`` pair is
        already known genuine, or the entry holds the object's secret
        and the pair matches the locally derived verifier. A genuine
        capability lacking ``needed_rights`` is reported as ``denied``
        (counted as a hit: the cache answered authoritatively). Anything
        else — absent object, unverifiable or mismatching check field —
        is a miss; the caller falls through to the server, which remains
        the authority on forged capabilities and reincarnated object
        numbers.
        """
        self._c_lookups.inc(1)
        entry = self._entries.get((cap.port, cap.object))
        if entry is not None and entry.dead:
            entry = None  # deleted; awaiting the last unpin
        cost = 0.0
        verified = False
        if entry is not None:
            pair = (cap.rights, cap.check)
            verified = pair in entry.verified
            if not verified and entry.secret is not None:
                cost = self.derive_cost
                self._c_local_verifies.inc(1)
                verified = cap.check == local_verifier(entry.secret,
                                                       cap.rights)
                if verified:
                    entry.verified.add(pair)
        if not verified:
            self._c_misses.inc(1)
            return LookupResult(None, False, cost)
        self._entries.move_to_end((cap.port, cap.object))
        self._c_hits.inc(1)
        self._c_rpcs_avoided.inc(1)
        if not has_rights(cap.rights, needed_rights):
            return LookupResult(None, True, cost)
        if op == "read":
            self._c_bytes_saved.inc(len(entry.data))
        return LookupResult(entry.data, False, cost)

    # ---------------------------------------------------------- admission

    def admit(self, cap: Capability, data: bytes) -> bool:
        """Admit a whole file fetched from the server under ``cap``.

        Returns False when the file cannot be cached (larger than the
        budget, or the budget is filled by pinned entries). Re-admission
        of a resident object by a concurrent sharer merges verification
        state without touching the byte accounting (the double-count
        fix: ``cached_bytes`` tracks reality, never the admission
        count). A resident object whose bytes differ — a reincarnated
        object number — is replaced, with the stale verification state
        dropped; when the reincarnation reuses identical bytes, the
        admitting capability (server-proven for the *current*
        incarnation) is checked against the entry's known secret, and a
        mismatch likewise resets the stale secret and verified pairs,
        so capabilities of the deleted incarnation miss through to the
        server instead of riding the byte equality.
        """
        key = (cap.port, cap.object)
        entry = self._entries.get(key)
        if entry is not None:
            if entry.dead:
                # Deleted, awaiting the last unpin; serve through.
                return False
            if entry.data == data:
                if entry.secret is not None and not verify(cap, entry.secret):
                    # Reincarnation with identical bytes: the prior
                    # incarnation's verification state is revoked.
                    entry.secret = None
                    entry.verified.clear()
                self._note_verified(entry, cap)
                self._entries.move_to_end(key)
                return True
            if entry.pins:
                # Someone is mid-copy on the old bytes; serve through.
                return False
            self._drop(key, entry)
        if len(data) > self.capacity:
            return False
        if not self._make_room(len(data)):
            return False
        entry = _Entry(bytes(data))
        self._note_verified(entry, cap)
        self._entries[key] = entry
        self._account(len(data))
        return True

    def currency_evidence(self, based_on: Capability,
                          current: Capability) -> tuple[bool, float]:
        """The §5 currency comparison: does ``current`` (just fetched
        from the directory) provably name the same file *incarnation*
        as ``based_on`` (the capability the cached copy is based on)?

        Raw capability equality is wrong in both directions. A copy
        cached under a *restricted* capability must still compare
        current against the directory's owner capability — the object
        is identical, only the rights differ — while a delete+recreate
        reusing the object number must compare **stale** even though
        ``(port, object)`` match: the new incarnation has a new secret.
        So identity is object identity plus **secret lineage**: both
        capabilities must verify against one and the same secret.
        Evidence is tried in order of cost:

        * exact ``(rights, check)`` equality — free;
        * an owner-shaped side carries its incarnation's secret in the
          check field (§2.1), so the other side verifies against it
          directly (one one-way function); two unequal owner-shaped
          capabilities carry *different* secrets — stale;
        * both sides restricted: only the resident entry's own
          evidence (known secret / verified pairs) can link them.

        Unprovable pairs report stale — the safe direction: a spurious
        re-fetch, never a stale read. Returns ``(proven, cost)`` where
        ``cost`` is the simulated seconds of check-field work the
        caller must charge; derivations are memoized in the entry's
        verified set (when the object is resident and trusted), so
        re-checking a hot binding is O(1) and free.
        """
        if (based_on.port, based_on.object) != (current.port, current.object):
            return False, 0.0
        if (based_on.rights, based_on.check) == (current.rights, current.check):
            return True, 0.0
        entry = self._entries.get((based_on.port, based_on.object))
        if entry is not None and entry.dead:
            entry = None
        cost = 0.0
        for owner, other in ((based_on, current), (current, based_on)):
            if owner.rights != ALL_RIGHTS:
                continue
            if other.rights == ALL_RIGHTS:
                # Two owner capabilities with different check fields are
                # two different secrets: distinct incarnations.
                return False, cost
            cost += self.derive_cost
            self._c_local_verifies.inc(1)
            proven = verify(other, owner.check)
            if (proven and entry is not None
                    and (based_on.rights, based_on.check) in entry.verified):
                # The check proved the owner capability of an entry
                # that already trusts based_on: seed the secret so
                # every future verification for this object is O(1).
                self._note_verified(entry, owner)
                self._note_verified(entry, other)
            return proven, cost
        if entry is None:
            return False, cost
        for cap in (based_on, current):
            if (cap.rights, cap.check) in entry.verified:
                continue
            if entry.secret is None:
                return False, cost
            cost += self.derive_cost
            self._c_local_verifies.inc(1)
            if not verify(cap, entry.secret):
                return False, cost
            entry.verified.add((cap.rights, cap.check))
        return True, cost

    def owner_verified(self, cap: Capability) -> bool:
        """Whether ``cap`` is an owner capability the cache can vouch
        for: its object is resident and the capability is proven
        genuine by the entry's own evidence (it admitted the entry, or
        its check field equals the known secret). Only such a
        capability may be restricted locally without asking the
        server."""
        if cap.rights != ALL_RIGHTS:
            return False
        entry = self._entries.get((cap.port, cap.object))
        if entry is None or entry.dead:
            return False
        return self._proven(entry, cap)

    def register_verified(self, cap: Capability,
                          derived: Optional[Capability] = None) -> None:
        """Record capabilities proven genuine out of band (e.g. a local
        owner-side restrict): seeds the entry's verification state so a
        later read under ``derived`` hits without any check-field work.

        The cache never takes the caller's word for it: each capability
        is registered only if it verifies against the entry's existing
        evidence (its pair is already known, or it derives from the
        known secret). An unprovable capability — notably a forged
        owner-shaped one — is silently ignored, so it can neither
        overwrite the secret nor mint verified pairs; later lookups
        under it miss through to the server, the authority."""
        entry = self._entries.get((cap.port, cap.object))
        if entry is None or entry.dead or not self._proven(entry, cap):
            return
        self._note_verified(entry, cap)
        if (derived is not None and derived.port == cap.port
                and derived.object == cap.object
                and self._proven(entry, derived)):
            self._note_verified(entry, derived)

    def note_rpc_avoided(self) -> None:
        """Account one server round trip that local state made
        unnecessary outside the lookup path (e.g. a local restrict)."""
        self._c_rpcs_avoided.inc(1)

    # -------------------------------------------------- invalidation, pins

    def invalidate(self, cap: Capability) -> bool:
        """Invalidate the object's entry (after a successful DELETE).

        An unpinned entry is dropped immediately. A pinned entry — a
        sibling process is mid-copy on the (immutable, so still
        readable) bytes — is marked dead instead: it stops serving
        hits, refuses re-pinning and re-admission, and its bytes are
        released when the last pin drops. The server-side delete is
        irreversible, so this never raises; returns whether a live
        entry was invalidated."""
        key = (cap.port, cap.object)
        entry = self._entries.get(key)
        if entry is None or entry.dead:
            return False
        if entry.pins:
            entry.dead = True
            entry.secret = None
            entry.verified.clear()
            return True
        self._drop(key, entry)
        return True

    def pin(self, cap: Capability) -> None:
        """Exempt the object's entry from eviction (nestable)."""
        entry = self._entries.get((cap.port, cap.object))
        if entry is None or entry.dead:
            raise NotFoundError(
                f"object {cap.object} is not cached; cannot pin"
            )
        entry.pins += 1

    def unpin(self, cap: Capability) -> None:
        """Release one pin; unbalanced unpins are accounting bugs. The
        last unpin of a dead entry releases its bytes."""
        key = (cap.port, cap.object)
        entry = self._entries.get(key)
        if entry is None or entry.pins <= 0:
            raise ConsistencyError(
                f"unpin of object {cap.object} without a matching pin"
            )
        entry.pins -= 1
        if entry.dead and entry.pins == 0:
            self._drop(key, entry)

    # ----------------------------------------------------------- internals

    def _proven(self, entry: _Entry, cap: Capability) -> bool:
        """Whether ``cap`` is genuine by the entry's own evidence: its
        pair is already verified, or it derives from the known secret.
        Callers must only extend verification state from proven caps."""
        if (cap.rights, cap.check) in entry.verified:
            return True
        if entry.secret is None:
            return False
        return verify(cap, entry.secret)

    def _note_verified(self, entry: _Entry, cap: Capability) -> None:
        entry.verified.add((cap.rights, cap.check))
        if cap.rights == ALL_RIGHTS:
            # The owner capability carries the object's secret itself:
            # from here on any rights subset verifies locally.
            entry.secret = cap.check

    def _make_room(self, needed: int) -> bool:
        """Evict unpinned entries, LRU first, until ``needed`` fits."""
        while self._used + needed > self.capacity:
            victim_key = None
            for key, entry in self._entries.items():
                if not entry.pins:
                    victim_key = key
                    break
            if victim_key is None:
                return False
            self._drop(victim_key, self._entries[victim_key])
            self._c_evictions.inc(1)
        return True

    def _drop(self, key: tuple[int, int], entry: _Entry) -> None:
        del self._entries[key]
        self._account(-len(entry.data))

    def _account(self, delta: int) -> None:
        self._used += delta
        self._bytes_gauge.set(self._used)
