"""Client-side access to a Bullet server (S12).

Two interchangeable stubs expose the same process-method interface
(create/size/read/delete/modify/restrict):

* :class:`BulletClient` — the real thing: marshals requests over the
  simulated network to a server's port (the paper's measured path).
* :class:`LocalBulletStub` — calls the server's local plane directly
  (no network): used when composing servers in one process and in unit
  tests.

:class:`CachingBulletClient` adds the §5 client cache: "Client caching
of immutable files is straightforward" — a capability names immutable
bytes, so a hit never needs revalidation against the *file* server; the
cached entry is correct by construction. What may change is which
capability a *name* refers to, and that is checked against the
**directory** service: "simply done by looking up its capability in the
directory service, and comparing it to the capability on which the copy
is based." The cache itself is a
:class:`~repro.client.workstation.WorkstationCache` — shared by every
client process on one simulated workstation, with local check-field
verification so a hot READ touches neither the network nor the server.
"""

from __future__ import annotations

from typing import Optional

from ..capability import (
    ALL_RIGHTS,
    Capability,
    RIGHT_READ,
    restrict as restrict_locally,
    rights_names,
)
from ..core import OPCODES, BulletServer
from ..errors import RightsError, error_for_status
from ..net import RpcRequest, RpcTransport
from ..obs import MetricsRegistry
from ..profiles import CpuProfile
from ..sim import SeededStream, Tracer
from .retry import Retrier, RetryPolicy
from .workstation import WorkstationCache

__all__ = ["BulletClient", "LocalBulletStub", "CachingBulletClient"]


class BulletClient:
    """RPC stub for the Bullet protocol.

    With a :class:`~repro.client.retry.RetryPolicy`, calls retry on
    transient errors: idempotent ops (READ/SIZE/STAT/RESTRICT) freely,
    mutating ops (CREATE/MODIFY/DELETE) under the txid dedupe guard —
    the request's transaction id is pre-assigned and the same request is
    re-sent, so the server's reply cache suppresses duplicate execution.
    """

    def __init__(self, env, rpc: RpcTransport, server_port: int,
                 timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 retry_stream: Optional[SeededStream] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "client"):
        self.env = env
        self.rpc = rpc
        self.port = server_port
        self.timeout = timeout
        self.name = name
        # Default the client's accounting into the transport's registry
        # so a testbed built around one transport shares one registry.
        self.metrics = metrics if metrics is not None else rpc.metrics
        self.retrier = (Retrier(env, retry, retry_stream, tracer,
                                metrics=self.metrics, name=name)
                        if retry is not None else None)

    def _call(self, request: RpcRequest, idempotent: bool = True):
        if self.retrier is None:
            reply = yield from self.rpc.trans(
                self.port, request, timeout=self.timeout
            )
        else:
            if not idempotent:
                # Dedupe guard: fix the txid now so every retry is a
                # duplicate of the same transaction, not a new one.
                request.txid = self.rpc.new_txid()

            def attempt():
                reply = yield self.env.process(
                    self.rpc.trans(self.port, request, timeout=self.timeout)
                )
                return reply

            reply = yield from self.retrier.run(
                attempt, op=f"bullet[{request.opcode}]",
                idempotent=idempotent, dedupe=not idempotent,
            )
        if not reply.ok:
            raise error_for_status(reply.status, reply.message)
        return reply

    def create(self, data: bytes, p_factor: Optional[int] = None):
        """Process: BULLET.CREATE; returns the owner capability."""
        args = (p_factor,) if p_factor is not None else ()
        reply = yield from self._call(
            RpcRequest(opcode=OPCODES["CREATE"], args=args, body=bytes(data)),
            idempotent=False,
        )
        return reply.caps[0]

    def size(self, cap: Capability):
        """Process: BULLET.SIZE; returns the file size in bytes."""
        reply = yield from self._call(RpcRequest(opcode=OPCODES["SIZE"], cap=cap))
        return reply.args[0]

    def read(self, cap: Capability):
        """Process: BULLET.READ; returns the whole file."""
        reply = yield from self._call(RpcRequest(opcode=OPCODES["READ"], cap=cap))
        return reply.body

    def delete(self, cap: Capability):
        """Process: BULLET.DELETE."""
        yield from self._call(RpcRequest(opcode=OPCODES["DELETE"], cap=cap),
                              idempotent=False)

    def modify(self, cap: Capability, offset: int, delete_bytes: int,
               insert_data: bytes, p_factor: Optional[int] = None):
        """Process: the MODIFY extension; returns the new capability."""
        reply = yield from self._call(
            RpcRequest(
                opcode=OPCODES["MODIFY"],
                cap=cap,
                args=(offset, delete_bytes, p_factor),
                body=bytes(insert_data),
            ),
            idempotent=False,
        )
        return reply.caps[0]

    def restrict(self, cap: Capability, mask: int):
        """Process: server-side rights restriction."""
        reply = yield from self._call(
            RpcRequest(opcode=OPCODES["RESTRICT"], cap=cap, args=(mask,))
        )
        return reply.caps[0]

    def stat(self, cap: Capability):
        """Process: server status snapshot (requires any valid cap)."""
        reply = yield from self._call(RpcRequest(opcode=OPCODES["STAT"], cap=cap))
        return reply.args[0]


class LocalBulletStub:
    """Same interface, wired straight to a server's local plane.

    Each method is a thin process delegating to the corresponding
    :class:`~repro.core.BulletServer` operation; see those docstrings.
    """

    def __init__(self, server: BulletServer):
        self.server = server
        self.env = server.env
        self.port = server.port

    def create(self, data: bytes, p_factor: Optional[int] = None):
        """Process: BULLET.CREATE on the local server."""
        return (yield from self.server.create(data, p_factor))

    def size(self, cap: Capability):
        """Process: BULLET.SIZE on the local server."""
        return (yield from self.server.size(cap))

    def read(self, cap: Capability):
        """Process: BULLET.READ on the local server."""
        return (yield from self.server.read(cap))

    def delete(self, cap: Capability):
        """Process: BULLET.DELETE on the local server."""
        yield from self.server.delete(cap)

    def modify(self, cap: Capability, offset: int, delete_bytes: int,
               insert_data: bytes, p_factor: Optional[int] = None):
        """Process: the MODIFY extension on the local server."""
        return (yield from self.server.modify(cap, offset, delete_bytes,
                                              insert_data, p_factor))

    def restrict(self, cap: Capability, mask: int):
        """Process: server-side rights restriction."""
        return (yield from self.server.restrict_cap(cap, mask))

    def stat(self, cap: Capability):
        """Process: status snapshot of the local server."""
        yield from ()
        return self.server.status()


class CachingBulletClient:
    """A Bullet stub wrapper reading through a workstation's cache.

    Entries are keyed by object and carry locally verifiable
    capability state (see :class:`~repro.client.workstation
    .WorkstationCache`): a hit — under the admitting capability or any
    locally verified restriction of it — costs no RPC and no server
    time. ``lookup_validated`` implements the §5 freshness check for
    *names*: resolve the name in the directory and compare the returned
    capability with the capability the cached copy is based on; that
    directory round trip is the plane's only coherence traffic.

    Pass ``cache=`` to share one :class:`WorkstationCache` across all
    the client processes of a simulated workstation; with only
    ``capacity_bytes`` the client builds a private one (the historical
    per-stub shape). ``hits``/``misses`` count this client's outcomes;
    the cache's own counters aggregate the whole workstation.
    """

    def __init__(self, stub, capacity_bytes: Optional[int] = None,
                 cache: Optional[WorkstationCache] = None,
                 cpu: Optional[CpuProfile] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "workstation"):
        if cache is not None and capacity_bytes is not None:
            raise ValueError("pass capacity_bytes or cache, not both")
        self.stub = stub
        self.env = stub.env
        if cache is None:
            cache = WorkstationCache(
                capacity_bytes, name=name,
                metrics=(metrics if metrics is not None
                         else getattr(stub, "metrics", None)),
                cpu=cpu,
            )
        self.cache = cache
        self._tracer = tracer
        self.hits = 0
        self.misses = 0

    # The mutating operations pass straight through.

    def create(self, data: bytes, p_factor: Optional[int] = None):
        """Process: pass-through create (new files are not pre-cached;
        caching is driven by read traffic only)."""
        return (yield from self.stub.create(data, p_factor))

    def size(self, cap: Capability):
        """Process: size from the cache when the file is held locally.

        A size hit is a real hit: it refreshes the entry's recency and
        is accounted exactly like a read hit (hot SIZE traffic used to
        silently age entries toward eviction and under-report hits)."""
        result = yield from self._probe(cap, op="size")
        if result is not None:
            return len(result.data)
        return (yield from self.stub.size(cap))

    def delete(self, cap: Capability):
        """Process: delete; invalidates the cached copy only after the
        server reports success — a failed DELETE (forged cap, missing
        rights) must not evict a perfectly valid immutable entry. The
        stub's retry layer dedupes re-sends under a pre-assigned txid,
        so exactly one success reaches the invalidation. An entry a
        sibling process has pinned is marked dead rather than dropped
        (the copy-in-progress finishes on the immutable bytes; the
        entry stops serving hits and is released on the last unpin)."""
        yield from self.stub.delete(cap)
        self.cache.invalidate(cap)

    def modify(self, cap: Capability, offset: int, delete_bytes: int,
               insert_data: bytes, p_factor: Optional[int] = None):
        """Process: pass-through MODIFY (the result is a new file)."""
        return (yield from self.stub.modify(cap, offset, delete_bytes,
                                            insert_data, p_factor))

    def read(self, cap: Capability):
        """Process: read through the workstation cache. A hit — locally
        verified, rights-checked — touches neither the network nor the
        server."""
        result = yield from self._probe(cap, op="read")
        if result is not None:
            return result.data
        data = yield from self.stub.read(cap)
        self.cache.admit(cap, data)
        return data

    def restrict(self, cap: Capability, mask: int):
        """Process: rights restriction. An owner capability the cache
        can vouch for — it admitted the resident entry, or matches the
        entry's known secret — is restricted entirely client-side
        (§2.1: its check field is the secret, so the restricted check
        derives locally — one one-way function, no RPC), and the cache
        is seeded so a read under the restriction is a verified hit.

        Everything else goes to the server: restricted capabilities,
        owner capabilities of uncached objects, and owner-*shaped*
        capabilities the cache cannot prove genuine. The server stays
        the authority on forged and reincarnated capabilities, so a
        bogus owner capability raises here (as it always did) instead
        of yielding a plausible-looking local derivation — and cannot
        poison the workstation cache's verification state."""
        if cap.rights != ALL_RIGHTS or not self.cache.owner_verified(cap):
            return (yield from self.stub.restrict(cap, mask))
        restricted = restrict_locally(cap, mask)
        if restricted is not cap and self.cache.derive_cost > 0.0:
            yield self.env.timeout(self.cache.derive_cost)
        self.cache.register_verified(cap, restricted)
        self.cache.note_rpc_avoided()
        return restricted

    def stat(self, cap: Capability):
        """Process: pass-through server status snapshot."""
        return (yield from self.stub.stat(cap))

    def lookup_validated(self, directory, dir_cap: Capability, name: str,
                         based_on: Capability):
        """Process: the §5 currency check. Returns ``(is_current, cap)``:
        looks ``name`` up in the directory and decides whether the
        cached copy based on ``based_on`` is still what the name means.

        Two classes of false staleness are avoided here. First, the
        comparison is **evidence-based**, not raw equality: a copy
        cached under a restricted capability compares current against
        the directory's owner capability via
        :meth:`~repro.client.workstation.WorkstationCache
        .currency_evidence` (object identity plus secret lineage —
        never raw rights bits), while a delete+recreate that reuses the
        object number correctly compares stale (new secret). Second,
        the check runs against the **whole capability set** bound to
        the name — one member per replica — so a copy based on a
        non-primary member is current, not a forced re-fetch.

        When current, returns the matching member; when stale, the
        set's primary (the capability to re-fetch under).
        """
        caps = yield from directory.lookup_set(dir_cap, name)
        for cap in caps:
            proven, cost = self.cache.currency_evidence(based_on, cap)
            if cost > 0.0:
                yield self.env.timeout(cost)
            if proven:
                return True, cap
        return False, caps[0]

    @property
    def cached_bytes(self) -> int:
        return self.cache.cached_bytes

    def _probe(self, cap: Capability, op: str):
        """Process: one accounted cache lookup. Returns the
        :class:`~repro.client.workstation.LookupResult` on a hit, None
        on a miss; raises locally — without any server traffic — when
        the capability verifies but lacks read rights."""
        tracing = self._tracer is not None
        span = (self._tracer.begin_span("span", f"client.{op}",
                                        object=cap.object)
                if tracing else 0)
        result = self.cache.lookup(cap, RIGHT_READ, op=op)
        if result.verify_cost > 0.0:
            yield self.env.timeout(result.verify_cost)
        if result.denied:
            if tracing:
                self._tracer.end_span(span, "span", f"client.{op}",
                                      outcome="denied")
            raise RightsError(
                f"{cap} lacks rights {rights_names(RIGHT_READ)}"
            )
        if result.data is not None:
            self.hits += 1
            if tracing:
                self._tracer.end_span(span, "span", f"client.{op}",
                                      outcome="hit")
            return result
        self.misses += 1
        if tracing:
            self._tracer.end_span(span, "span", f"client.{op}",
                                  outcome="miss")
        return None
