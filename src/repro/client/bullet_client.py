"""Client-side access to a Bullet server (S12).

Two interchangeable stubs expose the same process-method interface
(create/size/read/delete/modify/restrict):

* :class:`BulletClient` — the real thing: marshals requests over the
  simulated network to a server's port (the paper's measured path).
* :class:`LocalBulletStub` — calls the server's local plane directly
  (no network): used when composing servers in one process and in unit
  tests.

:class:`CachingBulletClient` adds the §5 client cache: "Client caching
of immutable files is straightforward" — a capability names immutable
bytes, so a hit never needs revalidation against the *file* server; the
cached entry is correct by construction. What may change is which
capability a *name* refers to, and that is checked against the
**directory** service: "simply done by looking up its capability in the
directory service, and comparing it to the capability on which the copy
is based."
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..capability import Capability
from ..core import OPCODES, BulletServer
from ..errors import error_for_status
from ..net import RpcRequest, RpcTransport
from ..obs import MetricsRegistry
from ..sim import SeededStream, Tracer
from .retry import Retrier, RetryPolicy

__all__ = ["BulletClient", "LocalBulletStub", "CachingBulletClient"]


class BulletClient:
    """RPC stub for the Bullet protocol.

    With a :class:`~repro.client.retry.RetryPolicy`, calls retry on
    transient errors: idempotent ops (READ/SIZE/STAT/RESTRICT) freely,
    mutating ops (CREATE/MODIFY/DELETE) under the txid dedupe guard —
    the request's transaction id is pre-assigned and the same request is
    re-sent, so the server's reply cache suppresses duplicate execution.
    """

    def __init__(self, env, rpc: RpcTransport, server_port: int,
                 timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 retry_stream: Optional[SeededStream] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "client"):
        self.env = env
        self.rpc = rpc
        self.port = server_port
        self.timeout = timeout
        self.name = name
        # Default the client's accounting into the transport's registry
        # so a testbed built around one transport shares one registry.
        self.metrics = metrics if metrics is not None else rpc.metrics
        self.retrier = (Retrier(env, retry, retry_stream, tracer,
                                metrics=self.metrics, name=name)
                        if retry is not None else None)

    def _call(self, request: RpcRequest, idempotent: bool = True):
        if self.retrier is None:
            reply = yield from self.rpc.trans(
                self.port, request, timeout=self.timeout
            )
        else:
            if not idempotent:
                # Dedupe guard: fix the txid now so every retry is a
                # duplicate of the same transaction, not a new one.
                request.txid = self.rpc.new_txid()

            def attempt():
                reply = yield self.env.process(
                    self.rpc.trans(self.port, request, timeout=self.timeout)
                )
                return reply

            reply = yield from self.retrier.run(
                attempt, op=f"bullet[{request.opcode}]",
                idempotent=idempotent, dedupe=not idempotent,
            )
        if not reply.ok:
            raise error_for_status(reply.status, reply.message)
        return reply

    def create(self, data: bytes, p_factor: Optional[int] = None):
        """Process: BULLET.CREATE; returns the owner capability."""
        args = (p_factor,) if p_factor is not None else ()
        reply = yield from self._call(
            RpcRequest(opcode=OPCODES["CREATE"], args=args, body=bytes(data)),
            idempotent=False,
        )
        return reply.caps[0]

    def size(self, cap: Capability):
        """Process: BULLET.SIZE; returns the file size in bytes."""
        reply = yield from self._call(RpcRequest(opcode=OPCODES["SIZE"], cap=cap))
        return reply.args[0]

    def read(self, cap: Capability):
        """Process: BULLET.READ; returns the whole file."""
        reply = yield from self._call(RpcRequest(opcode=OPCODES["READ"], cap=cap))
        return reply.body

    def delete(self, cap: Capability):
        """Process: BULLET.DELETE."""
        yield from self._call(RpcRequest(opcode=OPCODES["DELETE"], cap=cap),
                              idempotent=False)

    def modify(self, cap: Capability, offset: int, delete_bytes: int,
               insert_data: bytes, p_factor: Optional[int] = None):
        """Process: the MODIFY extension; returns the new capability."""
        reply = yield from self._call(
            RpcRequest(
                opcode=OPCODES["MODIFY"],
                cap=cap,
                args=(offset, delete_bytes, p_factor),
                body=bytes(insert_data),
            ),
            idempotent=False,
        )
        return reply.caps[0]

    def restrict(self, cap: Capability, mask: int):
        """Process: server-side rights restriction."""
        reply = yield from self._call(
            RpcRequest(opcode=OPCODES["RESTRICT"], cap=cap, args=(mask,))
        )
        return reply.caps[0]

    def stat(self, cap: Capability):
        """Process: server status snapshot (requires any valid cap)."""
        reply = yield from self._call(RpcRequest(opcode=OPCODES["STAT"], cap=cap))
        return reply.args[0]


class LocalBulletStub:
    """Same interface, wired straight to a server's local plane.

    Each method is a thin process delegating to the corresponding
    :class:`~repro.core.BulletServer` operation; see those docstrings.
    """

    def __init__(self, server: BulletServer):
        self.server = server
        self.env = server.env
        self.port = server.port

    def create(self, data: bytes, p_factor: Optional[int] = None):
        """Process: BULLET.CREATE on the local server."""
        return (yield from self.server.create(data, p_factor))

    def size(self, cap: Capability):
        """Process: BULLET.SIZE on the local server."""
        return (yield from self.server.size(cap))

    def read(self, cap: Capability):
        """Process: BULLET.READ on the local server."""
        return (yield from self.server.read(cap))

    def delete(self, cap: Capability):
        """Process: BULLET.DELETE on the local server."""
        yield from self.server.delete(cap)

    def modify(self, cap: Capability, offset: int, delete_bytes: int,
               insert_data: bytes, p_factor: Optional[int] = None):
        """Process: the MODIFY extension on the local server."""
        return (yield from self.server.modify(cap, offset, delete_bytes,
                                              insert_data, p_factor))

    def restrict(self, cap: Capability, mask: int):
        """Process: server-side rights restriction."""
        return (yield from self.server.restrict_cap(cap, mask))

    def stat(self, cap: Capability):
        """Process: status snapshot of the local server."""
        yield from ()
        return self.server.status()


class CachingBulletClient:
    """A Bullet stub wrapper with an LRU client cache of whole files.

    Keys are packed capabilities: immutability makes a hit permanently
    valid for that capability. ``lookup_validated`` implements the §5 freshness
    check for *names*: resolve the name in the directory and compare the
    returned capability with the cached one.
    """

    def __init__(self, stub, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("client cache capacity must be positive")
        self.stub = stub
        self.env = stub.env
        self.capacity = capacity_bytes
        self._entries: OrderedDict[bytes, bytes] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    # The mutating operations pass straight through.

    def create(self, data: bytes, p_factor: Optional[int] = None):
        """Process: pass-through create (new files are not pre-cached)."""
        return (yield from self.stub.create(data, p_factor))

    def size(self, cap: Capability):
        """Process: size from the cache when the file is held locally."""
        key = cap.pack()
        if key in self._entries:
            yield from ()
            return len(self._entries[key])
        return (yield from self.stub.size(cap))

    def delete(self, cap: Capability):
        """Process: delete, invalidating any cached copy."""
        self._entries.pop(cap.pack(), None)
        yield from self.stub.delete(cap)

    def modify(self, cap: Capability, offset: int, delete_bytes: int,
               insert_data: bytes, p_factor: Optional[int] = None):
        """Process: pass-through MODIFY (the result is a new file)."""
        return (yield from self.stub.modify(cap, offset, delete_bytes,
                                            insert_data, p_factor))

    def read(self, cap: Capability):
        """Process: read through the cache. A hit costs no RPC at all."""
        key = cap.pack()
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            yield from ()
            return cached
        self.misses += 1
        data = yield from self.stub.read(cap)
        self._admit(key, data)
        return data

    def lookup_validated(self, directory, dir_cap: Capability, name: str,
                         based_on: Capability):
        """Process: the §5 currency check. Returns (is_current, cap):
        looks ``name`` up in the directory and compares with the
        capability the cached copy is based on."""
        current = yield from directory.lookup(dir_cap, name)
        return current == based_on, current

    def _admit(self, key: bytes, data: bytes) -> None:
        if len(data) > self.capacity:
            return  # too large to cache; serve-through only
        while self._used + len(data) > self.capacity and self._entries:
            _old_key, old = self._entries.popitem(last=False)
            self._used -= len(old)
        self._entries[key] = data
        self._used += len(data)

    @property
    def cached_bytes(self) -> int:
        return self._used
