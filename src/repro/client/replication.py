"""File replication across Bullet servers (the paper's "support for
replication" beyond the mirrored disks of one server).

Immutability makes cross-server replication trivial: copy the bytes,
get a second capability, bind **both** under the name as a capability
set in the directory. Readers try the members in order and succeed as
long as any replica's server is up; there is no coherence protocol to
run because neither copy can ever change.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..capability import Capability
from ..errors import ConsistencyError, ReproError, ServerDownError
from ..sim import SeededStream, Tracer
from .bullet_client import BulletClient
from .retry import TRANSIENT_ERRORS, RetryPolicy

__all__ = ["replicate_file", "ReplicaSetClient"]


def replicate_file(src_stub, dst_stub, cap: Capability,
                   p_factor: Optional[int] = None):
    """Process: copy the immutable file behind ``cap`` from one Bullet
    server to another; returns the new capability on ``dst_stub``'s
    server."""
    data = yield from src_stub.read(cap)
    return (yield from dst_stub.create(data, p_factor))


class ReplicaSetClient:
    """Reads from capability sets: first live replica wins.

    Transient errors (server down, RPC timeout — the shared
    :data:`~repro.client.retry.TRANSIENT_ERRORS` classification) trigger
    failover to the next member; a genuine server error (bad capability)
    is raised immediately, because every replica would answer the same
    way. With a :class:`~repro.client.retry.RetryPolicy`, each member is
    additionally retried with backoff before moving on — failover and
    retry compose.
    """

    def __init__(self, env, rpc, timeout: float = 2.0,
                 retry: Optional[RetryPolicy] = None,
                 retry_stream: Optional[SeededStream] = None,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.rpc = rpc
        self.timeout = timeout
        self.retry = retry
        self.retry_stream = retry_stream
        self._tracer = tracer
        self.failovers = 0

    def _client_for(self, cap: Capability) -> BulletClient:
        return BulletClient(self.env, self.rpc, cap.port,
                            timeout=self.timeout, retry=self.retry,
                            retry_stream=self.retry_stream,
                            tracer=self._tracer)

    def read(self, caps: Iterable[Capability]):
        """Process: the file's bytes from the first reachable replica."""
        caps = list(caps)
        if not caps:
            raise ServerDownError("empty capability set")
        last: Optional[ReproError] = None
        for index, cap in enumerate(caps):
            try:
                data = yield from self._client_for(cap).read(cap)
                if index > 0:
                    self.failovers += 1
                return data
            except TRANSIENT_ERRORS as exc:
                last = exc
                self._trace(f"replica {index} unreachable, failing over",
                            error=type(exc).__name__)
                continue
        if last is None:
            raise ConsistencyError("failover loop ended with no error recorded")
        raise last

    def size(self, caps: Iterable[Capability]):
        """Process: the file size from the first reachable replica."""
        caps = list(caps)
        if not caps:
            raise ServerDownError("empty capability set")
        last: Optional[ReproError] = None
        for cap in caps:
            try:
                return (yield from self._client_for(cap).size(cap))
            except TRANSIENT_ERRORS as exc:
                last = exc
        if last is None:
            raise ConsistencyError("failover loop ended with no error recorded")
        raise last

    def delete_all(self, caps: Iterable[Capability]):
        """Process: delete every reachable replica; returns how many
        were deleted (unreachable ones are left for their servers' GC)."""
        deleted = 0
        for cap in caps:
            try:
                yield from self._client_for(cap).delete(cap)
                deleted += 1
            except TRANSIENT_ERRORS:
                continue
        return deleted

    def _trace(self, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit("retry", message, **fields)
