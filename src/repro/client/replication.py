"""File replication across Bullet servers (the paper's "support for
replication" beyond the mirrored disks of one server).

Immutability makes cross-server replication trivial: copy the bytes,
get a second capability, bind **both** under the name as a capability
set in the directory. Readers try the members in order and succeed as
long as any replica's server is up; there is no coherence protocol to
run because neither copy can ever change.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..capability import Capability
from ..errors import ConsistencyError, ReproError, ServerDownError
from .bullet_client import BulletClient

__all__ = ["replicate_file", "ReplicaSetClient"]


def replicate_file(src_stub, dst_stub, cap: Capability,
                   p_factor: Optional[int] = None):
    """Process: copy the immutable file behind ``cap`` from one Bullet
    server to another; returns the new capability on ``dst_stub``'s
    server."""
    data = yield from src_stub.read(cap)
    return (yield from dst_stub.create(data, p_factor))


class ReplicaSetClient:
    """Reads from capability sets: first live replica wins."""

    def __init__(self, env, rpc, timeout: float = 2.0):
        self.env = env
        self.rpc = rpc
        self.timeout = timeout
        self.failovers = 0

    def _client_for(self, cap: Capability) -> BulletClient:
        return BulletClient(self.env, self.rpc, cap.port, timeout=self.timeout)

    def read(self, caps: Iterable[Capability]):
        """Process: the file's bytes from the first reachable replica.

        Tries the members in order; a member only counts as failed on a
        transport-level error (server down / timeout) — a genuine server
        error (bad capability) is raised immediately, because every
        replica would answer the same way.
        """
        caps = list(caps)
        if not caps:
            raise ServerDownError("empty capability set")
        last: Optional[ReproError] = None
        for index, cap in enumerate(caps):
            try:
                data = yield from self._client_for(cap).read(cap)
                if index > 0:
                    self.failovers += 1
                return data
            except ServerDownError as exc:
                last = exc
                continue
        if last is None:
            raise ConsistencyError("failover loop ended with no error recorded")
        raise last

    def size(self, caps: Iterable[Capability]):
        """Process: the file size from the first reachable replica."""
        caps = list(caps)
        if not caps:
            raise ServerDownError("empty capability set")
        last: Optional[ReproError] = None
        for cap in caps:
            try:
                return (yield from self._client_for(cap).size(cap))
            except ServerDownError as exc:
                last = exc
        if last is None:
            raise ConsistencyError("failover loop ended with no error recorded")
        raise last

    def delete_all(self, caps: Iterable[Capability]):
        """Process: delete every reachable replica; returns how many
        were deleted (unreachable ones are left for their servers' GC)."""
        deleted = 0
        for cap in caps:
            try:
                yield from self._client_for(cap).delete(cap)
                deleted += 1
            except ServerDownError:
                continue
        return deleted
