"""Client library (S12): Bullet stubs, the workstation caching plane,
the open-by-name coherence plane, and retry/backoff."""

from .bullet_client import BulletClient, CachingBulletClient, LocalBulletStub
from .directory_client import DirectoryClient
from .named import CoherenceStats, CurrencyPolicy, NamedFile, NamedFileClient
from .replication import ReplicaSetClient, replicate_file
from .retry import TRANSIENT_ERRORS, Retrier, RetryPolicy
from .workstation import WorkstationCache, WorkstationCacheStats

__all__ = ["BulletClient", "CachingBulletClient", "CoherenceStats",
           "CurrencyPolicy", "DirectoryClient", "LocalBulletStub",
           "NamedFile", "NamedFileClient", "ReplicaSetClient", "Retrier",
           "RetryPolicy", "TRANSIENT_ERRORS", "WorkstationCache",
           "WorkstationCacheStats", "replicate_file"]
