"""Client library (S12): Bullet stubs and client-side caching."""

from .bullet_client import BulletClient, CachingBulletClient, LocalBulletStub
from .directory_client import DirectoryClient
from .replication import ReplicaSetClient, replicate_file

__all__ = ["BulletClient", "CachingBulletClient", "DirectoryClient",
           "LocalBulletStub", "ReplicaSetClient", "replicate_file"]
