"""Client library (S12): Bullet stubs, caching, and retry/backoff."""

from .bullet_client import BulletClient, CachingBulletClient, LocalBulletStub
from .directory_client import DirectoryClient
from .replication import ReplicaSetClient, replicate_file
from .retry import TRANSIENT_ERRORS, Retrier, RetryPolicy

__all__ = ["BulletClient", "CachingBulletClient", "DirectoryClient",
           "LocalBulletStub", "ReplicaSetClient", "Retrier", "RetryPolicy",
           "TRANSIENT_ERRORS", "replicate_file"]
