"""Client-side retry with seeded backoff (the fault plane's other half).

Amoeba's transport is at-least-once: a transaction that times out may or
may not have executed on the server. The retry layer therefore splits
operations into two classes:

* **Idempotent** (READ, SIZE, STAT, lookups): safe to re-issue freely —
  re-reading immutable bytes cannot change anything.
* **Non-idempotent** (CREATE, MODIFY, DELETE, directory mutations):
  re-issued only under a *dedupe guard* — the client pre-assigns the
  request's transaction id and re-sends the **same** request object, so
  the server's reply cache recognises the retry and replays the original
  reply instead of executing twice. If the server crashed in between
  (reply cache lost), a duplicate execution can slip through; for Bullet
  that duplicate is an unnamed committed file, which the garbage
  collector reclaims (see DESIGN.md, "Fault model & retry semantics").

Backoff is exponential with seeded jitter: delays come from a
:class:`~repro.sim.SeededStream`, never a global RNG, so a retry
schedule replays byte-identically for a given master seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ReproError, RpcTimeoutError, ServerDownError
from ..obs import MetricsRegistry
from ..sim import Environment, SeededStream, Tracer

__all__ = ["RetryPolicy", "Retrier", "TRANSIENT_ERRORS"]

#: Errors that mean "the attempt may succeed if repeated": the server
#: was unreachable or the transaction timed out. Everything else (bad
#: capability, no space, media error surfaced as IO_ERROR status...) is
#: a definitive answer and is raised immediately.
TRANSIENT_ERRORS = (ServerDownError, RpcTimeoutError)


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative backoff schedule.

    ``backoff(attempt)`` for attempt k (0-based, i.e. the delay before
    re-issuing attempt k+1) is ``min(base_delay * multiplier**k,
    max_delay)``, jittered multiplicatively in ``[1-jitter, 1+jitter]``.
    ``deadline`` caps the *total* time budget across all attempts,
    measured from the first attempt's start.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1.0, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    def backoff(self, attempt: int, stream: Optional[SeededStream]) -> float:
        """The jittered delay after failed attempt ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter > 0 and stream is not None and delay > 0:
            delay *= stream.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


class Retrier:
    """Executes attempts under a :class:`RetryPolicy`.

    One Retrier serves one client stub; its counters (``attempts``,
    ``retries``, ``gave_up``) summarise the stub's whole life. The
    trace category "retry" records every re-issue and every give-up, so
    two same-seed runs can be compared line-for-line.
    """

    def __init__(self, env: Environment, policy: RetryPolicy,
                 stream: Optional[SeededStream] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "client"):
        self.env = env
        self.policy = policy
        self.stream = stream
        self._tracer = tracer
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._attempts = self.metrics.counter(
            "repro_client_retry_attempts_total", client=name)
        self._retries = self.metrics.counter(
            "repro_client_retries_total", client=name)
        self._gave_up = self.metrics.counter(
            "repro_client_retry_gave_up_total", client=name)

    # The life counters live in the registry; the attribute protocol is
    # kept so call sites and tests keep reading/incrementing plain ints.

    @property
    def attempts(self) -> int:
        return self._attempts.value

    @attempts.setter
    def attempts(self, value: int) -> None:
        self._attempts.inc(value - self._attempts.value)

    @property
    def retries(self) -> int:
        return self._retries.value

    @retries.setter
    def retries(self, value: int) -> None:
        self._retries.inc(value - self._retries.value)

    @property
    def gave_up(self) -> int:
        return self._gave_up.value

    @gave_up.setter
    def gave_up(self, value: int) -> None:
        self._gave_up.inc(value - self._gave_up.value)

    def run(self, make_attempt: Callable[[], object], op: str,
            idempotent: bool, dedupe: bool = False):
        """Process: run ``make_attempt()`` (a generator factory) until it
        succeeds, a non-transient error surfaces, or the policy is spent.

        ``make_attempt`` must build a *fresh* generator per call but may
        close over a shared request object — that is the dedupe guard:
        a non-idempotent op re-sends the identical, pre-assigned txid so
        the server deduplicates. Non-idempotent ops without ``dedupe``
        are never retried (the first transient error is raised).
        """
        policy = self.policy
        started = self.env.now
        last: Optional[ReproError] = None
        for attempt in range(policy.max_attempts):
            self.attempts += 1
            try:
                result = yield from make_attempt()
                return result
            except TRANSIENT_ERRORS as exc:
                last = exc
                if not idempotent and not dedupe:
                    self._trace(f"{op} not retryable (no dedupe guard)",
                                attempt=attempt)
                    raise
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff(attempt, self.stream)
            if policy.deadline is not None:
                remaining = policy.deadline - (self.env.now - started)
                if remaining <= delay:
                    self._trace(f"{op} deadline exhausted", attempt=attempt)
                    break
            self.retries += 1
            self._trace(f"{op} retrying", attempt=attempt, delay=delay,
                        error=type(last).__name__)
            if delay > 0:
                yield self.env.timeout(delay)
        self.gave_up += 1
        self._trace(f"{op} gave up", attempts=self.attempts)
        if last is None:
            raise ServerDownError(f"{op}: retry loop ended without an error")
        raise last

    def _trace(self, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit("retry", message, **fields)
