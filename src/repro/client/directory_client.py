"""RPC stub for the directory service, including cross-server walking.

Because directory entries hold full capabilities (port + object), a
path can cross server boundaries: "/amsterdam/src" may resolve to a
directory object living on a *different* directory server, possibly at
another site reached through a gateway. :meth:`DirectoryClient.walk`
follows the capabilities wherever they point — the transport routes
each hop, so one global name space spans sites (§2.1).
"""

from __future__ import annotations

from typing import Optional

from ..capability import Capability
from ..directory import DIR_OPCODES
from ..errors import NotADirectoryError_, error_for_status
from ..net import RpcRequest, RpcTransport
from ..sim import SeededStream, Tracer
from .retry import Retrier, RetryPolicy

__all__ = ["DirectoryClient"]


class DirectoryClient:
    """Client-side stub speaking the directory protocol to any port.

    Retry semantics mirror :class:`~repro.client.BulletClient`: lookups
    and listings retry freely under a policy; mutations (APPEND,
    REPLACE, REMOVE, UPDATE_MANY, CREATE_DIR, DELETE_DIR) retry under
    the pre-assigned-txid dedupe guard.
    """

    def __init__(self, env, rpc: RpcTransport,
                 default_port: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 retry_stream: Optional[SeededStream] = None,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.rpc = rpc
        self.default_port = default_port
        self.timeout = timeout
        self.retrier = (Retrier(env, retry, retry_stream, tracer)
                        if retry is not None else None)

    #: Opcodes safe to re-issue without a dedupe guard.
    _IDEMPOTENT = frozenset({"LOOKUP", "LIST", "LOOKUP_PATH", "HISTORY"})

    def _call(self, port: int, opcode: str, cap: Optional[Capability] = None,
              args: tuple = (), body: bytes = b""):
        request = RpcRequest(opcode=DIR_OPCODES[opcode], cap=cap, args=args,
                             body=body)
        idempotent = opcode in self._IDEMPOTENT
        if self.retrier is None:
            reply = yield from self.rpc.trans(
                port, request, timeout=self.timeout
            )
        else:
            if not idempotent:
                request.txid = self.rpc.new_txid()

            def attempt():
                reply = yield self.env.process(
                    self.rpc.trans(port, request, timeout=self.timeout)
                )
                return reply

            reply = yield from self.retrier.run(
                attempt, op=f"dir[{opcode}]",
                idempotent=idempotent, dedupe=not idempotent,
            )
        if not reply.ok:
            raise error_for_status(reply.status, reply.message)
        return reply

    # ----------------------------------------------------- single-server

    @property
    def port(self) -> Optional[int]:
        """The default directory server's port (so the client can stand
        in wherever a :class:`~repro.directory.DirectoryServer` is
        expected, e.g. under :class:`~repro.unixemu.UnixEmulation`)."""
        return self.default_port

    def create_directory(self, port: Optional[int] = None):
        """Process: a new directory on the given (or default) server."""
        port = port if port is not None else self.default_port
        reply = yield from self._call(port, "CREATE_DIR")
        return reply.caps[0]

    def lookup(self, dir_cap: Capability, name: str):
        """Process: one-component lookup; returns the primary capability."""
        reply = yield from self._call(dir_cap.port, "LOOKUP", cap=dir_cap,
                                      args=(name,))
        return reply.caps[0]

    def lookup_set(self, dir_cap: Capability, name: str):
        """Process: the full capability set bound to ``name`` (one
        member per replica)."""
        reply = yield from self._call(dir_cap.port, "LOOKUP", cap=dir_cap,
                                      args=(name,))
        return list(reply.caps)

    @staticmethod
    def _pack_targets(target) -> bytes:
        caps = (target,) if isinstance(target, Capability) else tuple(target)
        return b"".join(cap.pack() for cap in caps)

    def append(self, dir_cap: Capability, name: str, target):
        """Process: bind ``name`` to a capability or a capability set
        (replicas on several servers)."""
        yield from self._call(dir_cap.port, "APPEND", cap=dir_cap,
                              args=(name,), body=self._pack_targets(target))

    def replace(self, dir_cap: Capability, name: str, target):
        """Process: atomic rebind; returns the old primary capability."""
        reply = yield from self._call(dir_cap.port, "REPLACE", cap=dir_cap,
                                      args=(name,),
                                      body=self._pack_targets(target))
        return reply.caps[0]

    def update_many(self, dir_cap: Capability, changes: dict):
        """Process: atomic multi-entry update. ``changes`` maps names to
        a capability / capability set, or None to remove."""
        args = []
        body_parts = []
        for name, value in changes.items():
            if value is None:
                args.append((name, 0))
            else:
                caps = (value,) if isinstance(value, Capability) else tuple(value)
                args.append((name, len(caps)))
                body_parts.extend(cap.pack() for cap in caps)
        yield from self._call(dir_cap.port, "UPDATE_MANY", cap=dir_cap,
                              args=tuple(args), body=b"".join(body_parts))

    def remove_entry(self, dir_cap: Capability, name: str):
        """Process: unbind; returns the removed capability."""
        reply = yield from self._call(dir_cap.port, "REMOVE", cap=dir_cap,
                                      args=(name,))
        return reply.caps[0]

    def list_names(self, dir_cap: Capability):
        """Process: sorted entry names."""
        reply = yield from self._call(dir_cap.port, "LIST", cap=dir_cap)
        return list(reply.args)

    def delete_directory(self, dir_cap: Capability):
        """Process: delete an empty directory object."""
        yield from self._call(dir_cap.port, "DELETE_DIR", cap=dir_cap)

    def lookup_path(self, dir_cap: Capability, path: str):
        """Process: server-side path resolution (single server; for
        cross-server paths use :meth:`walk`)."""
        reply = yield from self._call(dir_cap.port, "LOOKUP_PATH",
                                      cap=dir_cap, args=(path,))
        return reply.caps[0]

    def history(self, dir_cap: Capability):
        """Process: the directory's version-chain capabilities."""
        reply = yield from self._call(dir_cap.port, "HISTORY", cap=dir_cap)
        return list(reply.caps)

    # ------------------------------------------------------ cross-server

    def walk(self, root_cap: Capability, path: str, dir_ports=None):
        """Process: resolve a ``/``-separated path, hopping servers.

        Each component is looked up on whichever server the current
        capability names — local or behind a gateway, the transport
        decides. ``dir_ports`` (optional) is the set of ports that are
        directory services; when given, descending *through* a
        non-directory raises immediately instead of confusing a file
        server with directory opcodes.
        """
        current = root_cap
        parts = [p for p in path.split("/") if p]
        for i, component in enumerate(parts):
            if dir_ports is not None and current.port not in dir_ports:
                raise NotADirectoryError_(
                    f"{'/'.join(parts[:i])!r} is not a directory service object"
                )
            current = yield from self.lookup(current, component)
        return current
