"""Open-by-name sessions: the §5 coherence plane (DESIGN.md §14).

The paper makes cache coherence the *directory's* job: "Checking if a
cached copy of a file is still current is simply done by looking up its
capability in the directory service, and comparing it to the capability
on which the copy is based." The file server never sees coherence
traffic — immutability means a cached copy can never be stale *for its
capability*; the only mutable binding is the directory entry from a
name to a capability.

:class:`NamedFileClient` is the session layer that runs that protocol
for one workstation: it keeps a per-workstation **name → binding**
cache over a :class:`~repro.client.CachingBulletClient` (the byte
cache) and a directory stub, runs the currency check on ``open`` per a
selectable :class:`CurrencyPolicy`, and — when a binding turns out
stale — invalidates the workstation-cache entry the dead binding
pointed at and re-fetches under the fresh capability. The policies
make the coherence traffic/staleness trade-off measurable:

* ``CurrencyPolicy.always()`` — check every open (never serves a read
  older than the binding current at open time; one directory RPC per
  open).
* ``CurrencyPolicy.after(T)`` — check only when the binding is older
  than ``T`` simulated seconds (bounded staleness, amortized traffic).
* ``CurrencyPolicy.session()`` — bind once, never re-check (zero
  steady-state directory traffic; staleness unbounded until the next
  session).

Every outcome is accounted per workstation on the shared registry:
``repro_client_coherence_{opens,binds,checks,stale,revalidations,
dir_rpcs}_total{workstation=...}`` — the directory-RPC counter is the
quantity the ``coherence_vs_workstations`` bench sweeps, because the
directory service is the coherence plane's shared point as
workstations multiply (the file server is shielded by the byte cache).

A vanished file (the name moved on and the superseded version was
disposed of) is not an error surface: reads retry through a *forced*
currency check — name-mediated recovery, the server never notifies.
"""

from __future__ import annotations

from typing import Optional

from ..capability import Capability
from ..errors import BadRequestError, CapabilityError, NotFoundError
from ..obs import MetricsRegistry, RegistryStats
from .bullet_client import CachingBulletClient

__all__ = ["CurrencyPolicy", "NamedFile", "NamedFileClient",
           "CoherenceStats"]

#: How many vanished-file recovery rounds one read attempts before
#: giving up; each round is a fresh directory check + fetch, so more
#: than a couple means the name is being rebound faster than a file
#: can be fetched.
_MAX_REFETCH_ROUNDS = 8

#: What a capability to a *vanished* file surfaces as. NotFoundError
#: when the object slot is simply free; CapabilityError when the server
#: has already reused the object number for a new incarnation (the old
#: capability's check field no longer verifies). Either way the §5
#: answer is the same: ask the directory what the name means now.
_GONE_ERRORS = (NotFoundError, CapabilityError)


class CoherenceStats(RegistryStats):
    """Per-workstation counters of the coherence plane, as a facade
    over the shared registry (``repro_client_coherence_*_total``)."""

    _PREFIX = "repro_client_coherence"
    _COUNTER_FIELDS = (
        "opens",
        "binds",
        "checks",
        "stale",
        "revalidations",
        "dir_rpcs",
    )


class CurrencyPolicy:
    """When an ``open`` re-checks a name binding against the directory.

    ``always`` re-checks every open; ``after(T)`` re-checks once the
    binding is at least ``T`` simulated seconds old; ``session`` checks
    only at bind time. Stronger currency costs more directory RPCs —
    the trade-off the bench measures.
    """

    ALWAYS = "always"
    AFTER = "after"
    SESSION = "session"

    __slots__ = ("kind", "interval")

    def __init__(self, kind: str, interval: float = 0.0):
        if kind not in (self.ALWAYS, self.AFTER, self.SESSION):
            raise BadRequestError(f"unknown currency policy {kind!r}")
        if kind == self.AFTER and interval <= 0.0:
            raise BadRequestError(
                "check-after policy needs a positive interval"
            )
        self.kind = kind
        self.interval = interval

    @classmethod
    def always(cls) -> "CurrencyPolicy":
        """Check on every open."""
        return cls(cls.ALWAYS)

    @classmethod
    def after(cls, interval: float) -> "CurrencyPolicy":
        """Check when the binding is older than ``interval`` sim-seconds."""
        return cls(cls.AFTER, interval)

    @classmethod
    def session(cls) -> "CurrencyPolicy":
        """Bind once, never re-check."""
        return cls(cls.SESSION)

    def due(self, now: float, checked_at: float) -> bool:
        """Whether a binding last checked at ``checked_at`` must be
        re-validated at sim-time ``now``."""
        if self.kind == self.ALWAYS:
            return True
        if self.kind == self.SESSION:
            return False
        return now - checked_at >= self.interval

    def __repr__(self) -> str:
        if self.kind == self.AFTER:
            return f"CurrencyPolicy.after({self.interval!r})"
        return f"CurrencyPolicy.{self.kind}()"


class _Binding:
    """One name's cached resolution: the capability the workstation's
    copy is based on, and when the directory last confirmed it."""

    __slots__ = ("cap", "checked_at")

    def __init__(self, cap: Capability, checked_at: float):
        self.cap = cap
        self.checked_at = checked_at


class NamedFile:
    """An open name: a handle pairing the name with the capability its
    binding resolved to. Reads go back through the session, so a
    handle held across a rebind recovers via the forced re-check path
    instead of failing."""

    __slots__ = ("session", "name", "cap")

    def __init__(self, session: "NamedFileClient", name: str,
                 cap: Capability):
        self.session = session
        self.name = name
        self.cap = cap

    def read(self):
        """Process: the whole file this name currently denotes."""
        return (yield from self.session.read_open(self))

    def size(self):
        """Process: the file's size in bytes."""
        return (yield from self.session.size_open(self))

    def __repr__(self) -> str:
        return f"NamedFile({self.name!r} -> {self.cap})"


class NamedFileClient:
    """One workstation's open-by-name session over the caching plane.

    ``client`` is the workstation's :class:`CachingBulletClient` (whose
    :class:`~repro.client.WorkstationCache` holds the bytes and the
    capability evidence); ``directory`` is anything speaking the
    directory protocol (:class:`~repro.client.DirectoryClient` over
    RPC, or a local :class:`~repro.directory.DirectoryServer`);
    ``dir_cap`` names the directory the session resolves names in.
    """

    def __init__(self, client: CachingBulletClient, directory,
                 dir_cap: Capability,
                 policy: Optional[CurrencyPolicy] = None,
                 name: str = "workstation",
                 metrics: Optional[MetricsRegistry] = None):
        self.client = client
        self.env = client.env
        self.cache = client.cache
        self.directory = directory
        self.dir_cap = dir_cap
        self.policy = policy if policy is not None else CurrencyPolicy.always()
        self.name = name
        registry = metrics if metrics is not None else client.cache.metrics
        self.stats = CoherenceStats(registry, workstation=name)
        self._c_opens = self.stats.handle("opens")
        self._c_binds = self.stats.handle("binds")
        self._c_checks = self.stats.handle("checks")
        self._c_stale = self.stats.handle("stale")
        self._c_revalidations = self.stats.handle("revalidations")
        self._c_dir_rpcs = self.stats.handle("dir_rpcs")
        self._bindings: dict[str, _Binding] = {}

    # -------------------------------------------------------------- opens

    def open(self, name: str, check: Optional[bool] = None):
        """Process: resolve ``name`` to a :class:`NamedFile`.

        An unbound name costs one directory LOOKUP (the bind); a bound
        one runs the §5 currency check when the session's policy says
        it is due (``check=True``/``False`` forces or suppresses the
        check regardless of policy). A stale binding invalidates the
        workstation-cache entry it pointed at, rebinds, and re-fetches
        the fresh bytes, so the returned handle reads current data.
        """
        self._c_opens.inc(1)
        binding = self._bindings.get(name)
        if binding is None:
            binding = yield from self._bind(name)
            return NamedFile(self, name, binding.cap)
        due = (self.policy.due(self.env.now, binding.checked_at)
               if check is None else check)
        if due:
            yield from self._revalidate(name, binding)
        return NamedFile(self, name, binding.cap)

    def read(self, name: str):
        """Process: open + whole-file read — the coherence plane's unit
        operation (what the bench counts as one op)."""
        handle = yield from self.open(name)
        return (yield from self.read_open(handle))

    def forget(self, name: str) -> None:
        """Drop the local binding (the next open re-binds). The byte
        cache is untouched: the entry stays valid for its capability."""
        self._bindings.pop(name, None)

    # ------------------------------------------------------ handle access

    def read_open(self, handle: NamedFile):
        """Process: whole-file read under an open handle. A vanished
        file — the name was rebound and the superseded version disposed
        of between our check and the fetch — forces a fresh currency
        check and a retry: name-mediated recovery, bounded rounds."""
        for _ in range(_MAX_REFETCH_ROUNDS):
            try:
                return (yield from self.client.read(handle.cap))
            except _GONE_ERRORS:
                yield from self._recover(handle)
        raise NotFoundError(
            f"{handle.name!r}: rebound faster than it could be fetched "
            f"({_MAX_REFETCH_ROUNDS} recovery rounds)"
        )

    def size_open(self, handle: NamedFile):
        """Process: file size under an open handle, with the same
        vanished-file recovery as :meth:`read_open`."""
        for _ in range(_MAX_REFETCH_ROUNDS):
            try:
                return (yield from self.client.size(handle.cap))
            except _GONE_ERRORS:
                yield from self._recover(handle)
        raise NotFoundError(
            f"{handle.name!r}: rebound faster than it could be sized "
            f"({_MAX_REFETCH_ROUNDS} recovery rounds)"
        )

    # ------------------------------------------------------------ writers

    def publish(self, name: str, data: bytes, p_factor: int = 1,
                mask: Optional[int] = None):
        """Process: the writer side of the coherence plane. Creates an
        immutable file from ``data`` and atomically rebinds ``name`` to
        it (APPEND on first publish, REPLACE after) — the §5 version
        flip other workstations discover through their currency checks;
        the file server is never told.

        ``mask`` publishes a restricted capability (e.g. read-only)
        while the returned owner capability stays with the caller — the
        usual shape: readers get rights-limited capabilities, the
        writer keeps disposal rights over superseded versions.

        Returns ``(owner_cap, old_primary)`` where ``old_primary`` is
        the capability the name was bound to before (None on first
        publish); disposing of it is the caller's decision — readers
        mid-fetch recover through their own re-check.
        """
        owner = yield from self.client.create(data, p_factor)
        bound = owner
        if mask is not None:
            bound = yield from self.client.restrict(owner, mask)
        self._c_dir_rpcs.inc(1)
        try:
            old = yield from self.directory.replace(self.dir_cap, name, bound)
        except NotFoundError:
            self._c_dir_rpcs.inc(1)
            yield from self.directory.append(self.dir_cap, name, bound)
            old = None
        binding = self._bindings.get(name)
        if binding is None:
            self._bindings[name] = _Binding(bound, self.env.now)
        else:
            if old is not None:
                self.cache.invalidate(binding.cap)
            binding.cap = bound
            binding.checked_at = self.env.now
        return owner, old

    # ----------------------------------------------------------- internals

    def _bind(self, name: str):
        """Process: cold directory lookup; installs and returns the
        binding (the full capability set's primary member)."""
        self._c_dir_rpcs.inc(1)
        caps = yield from self.directory.lookup_set(self.dir_cap, name)
        binding = _Binding(caps[0], self.env.now)
        self._bindings[name] = binding
        self._c_binds.inc(1)
        return binding

    def _revalidate(self, name: str, binding: _Binding):
        """Process: one §5 currency check for ``name``. A current
        binding just refreshes its timestamp; a stale one invalidates
        the workstation-cache entry it pointed at, rebinds to what the
        directory says now, and re-fetches the fresh bytes (so sibling
        opens hit). Returns True when the binding moved."""
        moved = False
        for _ in range(_MAX_REFETCH_ROUNDS):
            self._c_checks.inc(1)
            self._c_dir_rpcs.inc(1)
            current, cap = yield from self.client.lookup_validated(
                self.directory, self.dir_cap, name, binding.cap)
            if current:
                binding.checked_at = self.env.now
                return moved
            self._c_stale.inc(1)
            moved = True
            self.cache.invalidate(binding.cap)
            binding.cap = cap
            try:
                yield from self.client.read(cap)
            except _GONE_ERRORS:
                # Rebound again under our feet and the fetched version
                # disposed of; go around for the newest binding.
                continue
            self._c_revalidations.inc(1)
            binding.checked_at = self.env.now
            return moved
        raise NotFoundError(
            f"{name!r}: rebound faster than it could be revalidated "
            f"({_MAX_REFETCH_ROUNDS} rounds)"
        )

    def _recover(self, handle: NamedFile):
        """Process: the handle's file vanished; force a currency check
        (whatever the policy) and repoint the handle."""
        binding = self._bindings.get(handle.name)
        if binding is None:
            binding = yield from self._bind(handle.name)
        else:
            yield from self._revalidate(handle.name, binding)
        handle.cap = binding.cap
