"""``python -m repro`` — regenerate the paper's headline comparison.

Runs a quick version of Figures 2 and 3 (one repeat per cell) on the
calibrated testbed and prints the tables, the claim checks, and the
bandwidth chart. The full benchmark suite lives in ``benchmarks/``.

Options::

    python -m repro              # quick tables (seconds)
    python -m repro --full       # three repeats per cell, as in benchmarks/
    python -m repro --seed 42    # different background-load seed
"""

from __future__ import annotations

import argparse

from .bench import (
    PAPER_SIZES,
    ascii_chart,
    bullet_figure2,
    comparison_lines,
    make_rig,
    nfs_figure3,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Bullet-vs-NFS comparison "
                    "(van Renesse et al., ICDCS 1989).",
    )
    parser.add_argument("--full", action="store_true",
                        help="three repeats per cell instead of one")
    parser.add_argument("--seed", type=int, default=1989,
                        help="experiment seed (default: 1989)")
    args = parser.parse_args(argv)
    repeats = 3 if args.full else 1

    print(f"building the 1989 testbed (seed {args.seed})...\n")
    rig = make_rig(seed=args.seed)
    fig2 = bullet_figure2(rig, sizes=PAPER_SIZES, repeats=repeats)
    fig3 = nfs_figure3(rig, sizes=PAPER_SIZES, repeats=repeats)

    print(fig2.render_delay())
    print()
    print(fig2.render_bandwidth())
    print()
    print(fig3.render_delay())
    print()
    print(fig3.render_bandwidth())
    print()
    print(comparison_lines(fig2, fig3))
    print()
    print(ascii_chart(
        {"Bullet READ": fig2, "NFS READ": fig3},
        {"Bullet READ": "READ", "NFS READ": "READ"},
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
