"""Exception hierarchy and Amoeba-style status codes.

Amoeba RPCs return small integer status codes; the Python API raises
exceptions instead, but every exception carries the status code it would
have produced on the wire so that the RPC layer can marshal errors across
the simulated network and reconstruct the right exception on the client
side (see :func:`error_for_status`).
"""

from __future__ import annotations

import enum


class Status(enum.IntEnum):
    """Wire-level status codes, loosely modeled on Amoeba's std errors."""

    OK = 0
    CAP_BAD = 1          # capability failed the check-field verification
    NO_RIGHTS = 2        # capability valid but lacks the required right
    NOT_FOUND = 3        # object number does not name a live object
    NO_SPACE = 4         # disk or cache exhausted
    BAD_REQUEST = 5      # malformed request
    TOO_BIG = 6          # file does not fit in server memory
    SERVER_DOWN = 7      # server unreachable / crashed
    TIMEOUT = 8          # RPC transaction timed out
    IO_ERROR = 9         # unrecoverable disk error
    EXISTS = 10          # name already bound (directory service)
    NOT_EMPTY = 11       # directory not empty
    NOT_A_DIRECTORY = 12
    INCONSISTENT = 13    # on-disk state failed a consistency check


class ReproError(Exception):
    """Base class for every error raised by this library."""

    status: Status = Status.BAD_REQUEST

    def __init__(self, message: str = ""):
        super().__init__(message or self.__class__.__name__)


class CapabilityError(ReproError):
    """The presented capability failed cryptographic verification."""

    status = Status.CAP_BAD


class RightsError(ReproError):
    """The capability verified but does not grant the required rights."""

    status = Status.NO_RIGHTS


class NotFoundError(ReproError):
    """No live object with this object number (or name)."""

    status = Status.NOT_FOUND


class NoSpaceError(ReproError):
    """Allocation failed: disk area, inode table, or RAM cache exhausted."""

    status = Status.NO_SPACE


class BadRequestError(ReproError):
    """Request malformed or arguments out of range."""

    status = Status.BAD_REQUEST


class FileTooBigError(ReproError):
    """The file cannot be held contiguously in the server's memory."""

    status = Status.TOO_BIG


class ServerDownError(ReproError):
    """The server (or its last disk) is down."""

    status = Status.SERVER_DOWN


class RpcTimeoutError(ReproError):
    """The RPC transaction exceeded its timeout."""

    status = Status.TIMEOUT


class DiskIOError(ReproError):
    """The disk reported an unrecoverable error."""

    status = Status.IO_ERROR


class ExistsError(ReproError):
    """Directory entry already exists."""

    status = Status.EXISTS


class NotEmptyError(ReproError):
    """Directory is not empty."""

    status = Status.NOT_EMPTY


class NotADirectoryError_(ReproError):
    """The capability does not name a directory object."""

    status = Status.NOT_A_DIRECTORY


class ConsistencyError(ReproError):
    """Startup scan found inconsistent on-disk state (e.g. overlapping
    files), or an internal invariant was violated."""

    status = Status.INCONSISTENT


class DeadlockError(ReproError):
    """The per-file lock table found a waits-for cycle.

    The requesting process can never be granted: every process in the
    cycle is waiting (directly or through the FIFO queue) on a lock
    held by the next one. Raised synchronously from the acquire call —
    with the cycle spelled out — instead of letting the simulation
    hang or die with an uninformative "no scheduled events".
    """

    status = Status.INCONSISTENT


_STATUS_TO_ERROR: dict[Status, type[ReproError]] = {
    Status.CAP_BAD: CapabilityError,
    Status.NO_RIGHTS: RightsError,
    Status.NOT_FOUND: NotFoundError,
    Status.NO_SPACE: NoSpaceError,
    Status.BAD_REQUEST: BadRequestError,
    Status.TOO_BIG: FileTooBigError,
    Status.SERVER_DOWN: ServerDownError,
    Status.TIMEOUT: RpcTimeoutError,
    Status.IO_ERROR: DiskIOError,
    Status.EXISTS: ExistsError,
    Status.NOT_EMPTY: NotEmptyError,
    Status.NOT_A_DIRECTORY: NotADirectoryError_,
    Status.INCONSISTENT: ConsistencyError,
}


def error_for_status(status: int, message: str = "") -> ReproError:
    """Reconstruct the exception matching a wire-level status code.

    Used by RPC client stubs to re-raise server-side failures locally.
    """
    cls = _STATUS_TO_ERROR.get(Status(status), ReproError)
    return cls(message)
