"""Wire/storage formats of the directory service (S8).

A directory is "a two-column table, the first column containing names,
and the second containing the corresponding capabilities" (§2.1). Each
*version* of a directory is stored as one immutable Bullet file whose
header links to the previous version's capability — the Cedar-style
version chain the paper's reference [7] describes.

The directory server's own durable root state is a fixed array of
**slot records** on its private disk, one per directory object: the
object's secret and the Bullet capability of the directory's current
version. Updating a directory is therefore: create the new version file
(immutable, durable), then overwrite one slot block — crash-atomic,
since a torn update leaves the slot pointing at the intact old version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..capability import CAP_WIRE_SIZE, Capability, NULL_CAPABILITY
from ..errors import BadRequestError, ConsistencyError

__all__ = ["DirectoryRows", "SlotRecord", "SLOT_RECORD_SIZE"]

_ROWS_MAGIC = 0xD1EC7000
_SLOT_MAGIC = 0x510717


def _normalize_rows(rows: dict) -> dict:
    """Values are capability *sets* (tuples); a bare capability is a
    singleton set. Amoeba directories stored sets so one name could bind
    replicas on several servers."""
    normalized = {}
    for name, value in rows.items():
        if isinstance(value, Capability):
            normalized[name] = (value,)
        else:
            caps = tuple(value)
            if not caps or not all(isinstance(c, Capability) for c in caps):
                raise BadRequestError(
                    f"entry {name!r} must bind one or more capabilities"
                )
            normalized[name] = caps
    return normalized


@dataclass
class DirectoryRows:
    """One version of a directory's contents.

    ``rows`` maps names to capability sets (tuples). The first member
    of a set is the primary; the rest are replicas of the same object
    on other servers.
    """

    seq: int = 0
    prev_version: Capability = NULL_CAPABILITY
    rows: dict = field(default_factory=dict)  # name -> tuple[Capability, ...]

    def __post_init__(self):
        self.rows = _normalize_rows(self.rows)

    def encode(self) -> bytes:
        parts = [
            _ROWS_MAGIC.to_bytes(4, "big"),
            self.seq.to_bytes(4, "big"),
            self.prev_version.pack(),
            len(self.rows).to_bytes(4, "big"),
        ]
        for name in sorted(self.rows):
            raw = name.encode("utf-8")
            if not 0 < len(raw) < (1 << 16):
                raise BadRequestError(f"directory entry name too long: {name!r}")
            caps = self.rows[name]
            if len(caps) > 255:
                raise BadRequestError(f"capability set for {name!r} too large")
            parts.append(len(raw).to_bytes(2, "big"))
            parts.append(raw)
            parts.append(len(caps).to_bytes(1, "big"))
            for cap in caps:
                parts.append(cap.pack())
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "DirectoryRows":
        if len(data) < 28:
            raise ConsistencyError("directory file truncated")
        magic = int.from_bytes(data[0:4], "big")
        if magic != _ROWS_MAGIC:
            raise ConsistencyError(f"not a directory file (magic {magic:#x})")
        seq = int.from_bytes(data[4:8], "big")
        prev = Capability.unpack(data[8:24])
        count = int.from_bytes(data[24:28], "big")
        rows = {}
        offset = 28
        for _ in range(count):
            name_len = int.from_bytes(data[offset:offset + 2], "big")
            offset += 2
            name = data[offset:offset + name_len].decode("utf-8")
            offset += name_len
            ncaps = data[offset]
            offset += 1
            caps = []
            for _ in range(ncaps):
                caps.append(Capability.unpack(data[offset:offset + CAP_WIRE_SIZE]))
                offset += CAP_WIRE_SIZE
            rows[name] = tuple(caps)
        return cls(seq=seq, prev_version=prev, rows=rows)


#: On-disk size of one slot record (padded to this; one per disk block).
SLOT_RECORD_SIZE = 32


@dataclass
class SlotRecord:
    """Durable root record for one directory object."""

    in_use: bool = False
    secret: int = 0
    seq: int = 0
    version_cap: Capability = NULL_CAPABILITY

    def encode(self) -> bytes:
        blob = (
            _SLOT_MAGIC.to_bytes(4, "big")
            + (1 if self.in_use else 0).to_bytes(1, "big")
            + self.secret.to_bytes(6, "big")
            + self.seq.to_bytes(4, "big")
            + self.version_cap.pack()
        )
        return blob + bytes(SLOT_RECORD_SIZE - len(blob))

    @classmethod
    def decode(cls, data: bytes) -> "SlotRecord":
        if len(data) < SLOT_RECORD_SIZE:
            raise ConsistencyError("slot record truncated")
        magic = int.from_bytes(data[0:4], "big")
        if magic != _SLOT_MAGIC:
            # A never-written (all-zero) slot decodes as a free slot.
            if data[:SLOT_RECORD_SIZE] == bytes(SLOT_RECORD_SIZE):
                return cls()
            raise ConsistencyError(f"corrupt slot record (magic {magic:#x})")
        return cls(
            in_use=bool(data[4]),
            secret=int.from_bytes(data[5:11], "big"),
            seq=int.from_bytes(data[11:15], "big"),
            version_cap=Capability.unpack(data[15:31]),
        )
