"""The directory server (S8).

"The directory server is used in conjunction with the Bullet server.
Its function is to handle naming and protection of Bullet server files
and other objects in a simple, uniform way." Directories map
human-chosen ASCII names to capabilities; directories are objects
themselves, addressed by capabilities, so arbitrary naming graphs can be
built ("by placing directory capabilities in directories").

Storage model (see :mod:`repro.directory.records`): every directory
version is an immutable Bullet file; the server's own disk holds one
slot record per directory with the current version's capability. All
mutations are crash-atomic: new version file first (durable), slot
record second.

The **version mechanism** the paper defers to the directory service [7]
falls out of this design: :meth:`DirectoryServer.replace` swaps which
immutable file a name points to, and :meth:`history` walks the
prev-version chain of the directory itself.
"""

from __future__ import annotations

from typing import Optional

from ..capability import (
    CAP_WIRE_SIZE,
    Capability,
    RIGHT_CREATE,
    RIGHT_DELETE,
    RIGHT_READ,
    mint_owner,
    port_for_name,
    require,
)
from ..errors import (
    BadRequestError,
    ExistsError,
    NotADirectoryError_,
    NotEmptyError,
    NotFoundError,
    ReproError,
)
from ..net import RpcReply, RpcRequest, RpcTransport
from ..profiles import Testbed
from ..sim import Environment, Interrupt, SeededStream, Tracer
from .records import DirectoryRows, SlotRecord

__all__ = ["DirectoryServer", "DIR_OPCODES"]

DIR_OPCODES = {
    "CREATE_DIR": 20,
    "LOOKUP": 21,
    "APPEND": 22,
    "REPLACE": 23,
    "REMOVE": 24,
    "LIST": 25,
    "DELETE_DIR": 26,
    "HISTORY": 27,
    "LOOKUP_PATH": 28,
    "UPDATE_MANY": 29,
}

_HEADER_MAGIC = 0xD1650001


def _unpack_cap_set(body: bytes) -> tuple:
    """Decode one or more packed capabilities from a request body."""
    if not body or len(body) % CAP_WIRE_SIZE:
        raise BadRequestError(
            f"capability-set body must be a multiple of {CAP_WIRE_SIZE} bytes"
        )
    return tuple(
        Capability.unpack(body[i:i + CAP_WIRE_SIZE])
        for i in range(0, len(body), CAP_WIRE_SIZE)
    )


class DirectoryServer:
    """A directory server backed by a private disk (or a mirrored set of
    them, for the same availability story as the Bullet server) plus a
    Bullet stub for row storage."""

    def __init__(
        self,
        env: Environment,
        disk,
        bullet_stub,
        testbed: Testbed,
        name: str = "directory",
        transport: Optional[RpcTransport] = None,
        master_seed: int = 0,
        max_directories: int = 512,
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.disk = disk
        self.bullet = bullet_stub
        self.testbed = testbed
        self.name = name
        self.port = port_for_name(name)
        self.transport = transport
        self.max_directories = max_directories
        self._secrets = SeededStream(master_seed, f"{name}:secrets")
        self._tracer = tracer
        self._slots: list[SlotRecord] = []
        self._rows_cache: dict[int, DirectoryRows] = {}
        self._free_slots: list[int] = []
        self._booted = False
        self._endpoint = None
        self._serve_proc = None

    # -------------------------------------------------------------- setup

    def format(self) -> None:
        """Initialize the slot region on the private disk (untimed)."""
        header = _HEADER_MAGIC.to_bytes(4, "big") + self.max_directories.to_bytes(4, "big")
        self.disk.write_raw(0, header + bytes(self.disk.block_size - len(header)))
        empty = SlotRecord().encode()
        for slot in range(self.max_directories):
            self.disk.write_raw(1 + slot, empty + bytes(self.disk.block_size - len(empty)))

    def boot(self):
        """Process: load the slot table (one contiguous read) and serve."""
        raw = yield self.disk.read(0, 1 + self.max_directories)
        bs = self.disk.block_size
        header = raw[:8]
        if int.from_bytes(header[:4], "big") != _HEADER_MAGIC:
            raise BadRequestError(f"{self.name}: disk is not a directory volume")
        self._slots = []
        self._free_slots = []
        for slot in range(self.max_directories):
            record = SlotRecord.decode(raw[(1 + slot) * bs:(1 + slot) * bs + 32])
            self._slots.append(record)
            if not record.in_use:
                self._free_slots.append(slot)
        self._free_slots.reverse()  # allocate low slots first
        self._rows_cache.clear()
        self._booted = True
        if self.transport is not None:
            self._endpoint = self.transport.register(self.port)
            # The service loop runs for the server's whole life;
            # crash() interrupts it (and a reboot starts a fresh one).
            self._serve_proc = self.env.process(self._serve())
        self._trace("directory", f"{self.name} booted",
                    dirs=sum(1 for s in self._slots if s.in_use))
        return sum(1 for s in self._slots if s.in_use)

    def crash(self) -> None:
        """Stop serving and drop volatile state (rows cache). The
        service loop is interrupted even mid-request."""
        if self._endpoint is not None:
            self._endpoint.crash()
        self._booted = False
        self._rows_cache.clear()
        proc = self._serve_proc
        if (proc is not None and proc.is_alive
                and proc is not self.env.active_process):
            proc.interrupt("server crash")
        self._serve_proc = None

    # ----------------------------------------------------------- local API

    def create_directory(self):
        """Process: a fresh empty directory; returns its owner capability."""
        self._require_booted()
        if not self._free_slots:
            raise BadRequestError("directory table full")
        slot = self._free_slots.pop()
        secret = self._secrets.randint(1, (1 << 48) - 1)
        rows = DirectoryRows(seq=0, rows={})
        version_cap = yield from self.bullet.create(rows.encode(), 1)
        record = SlotRecord(in_use=True, secret=secret, seq=0,
                            version_cap=version_cap)
        yield self.disk.write(1 + slot, record.encode())
        self._slots[slot] = record
        self._rows_cache[slot] = rows
        if self._tracer is not None:
            self._trace("directory", "create_directory", slot=slot)
        return mint_owner(self.port, slot + 1, secret)

    def lookup(self, dir_cap: Capability, name: str):
        """Process: resolve one name to its primary capability (the
        first member of the entry's capability set)."""
        caps = yield from self.lookup_set(dir_cap, name)
        return caps[0]

    def lookup_set(self, dir_cap: Capability, name: str):
        """Process: the full capability set bound to ``name`` — one
        capability per replica when the object is stored on several
        servers (Amoeba's cap-sets)."""
        _slot, _record, rows = yield from self._open(dir_cap, RIGHT_READ)
        caps = rows.rows.get(name)
        if caps is None:
            raise NotFoundError(f"no entry {name!r}")
        return caps

    def list_names(self, dir_cap: Capability):
        """Process: the directory's names, sorted."""
        _slot, _record, rows = yield from self._open(dir_cap, RIGHT_READ)
        return sorted(rows.rows)

    def append(self, dir_cap: Capability, name: str, cap):
        """Process: bind ``name`` to a capability (or a capability set,
        one member per replica); the name must be new."""
        self._check_name(name)
        slot, record, rows = yield from self._open(dir_cap, RIGHT_CREATE)
        if name in rows.rows:
            raise ExistsError(f"entry {name!r} already exists")
        new_rows = dict(rows.rows)
        new_rows[name] = cap
        yield from self._commit(slot, record, rows, new_rows)

    def replace(self, dir_cap: Capability, name: str, cap):
        """Process: atomically rebind ``name`` (to a capability or a
        capability set); returns the old *primary* capability. This is
        the whole-file version-update primitive: the new immutable file
        is installed under the name in one step. Use :meth:`lookup_set`
        first when the old entry's replicas all need disposal."""
        self._check_name(name)
        slot, record, rows = yield from self._open(dir_cap, RIGHT_CREATE)
        old = rows.rows.get(name)
        if old is None:
            raise NotFoundError(f"no entry {name!r}")
        new_rows = dict(rows.rows)
        new_rows[name] = cap
        yield from self._commit(slot, record, rows, new_rows)
        return old[0]

    def remove_entry(self, dir_cap: Capability, name: str):
        """Process: unbind ``name``; returns the removed primary
        capability (see :meth:`lookup_set` for the full set)."""
        slot, record, rows = yield from self._open(dir_cap, RIGHT_DELETE)
        if name not in rows.rows:
            raise NotFoundError(f"no entry {name!r}")
        new_rows = dict(rows.rows)
        old = new_rows.pop(name)
        yield from self._commit(slot, record, rows, new_rows)
        return old[0]

    def update_many(self, dir_cap: Capability, changes: dict):
        """Process: apply several binds/rebinds/removals **atomically**,
        as one new directory version.

        ``changes`` maps names to a capability (or capability set) to
        bind, or ``None`` to remove the entry. Either every change lands
        or none does — a crash mid-commit leaves the previous version in
        force (the slot still points at the old file). This is the
        multi-object "transaction" the paper's consistency companion [7]
        builds from immutability + atomic replace.
        """
        if not changes:
            raise BadRequestError("update_many with no changes")
        for name in changes:
            self._check_name(name)
        needed = RIGHT_CREATE
        if any(value is None for value in changes.values()):
            needed |= RIGHT_DELETE
        slot, record, rows = yield from self._open(dir_cap, needed)
        new_rows = dict(rows.rows)
        for name, value in changes.items():
            if value is None:
                if name not in new_rows:
                    raise NotFoundError(f"no entry {name!r}")
                del new_rows[name]
            else:
                new_rows[name] = value
        yield from self._commit(slot, record, rows, new_rows)

    def delete_directory(self, dir_cap: Capability):
        """Process: delete an *empty* directory object."""
        slot, record, rows = yield from self._open(dir_cap, RIGHT_DELETE)
        if rows.rows:
            raise NotEmptyError(f"directory has {len(rows.rows)} entries")
        empty = SlotRecord()
        yield self.disk.write(1 + slot, empty.encode())
        self._slots[slot] = empty
        self._rows_cache.pop(slot, None)
        self._free_slots.append(slot)

    def lookup_path(self, root_cap: Capability, path: str):
        """Process: walk a ``/``-separated path from ``root_cap``.

        Every intermediate component must resolve to a directory on this
        server; the final component's capability is returned as-is (it
        may name a Bullet file, another directory, any object).
        """
        parts = [p for p in path.split("/") if p]
        if not parts:
            return root_cap
        current = root_cap
        for component in parts[:-1]:
            current = yield from self.lookup(current, component)
            if current.port != self.port:
                raise NotADirectoryError_(
                    f"{component!r} is not a directory on this server"
                )
        return (yield from self.lookup(current, parts[-1]))

    def history(self, dir_cap: Capability, limit: int = 16):
        """Process: capabilities of this directory's version files,
        newest first, by walking the prev-version chain."""
        slot, record, _rows = yield from self._open(dir_cap, RIGHT_READ)
        chain = [record.version_cap]
        cursor = record.version_cap
        while len(chain) < limit:
            raw = yield from self.bullet.read(cursor)
            rows = DirectoryRows.decode(raw)
            if rows.prev_version.check == 0 and rows.prev_version.port == 0:
                break
            chain.append(rows.prev_version)
            cursor = rows.prev_version
        return chain

    def prune_history(self, dir_cap: Capability, keep: int = 1):
        """Process: delete all but the newest ``keep`` version files.
        Returns how many versions were deleted."""
        if keep < 1:
            raise BadRequestError("must keep at least the current version")
        chain = yield from self.history(dir_cap, limit=1 << 16)
        doomed = chain[keep:]
        for cap in doomed:
            yield from self.bullet.delete(cap)
        if doomed:
            # Cut the chain: rewrite the oldest kept version? Not needed —
            # history() stops at the first unreadable link.
            pass
        return len(doomed)

    def status(self) -> dict:
        """std_status: live counters (synchronous)."""
        self._require_booted()
        in_use = sum(1 for s in self._slots if s.in_use)
        return {
            "name": self.name,
            "directories": in_use,
            "free_slots": len(self._free_slots),
            "rows_cached": len(self._rows_cache),
        }

    def reachable_caps(self, include_history: bool = True):
        """Process: every capability reachable from this directory
        server — the root set for the garbage-collection sweep
        (:mod:`repro.gc`).

        Includes each directory's current version file, every bound
        entry, and (optionally) the whole version-chain of each
        directory, so retained history is never collected.
        """
        self._require_booted()
        caps: list[Capability] = []
        for slot, record in enumerate(self._slots):
            if not record.in_use:
                continue
            dir_cap = mint_owner(self.port, slot + 1, record.secret)
            if include_history:
                chain = yield from self.history(dir_cap, limit=1 << 16)
                caps.extend(chain)
            else:
                caps.append(record.version_cap)
            _slot, _record, rows = yield from self._open(dir_cap, 0)
            for cap_set in rows.rows.values():
                caps.extend(cap_set)
        return caps

    # ----------------------------------------------------------- internals

    def _open(self, dir_cap: Capability, needed_rights: int):
        """Verify a directory capability and load its current rows."""
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.capability_check)
        slot = dir_cap.object - 1
        if not 0 <= slot < self.max_directories:
            raise NotFoundError(f"directory object {dir_cap.object} out of range")
        record = self._slots[slot]
        if not record.in_use:
            raise NotFoundError(f"directory object {dir_cap.object} does not exist")
        require(dir_cap, record.secret, needed_rights)
        rows = self._rows_cache.get(slot)
        if rows is None:
            raw = yield from self.bullet.read(record.version_cap)
            rows = DirectoryRows.decode(raw)
            self._rows_cache[slot] = rows
        return slot, record, rows

    def _commit(self, slot: int, record: SlotRecord, old_rows: DirectoryRows,
                new_rows: dict):
        """Write a new directory version, then the slot record."""
        version = DirectoryRows(
            seq=old_rows.seq + 1,
            prev_version=record.version_cap,
            rows=new_rows,
        )
        version_cap = yield from self.bullet.create(version.encode(), 1)
        new_record = SlotRecord(in_use=True, secret=record.secret,
                                seq=version.seq, version_cap=version_cap)
        yield self.disk.write(1 + slot, new_record.encode())
        self._slots[slot] = new_record
        self._rows_cache[slot] = version

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or "/" in name:
            raise BadRequestError(f"invalid entry name {name!r}")

    def _require_booted(self) -> None:
        if not self._booted:
            raise BadRequestError(f"server {self.name} is not booted")

    # ------------------------------------------------------------ RPC plane

    def _serve(self):
        try:
            endpoint = self._endpoint
            while self._booted and endpoint is self._endpoint:
                req = yield endpoint.getreq()
                try:
                    reply = yield from self._dispatch(req)
                except ReproError as exc:
                    reply = RpcTransport.reply_for_error(exc)
                yield self.env.process(endpoint.putrep(req, reply))
        except Interrupt:
            return

    def _dispatch(self, req: RpcRequest):
        op = req.opcode
        if op == DIR_OPCODES["CREATE_DIR"]:
            cap = yield from self.create_directory()
            return RpcReply(caps=(cap,))
        if req.cap is None:
            raise BadRequestError("request carries no capability")
        if op == DIR_OPCODES["LOOKUP"]:
            caps = yield from self.lookup_set(req.cap, req.args[0])
            return RpcReply(caps=tuple(caps))
        if op == DIR_OPCODES["APPEND"]:
            targets = _unpack_cap_set(req.body)
            yield from self.append(req.cap, req.args[0], targets)
            return RpcReply()
        if op == DIR_OPCODES["REPLACE"]:
            targets = _unpack_cap_set(req.body)
            old = yield from self.replace(req.cap, req.args[0], targets)
            return RpcReply(caps=(old,))
        if op == DIR_OPCODES["REMOVE"]:
            old = yield from self.remove_entry(req.cap, req.args[0])
            return RpcReply(caps=(old,))
        if op == DIR_OPCODES["LIST"]:
            names = yield from self.list_names(req.cap)
            return RpcReply(args=tuple(names))
        if op == DIR_OPCODES["DELETE_DIR"]:
            yield from self.delete_directory(req.cap)
            return RpcReply()
        if op == DIR_OPCODES["HISTORY"]:
            chain = yield from self.history(req.cap)
            return RpcReply(caps=tuple(chain))
        if op == DIR_OPCODES["LOOKUP_PATH"]:
            cap = yield from self.lookup_path(req.cap, req.args[0])
            return RpcReply(caps=(cap,))
        if op == DIR_OPCODES["UPDATE_MANY"]:
            # args: tuple of (name, cap_count) pairs; cap_count 0 means
            # removal; body: the packed capabilities, in pair order.
            changes = {}
            offset = 0
            for name, count in req.args:
                if count == 0:
                    changes[name] = None
                else:
                    caps = tuple(
                        Capability.unpack(
                            req.body[offset + i * CAP_WIRE_SIZE:
                                     offset + (i + 1) * CAP_WIRE_SIZE]
                        )
                        for i in range(count)
                    )
                    offset += count * CAP_WIRE_SIZE
                    changes[name] = caps
            yield from self.update_many(req.cap, changes)
            return RpcReply()
        raise BadRequestError(f"unknown directory opcode {op}")

    def _trace(self, category: str, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(category, message, **fields)
