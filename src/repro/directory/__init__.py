"""Directory service (S8): naming, protection, and version management
for Bullet files and other capability-addressed objects."""

from .records import DirectoryRows, SlotRecord, SLOT_RECORD_SIZE
from .server import DIR_OPCODES, DirectoryServer

__all__ = [
    "DirectoryRows",
    "SlotRecord",
    "SLOT_RECORD_SIZE",
    "DIR_OPCODES",
    "DirectoryServer",
]
