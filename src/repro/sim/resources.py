"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — a counted resource with a FIFO wait queue. The
  simulated Ethernet (one transmission at a time) and each disk arm
  (one seek/transfer at a time) are ``Resource(capacity=1)``.
* :class:`PriorityResource` — like :class:`Resource` but requests carry a
  priority (lower first); the disk elevator scheduler uses it.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``; the
  RPC layer's per-port request queues are Stores.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from .core import Environment, Event

__all__ = ["Resource", "PriorityResource", "Store", "Request"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority


class Resource:
    """A resource with ``capacity`` concurrent users and a FIFO queue."""

    __slots__ = ("env", "capacity", "_users", "_queue")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current users."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nobody holds or waits for the resource."""
        return not self._users and not self._queue

    def request(self) -> Request:
        """Claim the resource; yield the returned event to wait for it."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            # Immediate grant: complete in place when nothing else can
            # run at this instant (exact; see sim.core docstring).
            if not self.env.try_finish_now(req, req):
                req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def release(self, request: Request) -> None:
        """Release a previously granted request."""
        if request not in self._users:
            raise RuntimeError("releasing a request that does not hold the resource")
        self._users.discard(request)
        nxt = self._dequeue()
        if nxt is not None:
            self._users.add(nxt)
            # try_finish_now declines whenever the waiter already
            # registered a callback (the common suspended-process case),
            # falling back to the scheduled hand-off.
            if not self.env.try_finish_now(nxt, nxt):
                nxt.succeed(nxt)

    def cancel(self, request: Request) -> None:
        """Withdraw a queued request that has not been granted yet."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise RuntimeError("request not queued (already granted or cancelled)")

    # Queue discipline hooks (overridden by PriorityResource).

    def _enqueue(self, req: Request) -> None:
        self._queue.append(req)

    def _dequeue(self) -> Optional[Request]:
        return self._queue.popleft() if self._queue else None


class PriorityResource(Resource):
    """A resource whose waiters are served lowest-priority-value first.

    Ties are served FIFO (stable via an insertion counter).
    """

    __slots__ = ("_pqueue", "_counter")

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._pqueue: list = []
        self._counter = 0

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    @property
    def idle(self) -> bool:
        return not self._users and not self._pqueue

    def request(self, priority: float = 0.0) -> Request:  # type: ignore[override]
        req = Request(self, priority)
        if len(self._users) < self.capacity:
            self._users.add(req)
            if not self.env.try_finish_now(req, req):
                req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def cancel(self, request: Request) -> None:
        for i, (_, _, queued) in enumerate(self._pqueue):
            if queued is request:
                self._pqueue.pop(i)
                heapq.heapify(self._pqueue)
                return
        raise RuntimeError("request not queued (already granted or cancelled)")

    def _enqueue(self, req: Request) -> None:
        self._counter += 1
        heapq.heappush(self._pqueue, (req.priority, self._counter, req))

    def _dequeue(self) -> Optional[Request]:
        if not self._pqueue:
            return None
        _, _, req = heapq.heappop(self._pqueue)
        return req


class Store:
    """An unbounded FIFO channel of items.

    ``put`` never blocks; ``get`` returns an event that fires with the
    oldest item (immediately if one is available).
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of getters currently blocked on an empty store."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            if not self.env.try_finish_now(getter, item):
                getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            item = self._items.popleft()
            if not self.env.try_finish_now(event, item):
                event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        return self._items.popleft() if self._items else None
