"""Deterministic randomness for the simulation.

Every stochastic component (background Ethernet traffic, workload
generators, fault injection) draws from a :class:`SeededStream` derived
from a single experiment seed, so experiments replay bit-identically and
independent components do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence

__all__ = ["SeededStream", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 64-bit sub-seed for the component called ``name``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStream:
    """A named, independently seeded random stream.

    Thin wrapper over :class:`random.Random` plus the few distributions
    the workload model needs (bounded log-normal, exponential
    inter-arrivals, Zipf-like popularity).
    """

    def __init__(self, master_seed: int, name: str):
        self.name = name
        self._rng = random.Random(derive_seed(master_seed, name))
        self._zipf_tables: dict[tuple[int, float], list[float]] = {}

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def randbytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate (1/s)."""
        return self._rng.expovariate(rate)

    def lognormal_bounded(self, median: float, sigma: float,
                          lo: float, hi: float) -> float:
        """Log-normal with the given median, clamped to [lo, hi].

        Used for the UNIX file-size distribution (median 1 KB,
        99 % < 64 KB — Mullender & Tanenbaum, "Immediate Files").
        """
        value = self._rng.lognormvariate(math.log(median), sigma)
        return min(max(value, lo), hi)

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """An index in [0, n) drawn from a Zipf(skew) popularity curve.

        Inverse-CDF over the harmonic weights; O(log n) via bisection on
        a cached prefix table per (n, skew).
        """
        if n < 1:
            raise ValueError("zipf_index requires n >= 1")
        key = (n, skew)
        table = self._zipf_tables.get(key)
        if table is None:
            weights = [1.0 / (i + 1) ** skew for i in range(n)]
            total = sum(weights)
            acc = 0.0
            table = []
            for w in weights:
                acc += w / total
                table.append(acc)
            self._zipf_tables[key] = table
        u = self._rng.random()
        lo_i, hi_i = 0, n - 1
        while lo_i < hi_i:
            mid = (lo_i + hi_i) // 2
            if table[mid] < u:
                lo_i = mid + 1
            else:
                hi_i = mid
        return lo_i
