"""``python -m repro.sim.profile`` — profile a named bench suite.

The kernel fast paths were driven by profiles of the real suites, not
micro-guesses; this entry point makes that workflow repeatable::

    python -m repro.sim.profile fig2_fig3              # Figure 2/3 runs
    python -m repro.sim.profile worker_scaling          # PR5 suite
    python -m repro.sim.profile all --top 40            # both, top 40

Each bench runs once under :mod:`cProfile` and the top-N entries by
cumulative time are printed. Profile output is wall-clock and therefore
machine-dependent by nature — it is a development lens, never an
artifact input (the deterministic artifacts come from
``python -m repro.obs bench``/``bench-pr5``; the speedup artifact from
``python -m repro.obs speedup``).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

__all__ = ["main", "BENCHES"]


def _fig2_fig3(seed: int) -> None:
    from ..obs.bench import run_bench
    run_bench(seed=seed)


def _worker_scaling(seed: int) -> None:
    from ..obs.bench import run_bench_pr5
    run_bench_pr5(seed=seed)


#: Named suites: name -> callable(seed). ``all`` is synthesized below.
BENCHES = {
    "fig2_fig3": _fig2_fig3,
    "worker_scaling": _worker_scaling,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.profile",
        description="Run a named bench suite under cProfile and print "
                    "the hottest functions.",
    )
    parser.add_argument("bench", nargs="?", default="all",
                        choices=sorted(BENCHES) + ["all"],
                        help="suite to profile (default: all)")
    parser.add_argument("--seed", type=int, default=1989)
    parser.add_argument("--top", type=int, default=25,
                        help="rows of profile output (default: 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default: cumulative)")
    args = parser.parse_args(argv)

    names = sorted(BENCHES) if args.bench == "all" else [args.bench]
    for name in names:
        profiler = cProfile.Profile()
        profiler.enable()
        BENCHES[name](args.seed)
        profiler.disable()
        print(f"== {name} (seed={args.seed}, sort={args.sort}) ==")
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
