"""Discrete-event simulation kernel (substrate S1).

See :mod:`repro.sim.core` for the event/process model,
:mod:`repro.sim.resources` for shared resources,
:mod:`repro.sim.rng` for deterministic randomness, and
:mod:`repro.sim.trace` for telemetry.
"""

from .core import (
    AllOf,
    AnyOf,
    CountOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
    run_process,
)
from .resources import PriorityResource, Request, Resource, Store
from .rng import SeededStream, derive_seed
from .trace import NullTracer, Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "CountOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "run_process",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "SeededStream",
    "derive_seed",
    "NullTracer",
    "Tracer",
    "TraceRecord",
]
