"""Event tracing / telemetry.

Components emit timestamped trace records through a :class:`Tracer`;
tests assert on them, benchmarks aggregate them, and examples print them.
Tracing is off by default and costs one attribute check per emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .core import Environment

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    category: str
    message: str
    fields: tuple = ()

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.time * 1000:10.3f} ms] {self.category:<12} {self.message} {extra}".rstrip()


@dataclass
class Tracer:
    """Collects :class:`TraceRecord`s for an environment.

    ``categories`` restricts collection; ``sink`` (if set) is called for
    each record as it is emitted (e.g. ``print``).
    """

    env: Environment
    categories: Optional[set[str]] = None
    sink: Optional[Callable[[TraceRecord], None]] = None
    records: list[TraceRecord] = field(default_factory=list)
    enabled: bool = True
    span_seq: int = 0

    def emit(self, category: str, message: str, **fields) -> None:
        """Record one event at the current simulated time."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(
            time=self.env.now,
            category=category,
            message=message,
            fields=tuple(sorted(fields.items())),
        )
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    # ------------------------------------------------------------- spans

    def begin_span(self, category: str, name: str, parent: int = 0,
                   **fields) -> int:
        """Open a span: emit a begin marker, return the new span id.

        Span ids are sequential per tracer, so two same-seed runs number
        their spans identically. Returns 0 when tracing is disabled (the
        matching :meth:`end_span` then no-ops). ``parent`` links nested
        spans (0 = root); :func:`repro.obs.pair_spans` reassembles the
        B/E markers into :class:`~repro.obs.Span` objects.
        """
        if not self.enabled:
            return 0
        self.span_seq += 1
        span_id = self.span_seq
        if parent:
            self.emit(category, name, span=span_id, phase="B",
                      parent=parent, **fields)
        else:
            self.emit(category, name, span=span_id, phase="B", **fields)
        return span_id

    def end_span(self, span_id: int, category: str, name: str,
                 **fields) -> None:
        """Close a span opened by :meth:`begin_span` (0 is a no-op)."""
        if not self.enabled or not span_id:
            return
        self.emit(category, name, span=span_id, phase="E", **fields)

    def select(self, category: str) -> list[TraceRecord]:
        """All collected records in ``category``."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    def dump(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump of collected records."""
        wanted = set(categories) if categories is not None else None
        lines = [
            str(r)
            for r in self.records
            if wanted is None or r.category in wanted
        ]
        return "\n".join(lines)


class NullTracer(Tracer):
    """A tracer that drops everything (used when tracing is disabled)."""

    def __init__(self, env: Environment):
        super().__init__(env=env, enabled=False)

    def emit(self, category: str, message: str, **fields) -> None:
        return
