"""A small discrete-event simulation kernel.

This is the substrate on which every timed component of the reproduction
runs: the simulated disks, the shared Ethernet, the RPC layer, and the
servers themselves are all *processes* — Python generators that ``yield``
events (usually :class:`Timeout` or resource requests) and are resumed by
the :class:`Environment` when those events fire.

The design follows the classic event/process world view (as popularized
by SimPy), implemented from scratch so the reproduction has no external
dependencies:

* :class:`Event` — a one-shot occurrence with a success value or failure
  exception, and a callback list.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — wraps a generator; each yielded event suspends the
  process until the event fires. The generator's ``return`` value becomes
  the process's event value, so processes compose: ``result = yield
  env.process(sub())``.
* :class:`Environment` — the scheduler: a time-ordered event heap and the
  simulated clock.

Determinism: ties in the heap are broken by insertion order, so a given
program always replays identically. No wall-clock time or global RNG is
consulted anywhere in the kernel.

Fast paths
----------

The kernel carries a set of *observational-equivalence* fast paths
(DESIGN.md §10), all gated on ``Environment.fast`` (default from the
``REPRO_FAST_PATHS`` environment variable; set it to ``0`` to force the
exact reference semantics everywhere):

* :meth:`Environment.try_finish_now` — completes a freshly created event
  synchronously instead of routing it through the heap, legal only when
  the event has no observers (no callbacks) *and* nothing else can run
  at the current instant, so no other process can interleave.
* synchronous :class:`Process` completion — when a process terminates
  and nothing else can run at the current instant, its completion
  callbacks run inline instead of via a scheduled event.
* :meth:`Environment.timeout_batch` / :meth:`Environment.sleep` — one
  heap push for a run of consecutive delays, and a no-op for zero-delay
  sleeps that nothing can observe.

"Nothing else can run at the current instant" is two conditions,
centralized in :meth:`Environment.can_collapse`: the next heap entry
must be *strictly* later (an entry at the same tick always sorts before
a new push — older eid or interrupt priority — so it would interleave),
and no further callbacks of the event being processed right now may be
pending (the ``_solo`` flag, maintained by the dispatch loops; a second
callback of the same event runs at the same instant without touching
the heap, so the heap check alone cannot see it).

One documented obligation on callers: an event completed through
:meth:`~Environment.try_finish_now` must be yielded before the caller
performs any priority-0 scheduling (i.e. :meth:`Process.interrupt`),
because the reference execution would deliver such an interrupt before
the caller's resumption. Every resource/lock/store path in this tree
yields immediately, so the obligation is structural.

Every fast path is exact: it fires only when the reference execution
would have performed the identical state transitions in the identical
order, which is what the hypothesis reference-equivalence suite
(tests/test_kernel_equivalence.py) checks.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ConsistencyError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "CountOf",
    "run_process",
    "FAST_PATHS_DEFAULT",
    "set_env_created_hook",
]

#: Process-wide default for :attr:`Environment.fast`. CI's forced-exact
#: jobs export ``REPRO_FAST_PATHS=0`` to pin every environment to the
#: reference semantics without touching call sites.
FAST_PATHS_DEFAULT = os.environ.get("REPRO_FAST_PATHS", "1") != "0"

# Called with each new Environment (when set). The speedup bench uses it
# to find every environment a suite created so it can total scheduled
# event counts; deliberately a cold-path hook (fires once per env).
_env_created_hook: Optional[Callable[["Environment"], None]] = None


def set_env_created_hook(
        hook: Optional[Callable[["Environment"], None]]) -> None:
    """Install (or clear, with None) the new-environment observer."""
    global _env_created_hook
    _env_created_hook = hook


class Interrupt(Exception):
    """Thrown inside a process generator by :meth:`Process.interrupt`.

    ``cause`` carries whatever the interrupter passed (e.g. a disk-failure
    record for fault injection).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"Interrupt({cause!r})")
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from a None value.
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran). ``succeed``/``fail`` trigger the event;
    the environment processes it at the scheduled time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        # Set when a process observed the failure (prevents "unhandled
        # failure" noise for events whose failures are consumed).
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's success value, or its failure exception."""
        if self._value is _PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + succeed: a Timeout is born triggered,
        # so one attribute block and one heap push is the whole cost.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._schedule(self, delay)


class _Initialize(Event):
    """Internal: kicks a newly created process on the next step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._schedule(self)


class Process(Event):
    """A running process; also an event that fires when it terminates.

    The wrapped generator yields :class:`Event` instances. When a yielded
    event succeeds, the generator is resumed with the event's value; when
    it fails, the exception is thrown into the generator (so processes can
    ``try/except`` failures of sub-operations).
    """

    __slots__ = ("_gen", "_waiting_on", "_serial")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._gen = generator
        self._waiting_on: Optional[Event] = None
        env._proc_count += 1
        self._serial = env._proc_count
        _Initialize(env, self)

    @property
    def name(self) -> str:
        """Deterministic diagnostic name: the generator's qualname plus
        a per-environment creation serial. Creation order is replay-
        stable, so the same program names its processes identically on
        every run — race and deadlock reports can quote them and still
        compare byte-for-byte across runs."""
        code = getattr(self._gen, "gi_code", None)
        base = getattr(code, "co_qualname", None) or getattr(
            code, "co_name", "process")
        return f"{base}#{self._serial}"

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A process may not interrupt itself, and a dead process cannot be
        interrupted.
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a dead process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=0)

    def _resume(self, event: Event) -> None:
        # Ignore stale wakeups: an interrupt may arrive while we were
        # waiting on another event; when that event later fires we must
        # not resume twice off of it if the generator already terminated.
        # A failure delivered to a dead waiter counts as observed — the
        # process that would have handled it was interrupted (a crashed
        # server's in-flight disk write failing later must not surface
        # as an unhandled error from nowhere).
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        env = self.env
        env._active = self
        gen = self._gen
        send = gen.send
        try:
            while True:
                try:
                    if event._ok:
                        target = send(event._value)
                    else:
                        event._defused = True
                        target = gen.throw(event._value)
                except StopIteration as stop:
                    self._waiting_on = None
                    heap = env._heap
                    if (env.fast and env._solo
                            and (not heap or heap[0][0] > env._now)):
                        # Synchronous completion: nothing else can run
                        # at this instant, so the completion event would
                        # be the very next thing the heap pops — running
                        # its callbacks inline is observationally
                        # identical and saves the push.
                        self._ok = True
                        self._value = stop.value
                        callbacks = self.callbacks
                        self.callbacks = None
                        env._solo = len(callbacks) == 1
                        for callback in callbacks:
                            callback(self)
                        env._solo = True
                    else:
                        self.succeed(stop.value)
                    return
                except BaseException as exc:
                    # The process body raised: the process event fails.
                    # If nobody observes it, the failure surfaces from
                    # Environment.step (errors never pass silently).
                    self._waiting_on = None
                    self.fail(exc)
                    return
                if not isinstance(target, Event):
                    exc = TypeError(
                        f"process yielded a non-event: {target!r}"
                    )
                    # Crash the process with a clear error.
                    self._waiting_on = None
                    gen.close()
                    self.fail(exc)
                    return
                if target.callbacks is None:
                    # Already fired: loop and feed its value immediately.
                    event = target
                    continue
                self._waiting_on = target
                target.callbacks.append(self._resume)
                return
        finally:
            env._active = None


class _ConditionBase(Event):
    """Fires when ``need`` of the given events have succeeded.

    If enough events fail that success becomes impossible, the condition
    fails with the first failure's exception.
    """

    __slots__ = ("events", "_need", "_done", "_failed", "_first_failure")

    def __init__(self, env: "Environment", events: Iterable[Event], need: int):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"condition requires events, got {ev!r}")
        if need < 0 or need > len(self.events):
            raise ValueError(
                f"need {need} of {len(self.events)} events is impossible"
            )
        self._need = need
        self._done: set[int] = set()  # ids of events that fired successfully
        self._failed = 0
        self._first_failure: Optional[BaseException] = None
        # Register on every event even when need is already met: late
        # failures (e.g. a background replica write after a P-FACTOR 0
        # reply) must still be consumed rather than crash the run.
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if self._value is _PENDING and len(self._done) >= self._need:
            self.succeed(self._collect())

    def _collect(self) -> list:
        """Values of the events that have *fired* successfully, in event
        order. Note Timeout carries its value from construction, so we
        track firing explicitly rather than trusting ``triggered``."""
        return [ev._value for ev in self.events if id(ev) in self._done]

    def _check(self, event: Event) -> None:
        if not event._ok:
            # Consume the failure even if we already triggered; a late
            # replica failure after quorum must not crash the run.
            event._defused = True
        if self._value is not _PENDING:
            return
        if event._ok:
            self._done.add(id(event))
        else:
            self._failed += 1
            if self._first_failure is None:
                if not isinstance(event._value, BaseException):
                    raise ConsistencyError(
                        f"failed event carries a non-exception value: "
                        f"{event._value!r}"
                    )
                self._first_failure = event._value
        if len(self._done) >= self._need:
            self.succeed(self._collect())
        elif len(self.events) - self._failed < self._need:
            if self._first_failure is None:
                raise ConsistencyError(
                    "condition failed without a recorded first failure"
                )
            self.fail(self._first_failure)


class AllOf(_ConditionBase):
    """Fires when every event has succeeded; value is the list of values."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        events = list(events)
        super().__init__(env, events, need=len(events))


class AnyOf(_ConditionBase):
    """Fires when at least one event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need=1)


class CountOf(_ConditionBase):
    """Fires when ``need`` of the events have succeeded.

    This is the primitive behind the Bullet server's P-FACTOR: issue
    writes to all replicas and reply to the client once ``need`` of them
    have completed.
    """

    __slots__ = ()


class Environment:
    """The simulation scheduler and clock.

    ``fast`` enables the observational-equivalence fast paths (see the
    module docstring); it defaults to :data:`FAST_PATHS_DEFAULT` so one
    environment variable flips the whole process to reference semantics.
    """

    __slots__ = ("_now", "_heap", "_eid", "_active", "_solo", "_deadline",
                 "_proc_count", "fast", "_tie_hook")

    def __init__(self, initial_time: float = 0.0, fast: Optional[bool] = None):
        self._now = float(initial_time)
        self._heap: list = []
        self._eid = 0
        self._proc_count = 0
        self._active: Optional[Process] = None
        # True while no further callbacks of the event currently being
        # dispatched remain (see module docstring). True outside any
        # dispatch, where no same-instant callback can be pending.
        self._solo = True
        # The active run(until=<number>)'s deadline, +inf outside one.
        # peek() caps the collapse horizon here: a batched segment must
        # never span the instant the run loop will stop at, both so the
        # caller observes counters consistent with now==deadline and so
        # a self-scheduling daemon over an otherwise empty heap scans a
        # finite window instead of looping forever.
        self._deadline = float("inf")
        self.fast = FAST_PATHS_DEFAULT if fast is None else bool(fast)
        # Scheduling choice-point hook (model checking): consulted when
        # two or more heap entries tie on (time, priority). None — the
        # overwhelmingly common case — keeps the reference tie-break
        # (insertion order) and costs nothing on the hot dispatch loops,
        # which delegate to _run_hooked only when a hook is installed.
        self._tie_hook: Optional[Callable[[list], int]] = None
        if _env_created_hook is not None:
            _env_created_hook(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active

    @property
    def events_scheduled(self) -> int:
        """Total events ever pushed on the heap (the speedup bench's
        events/sec numerator; monotone, never reset)."""
        return self._eid

    # -- event construction helpers -------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_batch(self, delays: Iterable[float], value: Any = None) -> Timeout:
        """One event standing in for K sequential delays — a single heap
        push where the reference path pays K push/pop/resume cycles.

        The firing instant is the *left fold* ``((now + d1) + d2) + ...``,
        not ``now + sum(delays)``: the reference chain advances the clock
        one addition per hop and float addition is not associative, so
        accumulating any other way could land one ulp off the reference
        timestamp and break byte-identity of timing artifacts.

        Legality is the *caller's* obligation: collapsing the chain is
        observationally equivalent only when no other process can run at
        any of the intermediate instants (callers guard with
        :meth:`can_collapse`, see ``net/ethernet.py`` and
        ``disk/vdisk.py``).
        """
        when = self._now
        for delay in delays:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            when = when + delay
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = when - self._now
        self._eid += 1
        heappush(self._heap, (when, 1, self._eid, event))
        return event

    def sleep(self, delay: float):
        """Generator form of a plain delay: ``yield from env.sleep(d)``.

        Equivalent to ``yield env.timeout(d)``, except that a zero-delay
        sleep is skipped entirely when nothing else is scheduled at the
        current instant — the reference execution would pop the zero
        timeout immediately with no intervening event, so skipping the
        heap round-trip is exact.
        """
        if delay == 0.0 and self.fast and self._solo and (
                not self._heap or self._heap[0][0] > self._now):
            return None
        return (yield Timeout(self, delay))

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def count_of(self, events: Iterable[Event], need: int) -> CountOf:
        return CountOf(self, events, need)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._eid += 1
        heappush(self._heap, (self._now + delay, priority, self._eid, event))

    def can_collapse(self, end: float) -> bool:
        """True when no observer can run in the half-open interval
        [now, end] other than the caller itself.

        This is the legality test for every analytic fast path: the next
        heap entry must be *strictly* after ``end`` (a same-tick entry
        would pop before anything the caller schedules now), and no
        further callbacks of the event currently being dispatched may
        remain (they would run at this instant without appearing on the
        heap). Pass ``end == now`` for point-in-time collapses
        (immediate grants); pass a later ``end`` for closed-form busy
        segments (network transfers, disk operations).
        """
        return (self.fast and self._solo
                and (not self._heap or self._heap[0][0] > end))

    def try_finish_now(self, event: Event, value: Any = None) -> bool:
        """Fast path: complete a *fresh* event synchronously.

        Returns True when the event was marked processed in place —
        legal only when nobody registered a callback yet (so no
        suspended process gets resumed out of turn) and
        :meth:`can_collapse` holds for the current instant (so the
        reference execution would pop this event next with no
        intervening work). Callers fall back to ``event.succeed(value)``
        on False. Immediate resource grants, store gets, and uncontended
        lock grants use this to skip the heap round-trip.
        """
        if (self.fast and self._solo and not event.callbacks
                and (not self._heap or self._heap[0][0] > self._now)):
            event._ok = True
            event._value = value
            event.callbacks = None
            return True
        return False

    def set_tie_hook(self, hook: Optional[Callable[[list], int]]) -> None:
        """Install (or clear, with None) the scheduling choice-point
        hook.

        When set, every dispatch that finds two or more heap entries
        tied on ``(time, priority)`` calls ``hook(entries)`` with the
        tied ``(when, priority, eid, event)`` tuples in insertion order
        (ascending eid) and dispatches the entry at the returned index;
        the rest go back on the heap. Index 0 therefore reproduces the
        reference schedule exactly. The model checker drives this to
        enumerate or randomize event orderings that the deterministic
        kernel would otherwise never exhibit. Installing a hook routes
        ``run``/``step`` through a generic (slower) dispatch loop; with
        the hook cleared the inlined hot loops are untouched.
        """
        self._tie_hook = hook

    def _pop_tied(self) -> tuple:
        """Pop the next entry, consulting the tie hook when the head of
        the heap is not unique in ``(time, priority)``."""
        heap = self._heap
        first = heappop(heap)
        if not heap or heap[0][0] != first[0] or heap[0][1] != first[1]:
            return first
        tied = [first]
        while heap and heap[0][0] == first[0] and heap[0][1] == first[1]:
            tied.append(heappop(heap))
        hook = self._tie_hook
        index = 0 if hook is None else hook(tied)
        if not 0 <= index < len(tied):
            raise ConsistencyError(
                f"tie hook chose {index} of {len(tied)} candidates")
        chosen = tied.pop(index)
        for entry in tied:
            heappush(heap, entry)
        return chosen

    def _dispatch(self, entry: tuple) -> None:
        """Reference dispatch of one popped heap entry (the body the
        ``run`` loops inline), used by the hooked run path."""
        when, _priority, _eid, event = entry
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        if len(callbacks) == 1:
            callbacks[0](event)
        else:
            self._solo = False
            for callback in callbacks:
                callback(event)
            self._solo = True
        if not event._ok and not event._defused:
            self._solo = True
            raise event._value

    def _run_hooked(self, until: Any) -> Any:
        """The ``run`` loop with tie-hook-aware pops. Functionally
        identical to :meth:`run` (which delegates here whenever a hook
        is installed) except that tied heap entries are resolved through
        the hook instead of insertion order."""
        heap = self._heap
        if until is None:
            while heap:
                self._dispatch(self._pop_tied())
            self._solo = True
            return None
        if isinstance(until, Event):
            while until.callbacks is not None:
                if not heap:
                    raise RuntimeError(
                        "deadlock: event will never fire (no scheduled events)"
                    )
                self._dispatch(self._pop_tied())
            self._solo = True
            if until._ok:
                return until._value
            until._defused = True
            raise until._value
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(
                f"until={deadline} is in the past (now={self._now})")
        self._deadline = deadline
        try:
            while heap and heap[0][0] <= deadline:
                self._dispatch(self._pop_tied())
        finally:
            self._deadline = float("inf")
        self._solo = True
        self._now = deadline
        return None

    def peek(self) -> float:
        """The earliest instant anything can next observe the world: the
        next scheduled event, capped at the running ``until`` deadline
        (+inf when neither bounds it)."""
        if self._heap:
            when = self._heap[0][0]
            return when if when < self._deadline else self._deadline
        return self._deadline

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise RuntimeError("no scheduled events")
        if self._tie_hook is None:
            when, _priority, _eid, event = heappop(self._heap)
        else:
            when, _priority, _eid, event = self._pop_tied()
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        self._solo = len(callbacks) == 1
        for callback in callbacks:
            callback(event)
        self._solo = True
        if not event._ok and not event._defused:
            # A failure nobody consumed: surface it rather than letting
            # errors pass silently.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        * ``until`` is ``None``: run until no events remain.
        * ``until`` is a number: run until the clock reaches it.
        * ``until`` is an :class:`Event`: run until it fires, then return
          its value (re-raising its exception on failure).

        The three loops below inline :meth:`step` (minus its empty-heap
        guard) — the per-event tuple unpack and callback dispatch is the
        single hottest path in the whole system, so it pays to keep it
        free of method-call and property overhead.
        """
        if self._tie_hook is not None:
            return self._run_hooked(until)
        heap = self._heap
        if until is None:
            while heap:
                when, _priority, _eid, event = heappop(heap)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    # _solo already True: the lone callback may collapse.
                    callbacks[0](event)
                else:
                    self._solo = False
                    for callback in callbacks:
                        callback(event)
                    self._solo = True
                if not event._ok and not event._defused:
                    self._solo = True
                    raise event._value
            self._solo = True
            return None
        if isinstance(until, Event):
            while until.callbacks is not None:
                if not heap:
                    raise RuntimeError(
                        "deadlock: event will never fire (no scheduled events)"
                    )
                when, _priority, _eid, event = heappop(heap)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    # _solo already True: the lone callback may collapse.
                    callbacks[0](event)
                else:
                    self._solo = False
                    for callback in callbacks:
                        callback(event)
                    self._solo = True
                if not event._ok and not event._defused:
                    self._solo = True
                    raise event._value
            self._solo = True
            if until._ok:
                return until._value
            until._defused = True
            raise until._value
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        self._deadline = deadline
        try:
            while heap and heap[0][0] <= deadline:
                when, _priority, _eid, event = heappop(heap)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    self._solo = False
                    for callback in callbacks:
                        callback(event)
                    self._solo = True
                if not event._ok and not event._defused:
                    self._solo = True
                    raise event._value
        finally:
            self._deadline = float("inf")
        self._solo = True
        self._now = deadline
        return None


def run_process(env: Environment, generator: Generator) -> Any:
    """Convenience for tests: run ``generator`` to completion, return value."""
    return env.run(until=env.process(generator))
