"""A small discrete-event simulation kernel.

This is the substrate on which every timed component of the reproduction
runs: the simulated disks, the shared Ethernet, the RPC layer, and the
servers themselves are all *processes* — Python generators that ``yield``
events (usually :class:`Timeout` or resource requests) and are resumed by
the :class:`Environment` when those events fire.

The design follows the classic event/process world view (as popularized
by SimPy), implemented from scratch so the reproduction has no external
dependencies:

* :class:`Event` — a one-shot occurrence with a success value or failure
  exception, and a callback list.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — wraps a generator; each yielded event suspends the
  process until the event fires. The generator's ``return`` value becomes
  the process's event value, so processes compose: ``result = yield
  env.process(sub())``.
* :class:`Environment` — the scheduler: a time-ordered event heap and the
  simulated clock.

Determinism: ties in the heap are broken by insertion order, so a given
program always replays identically. No wall-clock time or global RNG is
consulted anywhere in the kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ConsistencyError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "CountOf",
    "run_process",
]


class Interrupt(Exception):
    """Thrown inside a process generator by :meth:`Process.interrupt`.

    ``cause`` carries whatever the interrupter passed (e.g. a disk-failure
    record for fault injection).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"Interrupt({cause!r})")
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from a None value.
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran). ``succeed``/``fail`` trigger the event;
    the environment processes it at the scheduled time.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        # Set when a process observed the failure (prevents "unhandled
        # failure" noise for events whose failures are consumed).
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's success value, or its failure exception."""
        if self._value is _PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class _Initialize(Event):
    """Internal: kicks a newly created process on the next step."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running process; also an event that fires when it terminates.

    The wrapped generator yields :class:`Event` instances. When a yielded
    event succeeds, the generator is resumed with the event's value; when
    it fails, the exception is thrown into the generator (so processes can
    ``try/except`` failures of sub-operations).
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._gen = generator
        self._waiting_on: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A process may not interrupt itself, and a dead process cannot be
        interrupted.
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a dead process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=0)

    def _resume(self, event: Event) -> None:
        # Ignore stale wakeups: an interrupt may arrive while we were
        # waiting on another event; when that event later fires we must
        # not resume twice off of it if the generator already terminated.
        # A failure delivered to a dead waiter counts as observed — the
        # process that would have handled it was interrupted (a crashed
        # server's in-flight disk write failing later must not surface
        # as an unhandled error from nowhere).
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self.env._active = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._gen.send(event._value)
                    else:
                        event._defused = True
                        target = self._gen.throw(event._value)
                except StopIteration as stop:
                    self._waiting_on = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    # The process body raised: the process event fails.
                    # If nobody observes it, the failure surfaces from
                    # Environment.step (errors never pass silently).
                    self._waiting_on = None
                    self.fail(exc)
                    return
                if not isinstance(target, Event):
                    exc = TypeError(
                        f"process yielded a non-event: {target!r}"
                    )
                    # Crash the process with a clear error.
                    self._waiting_on = None
                    self._gen.close()
                    self.fail(exc)
                    return
                if target.processed:
                    # Already fired: loop and feed its value immediately.
                    event = target
                    continue
                self._waiting_on = target
                target.callbacks.append(self._resume)
                return
        finally:
            self.env._active = None


class _ConditionBase(Event):
    """Fires when ``need`` of the given events have succeeded.

    If enough events fail that success becomes impossible, the condition
    fails with the first failure's exception.
    """

    def __init__(self, env: "Environment", events: Iterable[Event], need: int):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"condition requires events, got {ev!r}")
        if need < 0 or need > len(self.events):
            raise ValueError(
                f"need {need} of {len(self.events)} events is impossible"
            )
        self._need = need
        self._done: set[int] = set()  # ids of events that fired successfully
        self._failed = 0
        self._first_failure: Optional[BaseException] = None
        # Register on every event even when need is already met: late
        # failures (e.g. a background replica write after a P-FACTOR 0
        # reply) must still be consumed rather than crash the run.
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.triggered and len(self._done) >= self._need:
            self.succeed(self._collect())

    def _collect(self) -> list:
        """Values of the events that have *fired* successfully, in event
        order. Note Timeout carries its value from construction, so we
        track firing explicitly rather than trusting ``triggered``."""
        return [ev.value for ev in self.events if id(ev) in self._done]

    def _check(self, event: Event) -> None:
        if not event.ok:
            # Consume the failure even if we already triggered; a late
            # replica failure after quorum must not crash the run.
            event._defused = True
        if self.triggered:
            return
        if event.ok:
            self._done.add(id(event))
        else:
            self._failed += 1
            if self._first_failure is None:
                if not isinstance(event.value, BaseException):
                    raise ConsistencyError(
                        f"failed event carries a non-exception value: "
                        f"{event.value!r}"
                    )
                self._first_failure = event.value
        if len(self._done) >= self._need:
            self.succeed(self._collect())
        elif len(self.events) - self._failed < self._need:
            if self._first_failure is None:
                raise ConsistencyError(
                    "condition failed without a recorded first failure"
                )
            self.fail(self._first_failure)


class AllOf(_ConditionBase):
    """Fires when every event has succeeded; value is the list of values."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        events = list(events)
        super().__init__(env, events, need=len(events))


class AnyOf(_ConditionBase):
    """Fires when at least one event has succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need=1)


class CountOf(_ConditionBase):
    """Fires when ``need`` of the events have succeeded.

    This is the primitive behind the Bullet server's P-FACTOR: issue
    writes to all replicas and reply to the client once ``need`` of them
    have completed.
    """


class Environment:
    """The simulation scheduler and clock."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list = []
        self._eid = 0
        self._active: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active

    # -- event construction helpers -------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def count_of(self, events: Iterable[Event], need: int) -> CountOf:
        return CountOf(self, events, need)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._eid += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise RuntimeError("no scheduled events")
        when, _priority, _eid, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody consumed: surface it rather than letting
            # errors pass silently.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        * ``until`` is ``None``: run until no events remain.
        * ``until`` is a number: run until the clock reaches it.
        * ``until`` is an :class:`Event`: run until it fires, then return
          its value (re-raising its exception on failure).
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            while not until.processed:
                if not self._heap:
                    raise RuntimeError(
                        "deadlock: event will never fire (no scheduled events)"
                    )
                self.step()
            if until.ok:
                return until.value
            until._defused = True
            raise until.value
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None


def run_process(env: Environment, generator: Generator) -> Any:
    """Convenience for tests: run ``generator`` to completion, return value."""
    return env.run(until=env.process(generator))
