"""The original fault-injection API, now event-driven.

:class:`FaultInjector` predates :class:`~repro.faults.FaultPlan`; it is
kept as the convenient imperative spelling for one-off disk faults in
tests and examples (and re-exported from its historic home,
``repro.disk.faults``). ``fail_after_writes`` no longer polls the
simulation clock at ``seek_settle / 2`` granularity: it registers a
completion hook on the disk and fires synchronously when the Nth write
completes — exact by construction, and free when no fault is armed.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Environment

__all__ = ["FaultInjector", "arm_fail_after_writes"]


def arm_fail_after_writes(disk, writes: int, reason: str,
                          on_fire: Optional[Callable[[], None]] = None) -> None:
    """Kill ``disk`` the instant its ``writes``-th subsequent write
    completes, via the disk's op-completion hook (no polling).

    The hook deregisters itself when it fires (or when the disk dies of
    some other cause first). ``on_fire`` lets callers (the
    :class:`~repro.faults.FaultController`) record the firing.
    """
    if writes < 1:
        raise ValueError(f"writes must be >= 1, got {writes}")
    remaining = writes

    def hook(kind: str) -> None:
        nonlocal remaining
        if disk.failed:
            disk.remove_op_hook(hook)
            return
        if kind != "write":
            return
        remaining -= 1
        if remaining == 0:
            disk.remove_op_hook(hook)
            disk.fail(reason)
            if on_fire is not None:
                on_fire()

    disk.add_op_hook(hook)


class FaultInjector:
    """Schedules disk failures (compatibility shim over the fault plane)."""

    def __init__(self, env: Environment):
        self.env = env

    def fail_at(self, disk, when: float, reason: str = "timed fault"):
        """Kill ``disk`` at absolute simulated time ``when``."""
        if when < self.env.now:
            raise ValueError(f"fault time {when} is in the past")

        def killer():
            yield self.env.timeout(when - self.env.now)
            disk.fail(reason)

        return self.env.process(killer())

    def fail_after_writes(self, disk, writes: int,
                          reason: str = "write-count fault") -> None:
        """Kill ``disk`` once it has completed ``writes`` more writes.

        Event-driven: fires exactly when the Nth write completes, with
        no intervening simulated time (the next submitted request
        already sees a dead disk).
        """
        arm_fail_after_writes(disk, writes, reason)
