"""Declarative fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultEvent` records, each
naming a *kind* (what goes wrong), a *target* (which attached component
it happens to), an absolute simulated *time*, and kind-specific
parameters. Plans are pure data: they carry no environment or component
references, so the same plan can be executed against two independently
seeded worlds to check determinism, or stored alongside an experiment's
results as its failure script.

Windowed kinds (``net.loss``, ``net.latency``, ``net.partition``,
``disk.degrade`` / ``disk.flaky`` with a ``duration``) revert
automatically when their window closes; the rest are one-shot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import BadRequestError

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS"]


#: kind -> (target role, required params). The controller refuses a plan
#: whose events name unknown kinds, miss required params, or target a
#: component attached under a different role.
FAULT_KINDS: dict[str, tuple[str, tuple[str, ...]]] = {
    "disk.fail": ("disk", ()),
    "disk.fail_after_writes": ("disk", ("writes",)),
    "disk.degrade": ("disk", ("factor",)),
    "disk.flaky": ("disk", ("start_block", "nblocks")),
    "disk.repair": ("disk", ()),
    "net.partition": ("net", ("duration",)),
    "net.loss": ("net", ("duration", "probability")),
    "net.latency": ("net", ("duration", "extra")),
    "server.crash": ("server", ()),
    "server.restart": ("server", ()),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` happens to ``target`` at time ``at``."""

    at: float
    kind: str
    target: str
    params: tuple = ()  # sorted (name, value) pairs; see FaultPlan.add

    def param(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        extra = " ".join(f"{k}={v!r}" for k, v in self.params)
        return f"t={self.at!r} {self.kind} -> {self.target} {extra}".rstrip()


class FaultPlan:
    """An ordered, validated schedule of fault events.

    Builder methods return ``self`` so plans read as one chained
    declaration::

        plan = (FaultPlan()
                .disk_fail("d0", at=0.5)
                .net_loss(at=1.0, duration=2.0, probability=0.3)
                .server_crash("bullet", at=4.0)
                .server_restart("bullet", at=5.0))
    """

    def __init__(self):
        self.events: list[FaultEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------ builder

    def add(self, kind: str, target: str, at: float, **params) -> "FaultPlan":
        """Append one event (generic entry point; the named builders
        below are thin wrappers over this)."""
        event = FaultEvent(at=float(at), kind=kind, target=target,
                           params=tuple(sorted(params.items())))
        self._check_event(event)
        self.events.append(event)
        return self

    def disk_fail(self, target: str, at: float,
                  reason: str = "planned fault") -> "FaultPlan":
        """Kill a disk outright at ``at``."""
        return self.add("disk.fail", target, at, reason=reason)

    def disk_fail_after_writes(self, target: str, writes: int, at: float = 0.0,
                               reason: str = "write-count fault") -> "FaultPlan":
        """Arm at ``at``: kill the disk the moment its ``writes``-th
        subsequent write completes (event-driven, exact)."""
        return self.add("disk.fail_after_writes", target, at,
                        writes=writes, reason=reason)

    def disk_degrade(self, target: str, at: float, factor: float,
                     duration: Optional[float] = None) -> "FaultPlan":
        """Multiply the disk's access times by ``factor`` (a dying drive
        retrying internally); reverts after ``duration`` if given."""
        return self.add("disk.degrade", target, at, factor=factor,
                        duration=duration)

    def disk_flaky(self, target: str, at: float, start_block: int,
                   nblocks: int, duration: Optional[float] = None) -> "FaultPlan":
        """Make a block extent return media errors; reverts after
        ``duration`` if given."""
        return self.add("disk.flaky", target, at, start_block=start_block,
                        nblocks=nblocks, duration=duration)

    def disk_repair(self, target: str, at: float) -> "FaultPlan":
        """Bring a failed disk back (blank-state repair; a recovery copy
        is the caller's business, as with :meth:`VirtualDisk.repair`)."""
        return self.add("disk.repair", target, at)

    def net_partition(self, at: float, duration: float,
                      target: str = "net") -> "FaultPlan":
        """Drop every fragment on the segment for ``duration`` seconds."""
        return self.add("net.partition", target, at, duration=duration)

    def net_loss(self, at: float, duration: float, probability: float,
                 target: str = "net") -> "FaultPlan":
        """A window of seeded random fragment loss at ``probability``."""
        return self.add("net.loss", target, at, duration=duration,
                        probability=probability)

    def net_latency(self, at: float, duration: float, extra: float,
                    target: str = "net") -> "FaultPlan":
        """Charge every fragment ``extra`` seconds of added latency."""
        return self.add("net.latency", target, at, duration=duration,
                        extra=extra)

    def server_crash(self, target: str, at: float) -> "FaultPlan":
        """Crash a server mid-whatever: the service loop is interrupted,
        volatile state (RAM cache, verified-capability cache, reply
        cache) is lost; durable state stays on the disks."""
        return self.add("server.crash", target, at)

    def server_restart(self, target: str, at: float) -> "FaultPlan":
        """Re-boot a crashed server: re-read the inode table, re-run the
        startup consistency scan, start serving again."""
        return self.add("server.restart", target, at)

    # --------------------------------------------------------- validation

    def validate(self) -> None:
        """Re-check every event (events are also checked on add; this
        guards plans built by deserialization or direct list edits)."""
        for event in self.events:
            self._check_event(event)

    @staticmethod
    def _check_event(event: FaultEvent) -> None:
        spec = FAULT_KINDS.get(event.kind)
        if spec is None:
            known = ", ".join(sorted(FAULT_KINDS))
            raise BadRequestError(
                f"unknown fault kind {event.kind!r} (known: {known})"
            )
        _role, required = spec
        if event.at < 0:
            raise BadRequestError(f"fault time {event.at} is negative")
        if not event.target:
            raise BadRequestError(f"{event.kind} event has no target")
        given = {name for name, _value in event.params}
        missing = sorted(set(required) - given)
        if missing:
            raise BadRequestError(
                f"{event.kind} event is missing params: {', '.join(missing)}"
            )
        writes = event.param("writes")
        if writes is not None and writes < 1:
            raise BadRequestError(f"writes must be >= 1, got {writes}")
        factor = event.param("factor")
        if factor is not None and factor < 1.0:
            raise BadRequestError(
                f"degrade factor must be >= 1.0, got {factor}"
            )
        probability = event.param("probability")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise BadRequestError(
                f"loss probability must be in [0, 1], got {probability}"
            )
        duration = event.param("duration")
        if duration is not None and duration <= 0:
            raise BadRequestError(f"duration must be > 0, got {duration}")
        extra = event.param("extra")
        if extra is not None and extra < 0:
            raise BadRequestError(f"extra latency must be >= 0, got {extra}")
        nblocks = event.param("nblocks")
        if nblocks is not None and nblocks < 1:
            raise BadRequestError(f"nblocks must be >= 1, got {nblocks}")

    def describe(self) -> str:
        """Human-readable schedule, one event per line, in plan order."""
        return "\n".join(e.describe() for e in self.events)
