"""Executes a :class:`~repro.faults.plan.FaultPlan` against live components.

The controller is the single place where fault schedules meet the
running system. Components are *attached* under the role the plan's
events expect (disk / net / server); :meth:`FaultController.start`
forks one small runner process per event, each of which sleeps until
its planned time, flips the target's injection seam, and (for windowed
kinds) flips it back when the window closes.

Every firing is appended to :attr:`FaultController.firings` and emitted
on the ``fault`` trace category, so the full fault history of a run is
one deterministic artifact: :meth:`firings_text` of two runs with the
same seed and plan is byte-identical (the runtime half of the
analyzer's D001/D002 replay contract).
"""

from __future__ import annotations

from typing import Optional

from ..errors import BadRequestError, ConsistencyError
from ..obs import MetricsRegistry
from ..sim import Environment, SeededStream, Tracer
from .injector import arm_fail_after_writes
from .plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = ["FaultController"]


class FaultController:
    """Runs a fault plan against attached disks, networks, and servers."""

    def __init__(self, env: Environment, plan: FaultPlan,
                 master_seed: int = 0, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.env = env
        self.plan = plan
        self.master_seed = master_seed
        self._tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: (time, kind, target, detail) tuples, in firing order.
        self.firings: list[tuple[float, str, str, str]] = []
        self._targets: dict[str, object] = {}
        self._roles: dict[str, str] = {}
        self._processes: list = []
        self._started = False

    # ---------------------------------------------------------- attaching

    def attach_disk(self, name: str, disk) -> "FaultController":
        """Register a :class:`~repro.disk.VirtualDisk` under ``name``."""
        return self._attach(name, "disk", disk)

    def attach_ethernet(self, name: str, ethernet) -> "FaultController":
        """Register an :class:`~repro.net.Ethernet` segment under
        ``name`` (plans default to the target name ``"net"``)."""
        return self._attach(name, "net", ethernet)

    def attach_server(self, name: str, server) -> "FaultController":
        """Register a server exposing ``crash()`` and ``boot()`` (the
        Bullet and directory servers both do) under ``name``."""
        return self._attach(name, "server", server)

    def _attach(self, name: str, role: str, target) -> "FaultController":
        if self._started:
            raise BadRequestError("cannot attach targets after start()")
        if name in self._targets:
            raise BadRequestError(f"target {name!r} already attached")
        self._targets[name] = target
        self._roles[name] = role
        return self

    # ------------------------------------------------------------ running

    def start(self) -> "FaultController":
        """Validate the plan against the attached targets and fork the
        per-event runner daemons."""
        if self._started:
            raise BadRequestError("fault controller already started")
        self.plan.validate()
        for event in self.plan.events:
            role, _required = FAULT_KINDS[event.kind]
            attached_role = self._roles.get(event.target)
            if attached_role is None:
                raise BadRequestError(
                    f"{event.kind} targets {event.target!r}, which is not "
                    f"attached"
                )
            if attached_role != role:
                raise BadRequestError(
                    f"{event.kind} needs a {role} target but {event.target!r} "
                    f"is attached as a {attached_role}"
                )
            if event.at < self.env.now:
                raise BadRequestError(
                    f"fault time {event.at} is already in the past "
                    f"(now={self.env.now})"
                )
        self._started = True
        for seq, event in enumerate(self.plan.events):
            self._processes.append(self.env.process(self._runner(seq, event)))
        return self

    def firings_text(self) -> str:
        """Canonical one-line-per-firing rendering (the determinism
        artifact: byte-identical across same-seed replays)."""
        return "\n".join(
            f"{when!r} {kind} {target} {detail}".rstrip()
            for when, kind, target, detail in self.firings
        )

    # ----------------------------------------------------------- internals

    def _runner(self, seq: int, event: FaultEvent):
        if event.at > self.env.now:
            yield self.env.timeout(event.at - self.env.now)
        yield from self._fire(seq, event)

    def _fire(self, seq: int, event: FaultEvent):
        target = self._targets[event.target]
        kind = event.kind
        duration = event.param("duration")
        if kind == "disk.fail":
            target.fail(event.param("reason", "planned fault"))
            self._record(event)
        elif kind == "disk.fail_after_writes":
            writes = event.param("writes")
            arm_fail_after_writes(
                target, writes, event.param("reason", "write-count fault"),
                on_fire=lambda: self._record(event, f"after {writes} writes"),
            )
        elif kind == "disk.repair":
            target.repair()
            self._record(event)
        elif kind == "disk.degrade":
            factor = event.param("factor")
            target.set_slowdown(factor)
            self._record(event, f"factor={factor!r}")
            if duration is not None:
                yield self.env.timeout(duration)
                target.set_slowdown(1.0)
                self._record(event, "reverted")
        elif kind == "disk.flaky":
            start_block = event.param("start_block")
            nblocks = event.param("nblocks")
            target.mark_flaky(start_block, nblocks)
            self._record(event, f"blocks=[{start_block},{start_block + nblocks})")
            if duration is not None:
                yield self.env.timeout(duration)
                target.clear_flaky(start_block, nblocks)
                self._record(event, "reverted")
        elif kind == "net.partition":
            target.set_fault(partitioned=True)
            self._record(event)
            yield self.env.timeout(duration)
            target.set_fault(partitioned=False)
            self._record(event, "healed")
        elif kind == "net.loss":
            probability = event.param("probability")
            stream = SeededStream(self.master_seed, f"fault-loss[{seq}]")
            target.set_fault(loss=probability, loss_stream=stream)
            self._record(event, f"p={probability!r}")
            yield self.env.timeout(duration)
            target.set_fault(loss=0.0)
            self._record(event, "reverted")
        elif kind == "net.latency":
            extra = event.param("extra")
            target.set_fault(extra_latency=extra)
            self._record(event, f"extra={extra!r}")
            yield self.env.timeout(duration)
            target.set_fault(extra_latency=0.0)
            self._record(event, "reverted")
        elif kind == "server.crash":
            target.crash()
            self._record(event)
        elif kind == "server.restart":
            self._record(event, "boot begins")
            yield from target.boot()
            self._record(event, "serving")
        else:
            raise ConsistencyError(
                f"fault kind {kind!r} validated but has no executor"
            )

    def _record(self, event: FaultEvent, detail: str = "") -> None:
        self.firings.append((self.env.now, event.kind, event.target, detail))
        self.metrics.counter(
            "repro_fault_firings_total", kind=event.kind
        ).inc()
        if self._tracer is not None:
            self._tracer.emit("fault", f"{event.kind} {event.target}",
                              detail=detail)
