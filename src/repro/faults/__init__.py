"""Unified deterministic fault plane (subsumes the old ``disk/faults.py``).

A :class:`FaultPlan` is a declarative schedule of scoped fault events —
disk fail/degrade/flaky-extent, Ethernet partition/loss-window/
latency-spike, server crash/restart with cache loss — executed by a
:class:`FaultController` against the components it is attached to. Every
fault fires at a planned simulated time (or after a planned number of
disk writes), so availability experiments (A6) replay bit-identically:
same seed + same plan ⇒ the same trace of fault firings and client
retry attempts.

The old :class:`FaultInjector` survives as a compatibility shim (both
here and at its historic home ``repro.disk.faults``), now event-driven
rather than polling.
"""

from .controller import FaultController
from .injector import FaultInjector, arm_fail_after_writes
from .plan import FaultEvent, FaultPlan

__all__ = [
    "FaultController",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "arm_fail_after_writes",
]
