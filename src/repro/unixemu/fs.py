"""UNIX emulation on top of the Bullet + directory services (S11).

§5 of the paper: "Recently we have implemented a UNIX emulation on top
of the Bullet service supporting a wealth of existing software."

The emulation maps mutable POSIX-style files onto immutable whole
files:

* ``open`` resolves the path in the directory service; the first read
  fetches the **whole file** into the process (whole-file transfer).
* ``write``/``lseek`` edit the in-memory copy — no server traffic.
* ``close`` of a dirty file commits: BULLET.CREATE the new contents,
  atomically rebind the name in the directory (``replace``/``append``),
  and delete the superseded file (or keep it, when version retention is
  enabled — the Cedar-style behaviour).

So "update-in-place" becomes "new version per close", exactly the model
the paper prescribes, and concurrent readers of the old version are
never disturbed (their capability still names the old immutable file
until they reopen).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..capability import Capability
from ..errors import BadRequestError, ExistsError, NotFoundError
from ..sim import Environment

__all__ = ["UnixEmulation", "UnixFile"]


@dataclass
class UnixFile:
    """One open file description."""

    fd: int
    path: str
    dir_cap: Capability          # directory holding the entry
    name: str                    # entry name within that directory
    cap: Optional[Capability]    # None for a brand-new file
    buffer: bytearray = field(default_factory=bytearray)
    offset: int = 0
    loaded: bool = False
    dirty: bool = False
    writable: bool = False


class UnixEmulation:
    """POSIX-flavoured file API over immutable storage."""

    def __init__(self, env: Environment, bullet_stub, directory,
                 root_cap: Capability, keep_versions: bool = False,
                 p_factor: int = 1):
        self.env = env
        self.bullet = bullet_stub
        self.directory = directory
        self.root = root_cap
        self.keep_versions = keep_versions
        self.p_factor = p_factor
        self._fds: dict[int, UnixFile] = {}
        self._next_fd = 3

    # ------------------------------------------------------------- opening

    def open(self, path: str, mode: str = "r"):
        """Process: open a file. Modes: "r", "w" (truncate/create),
        "a" (append, create), "r+" (read/write existing)."""
        if mode not in ("r", "w", "a", "r+"):
            raise BadRequestError(f"unsupported mode {mode!r}")
        dir_cap, name = yield from self._resolve_parent(path)
        cap: Optional[Capability]
        try:
            cap = yield from self.directory.lookup(dir_cap, name)
            exists = True
        except NotFoundError:
            cap = None
            exists = False
        if mode in ("r", "r+") and not exists:
            raise NotFoundError(f"no such file: {path}")
        handle = UnixFile(
            fd=self._next_fd, path=path, dir_cap=dir_cap, name=name, cap=cap,
            writable=(mode != "r"),
        )
        self._next_fd += 1
        if mode == "w":
            # Truncate (or create): the close commits either way — a
            # fresh "w" open with no writes still creates an empty file,
            # like creat(2).
            handle.loaded = True
            handle.dirty = True
        elif mode == "a" and exists:
            yield from self._load(handle)
            handle.offset = len(handle.buffer)
        elif mode == "a":
            handle.loaded = True
            handle.dirty = True  # created by the open, like O_CREAT
        self._fds[handle.fd] = handle
        return handle.fd

    def _resolve_parent(self, path: str):
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise BadRequestError("path needs a file name")
        dir_cap = self.root
        for component in parts[:-1]:
            dir_cap = yield from self.directory.lookup(dir_cap, component)
        return dir_cap, parts[-1]

    def _load(self, handle: UnixFile):
        """Whole-file fetch on first access."""
        if handle.loaded:
            return
        if handle.cap is not None:
            data = yield from self.bullet.read(handle.cap)
            handle.buffer = bytearray(data)
        handle.loaded = True

    # ----------------------------------------------------------------- I/O

    def read(self, fd: int, count: int):
        """Process: read up to ``count`` bytes at the current offset."""
        handle = self._handle(fd)
        yield from self._load(handle)
        data = bytes(handle.buffer[handle.offset:handle.offset + count])
        handle.offset += len(data)
        return data

    def write(self, fd: int, data: bytes):
        """Process: write at the current offset (in-memory; commits on
        close)."""
        handle = self._handle(fd)
        if not handle.writable:
            raise BadRequestError(f"fd {fd} is read-only")
        yield from self._load(handle)
        end = handle.offset + len(data)
        if end > len(handle.buffer):
            handle.buffer.extend(bytes(end - len(handle.buffer)))
        handle.buffer[handle.offset:end] = data
        handle.offset = end
        handle.dirty = True
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int = 0):
        """Process: move the offset (0=SET, 1=CUR, 2=END). Purely local,
        but a process like every other call for a uniform API."""
        yield from ()
        handle = self._handle(fd)
        if whence == 0:
            new = offset
        elif whence == 1:
            new = handle.offset + offset
        elif whence == 2:
            new = len(handle.buffer) + offset
        else:
            raise BadRequestError(f"bad whence {whence}")
        if new < 0:
            raise BadRequestError("negative file offset")
        handle.offset = new
        return new

    def ftruncate(self, fd: int, length: int):
        """Process: truncate/extend the in-memory image."""
        handle = self._handle(fd)
        if not handle.writable:
            raise BadRequestError(f"fd {fd} is read-only")
        yield from self._load(handle)
        if length < len(handle.buffer):
            del handle.buffer[length:]
        else:
            handle.buffer.extend(bytes(length - len(handle.buffer)))
        handle.dirty = True

    def close(self, fd: int):
        """Process: commit a dirty file as a new immutable version and
        rebind its name. Returns the file's (possibly new) capability."""
        handle = self._fds.pop(fd, None)
        if handle is None:
            raise BadRequestError(f"bad file descriptor {fd}")
        if not handle.dirty:
            return handle.cap
        new_cap = yield from self.bullet.create(bytes(handle.buffer),
                                                self.p_factor)
        if handle.cap is None:
            try:
                yield from self.directory.append(handle.dir_cap, handle.name,
                                                 new_cap)
            except ExistsError:
                # Someone bound the name while we held it open: last
                # close wins, like UNIX.
                old = yield from self.directory.replace(
                    handle.dir_cap, handle.name, new_cap)
                yield from self._discard(old)
        else:
            old = yield from self.directory.replace(handle.dir_cap,
                                                    handle.name, new_cap)
            yield from self._discard(old)
        return new_cap

    def _discard(self, old_cap: Capability):
        if self.keep_versions:
            return
        try:
            yield from self.bullet.delete(old_cap)
        except NotFoundError:
            pass  # already gone

    # ------------------------------------------------------------ metadata

    def stat(self, path: str):
        """Process: {size, is_directory} for a path."""
        cap = yield from self._lookup_path(path)
        if cap.port == self.directory.port:
            return {"size": 0, "is_directory": True}
        size = yield from self.bullet.size(cap)
        return {"size": size, "is_directory": False}

    def fstat(self, fd: int):
        """Process: size of an open file's current image."""
        handle = self._handle(fd)
        yield from self._load(handle)
        return {"size": len(handle.buffer), "is_directory": False}

    def unlink(self, path: str):
        """Process: remove the name and delete the file."""
        dir_cap, name = yield from self._resolve_parent(path)
        cap = yield from self.directory.remove_entry(dir_cap, name)
        yield from self._discard(cap)

    def mkdir(self, path: str):
        """Process: create a directory and bind it."""
        dir_cap, name = yield from self._resolve_parent(path)
        new_dir = yield from self.directory.create_directory()
        yield from self.directory.append(dir_cap, name, new_dir)
        return new_dir

    def listdir(self, path: str):
        """Process: names in a directory ("/" lists the root)."""
        if path.strip("/"):
            cap = yield from self._lookup_path(path)
        else:
            cap = self.root
        return (yield from self.directory.list_names(cap))

    def rename(self, old_path: str, new_path: str):
        """Process: move a name (same-server directory shuffle)."""
        old_dir, old_name = yield from self._resolve_parent(old_path)
        new_dir, new_name = yield from self._resolve_parent(new_path)
        cap = yield from self.directory.remove_entry(old_dir, old_name)
        try:
            yield from self.directory.append(new_dir, new_name, cap)
        except ExistsError:
            displaced = yield from self.directory.replace(new_dir, new_name, cap)
            yield from self._discard(displaced)

    def _lookup_path(self, path: str):
        return (yield from self.directory.lookup_path(self.root, path))

    def _handle(self, fd: int) -> UnixFile:
        handle = self._fds.get(fd)
        if handle is None:
            raise BadRequestError(f"bad file descriptor {fd}")
        return handle
