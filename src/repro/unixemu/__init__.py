"""UNIX emulation (S11): POSIX-flavoured files over immutable storage."""

from .fs import UnixEmulation, UnixFile

__all__ = ["UnixEmulation", "UnixFile"]
