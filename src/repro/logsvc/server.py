"""The log server (S10).

§2 of the paper: "Each append to a log file, for example, would require
the whole file to be copied. ... For log files we have implemented a
separate server." This is that server: an append-optimized store where
adding a record costs O(record), not O(file) — the A7 benchmark
contrasts it with naively re-creating a Bullet file per append.

Storage: each log is a chain of disk blocks. A block holds a 12-byte
header (used bytes, flags, next-block pointer) and packed records
(2-byte length + payload). Appending writes only the tail block — plus
one extra write to link in a new block when the tail fills. Records
never span blocks, so a record is limited to one block's payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..capability import (
    Capability,
    RIGHT_CREATE,
    RIGHT_READ,
    mint_owner,
    port_for_name,
    require,
)
from ..disk import VirtualDisk
from ..errors import BadRequestError, NoSpaceError, NotFoundError, ReproError
from ..net import RpcReply, RpcRequest, RpcTransport
from ..profiles import Testbed
from ..sim import Environment, SeededStream, Tracer

__all__ = ["LogServer", "LOG_OPCODES"]

LOG_OPCODES = {
    "CREATE": 60,
    "APPEND": 61,
    "READ": 62,
    "LENGTH": 63,
}

_HEADER_MAGIC = 0x106507
_BLOCK_HEADER = 12  # used(2) flags(2) next(4) reserved(4)


@dataclass
class _LogState:
    secret: int
    first_block: int
    tail_block: int
    tail_used: int      # payload bytes used in the tail block
    record_count: int
    records: list = field(default_factory=list)  # RAM copy for fast reads


class LogServer:
    """An append-optimized log store on one private disk."""

    def __init__(self, env: Environment, disk: VirtualDisk, testbed: Testbed,
                 name: str = "logsvc", transport: Optional[RpcTransport] = None,
                 master_seed: int = 0, max_logs: int = 64,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.disk = disk
        self.testbed = testbed
        self.name = name
        self.port = port_for_name(name)
        self.transport = transport
        self.max_logs = max_logs
        self._secrets = SeededStream(master_seed, f"{name}:secrets")
        self._tracer = tracer
        self._logs: dict[int, _LogState] = {}
        self._free_blocks: list[int] = []
        self._booted = False
        self._endpoint = None

    @property
    def payload_per_block(self) -> int:
        return self.disk.block_size - _BLOCK_HEADER

    @property
    def max_record(self) -> int:
        return self.payload_per_block - 2

    # -------------------------------------------------------------- setup

    def format(self) -> None:
        """Header + zeroed slot blocks (untimed)."""
        header = _HEADER_MAGIC.to_bytes(4, "big") + self.max_logs.to_bytes(4, "big")
        self.disk.write_raw(0, header)
        for slot in range(self.max_logs):
            self.disk.write_raw(1 + slot, bytes(self.disk.block_size))

    def boot(self):
        """Process: load slots and walk every chain to find the tails.

        The slot count comes from the on-disk header, not the
        constructor, so a rebooted server honours the formatted layout.
        """
        header = yield self.disk.read(0, 1)
        if int.from_bytes(header[:4], "big") != _HEADER_MAGIC:
            raise BadRequestError(f"{self.name}: disk is not a log volume")
        self.max_logs = int.from_bytes(header[4:8], "big")
        raw = yield self.disk.read(0, 1 + self.max_logs)
        bs = self.disk.block_size
        used_blocks = set(range(0, 1 + self.max_logs))
        self._logs.clear()
        for slot in range(self.max_logs):
            record = raw[(1 + slot) * bs:(1 + slot) * bs + 12]
            secret = int.from_bytes(record[0:6], "big")
            first = int.from_bytes(record[6:10], "big")
            if secret == 0:
                continue
            state = yield from self._walk_chain(secret, first, used_blocks)
            self._logs[slot] = state
        area_start = 1 + self.max_logs
        self._free_blocks = [
            b for b in range(self.disk.total_blocks - 1, area_start - 1, -1)
            if b not in used_blocks
        ]
        self._booted = True
        if self.transport is not None:
            self._endpoint = self.transport.register(self.port)
            # Intentional daemon fork: the service loop runs for the
            # server's whole life; crash() ends it via _booted.
            self.env.process(self._serve())  # repro: allow(S001)
        return len(self._logs)

    def _walk_chain(self, secret: int, first: int, used_blocks: set):
        records = []
        block = first
        tail_block, tail_used = first, 0
        while block:
            used_blocks.add(block)
            raw = yield self.disk.read(block, 1)
            used = int.from_bytes(raw[0:2], "big")
            nxt = int.from_bytes(raw[4:8], "big")
            offset = _BLOCK_HEADER
            end = _BLOCK_HEADER + used
            while offset < end:
                rec_len = int.from_bytes(raw[offset:offset + 2], "big")
                offset += 2
                records.append(bytes(raw[offset:offset + rec_len]))
                offset += rec_len
            tail_block, tail_used = block, used
            block = nxt
        return _LogState(secret=secret, first_block=first,
                         tail_block=tail_block, tail_used=tail_used,
                         record_count=len(records), records=records)

    # ----------------------------------------------------------- local API

    def create_log(self):
        """Process: a fresh empty log; returns its owner capability."""
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.request_dispatch)
        slot = next((s for s in range(self.max_logs) if s not in self._logs), None)
        if slot is None:
            raise BadRequestError("log table full")
        first = self._alloc_block()
        secret = self._secrets.randint(1, (1 << 48) - 1)
        yield self.disk.write(first, self._encode_block(b"", 0))
        yield self.disk.write(1 + slot, secret.to_bytes(6, "big") + first.to_bytes(4, "big"))
        self._logs[slot] = _LogState(secret=secret, first_block=first,
                                     tail_block=first, tail_used=0,
                                     record_count=0)
        return mint_owner(self.port, slot + 1, secret)

    def append(self, cap: Capability, record: bytes):
        """Process: append one record; returns its sequence number.

        Cost is one tail-block write (two when a new block is linked) —
        independent of the log's length.
        """
        state = yield from self._open(cap, RIGHT_CREATE)
        if len(record) > self.max_record:
            raise BadRequestError(
                f"record of {len(record)} bytes exceeds the "
                f"{self.max_record}-byte limit"
            )
        needed = 2 + len(record)
        if state.tail_used + needed > self.payload_per_block:
            new_block = self._alloc_block()
            yield self.disk.write(new_block, self._encode_block(b"", 0))
            # Re-point the old tail's next pointer.
            tail_records = self._tail_payload(state)
            yield self.disk.write(
                state.tail_block,
                self._encode_block(tail_records, state.tail_used, nxt=new_block),
            )
            state.tail_block = new_block
            state.tail_used = 0
        start = state.record_count
        state.records.append(bytes(record))
        state.record_count += 1
        state.tail_used += needed
        yield self.disk.write(
            state.tail_block,
            self._encode_block(self._tail_payload(state), state.tail_used),
        )
        return start

    def read(self, cap: Capability, from_seq: int = 0, limit: int = 1 << 30):
        """Process: records from ``from_seq`` (served from the RAM copy;
        the disk chain is the durable form)."""
        state = yield from self._open(cap, RIGHT_READ)
        if from_seq < 0:
            raise BadRequestError("negative sequence number")
        return list(state.records[from_seq:from_seq + limit])

    def length(self, cap: Capability):
        """Process: number of records in the log."""
        state = yield from self._open(cap, RIGHT_READ)
        return state.record_count

    def status(self) -> dict:
        """std_status: live counters (synchronous)."""
        self._require_booted()
        return {
            "name": self.name,
            "logs": len(self._logs),
            "records": sum(s.record_count for s in self._logs.values()),
            "free_blocks": len(self._free_blocks),
        }

    # ----------------------------------------------------------- internals

    def _open(self, cap: Capability, needed_rights: int):
        self._require_booted()
        yield self.env.timeout(self.testbed.cpu.capability_check)
        slot = cap.object - 1
        state = self._logs.get(slot)
        if state is None:
            raise NotFoundError(f"log object {cap.object} does not exist")
        require(cap, state.secret, needed_rights)
        return state

    def _tail_payload(self, state: _LogState) -> bytes:
        """Re-encode the records living in the tail block."""
        parts = []
        used = 0
        for record in reversed(state.records):
            needed = 2 + len(record)
            if used + needed > state.tail_used:
                break
            parts.append(len(record).to_bytes(2, "big") + record)
            used += needed
        parts.reverse()
        return b"".join(parts)

    def _encode_block(self, payload: bytes, used: int, nxt: int = 0) -> bytes:
        header = (
            used.to_bytes(2, "big")
            + (0).to_bytes(2, "big")
            + nxt.to_bytes(4, "big")
            + bytes(4)
        )
        return header + payload + bytes(self.payload_per_block - len(payload))

    def _alloc_block(self) -> int:
        if not self._free_blocks:
            raise NoSpaceError("log disk full")
        return self._free_blocks.pop()

    def _require_booted(self) -> None:
        if not self._booted:
            raise BadRequestError(f"server {self.name} is not booted")

    # ------------------------------------------------------------ RPC plane

    def _serve(self):
        endpoint = self._endpoint
        while self._booted and endpoint is self._endpoint:
            req = yield endpoint.getreq()
            try:
                reply = yield from self._dispatch(req)
            except ReproError as exc:
                reply = RpcTransport.reply_for_error(exc)
            yield self.env.process(endpoint.putrep(req, reply))

    def _dispatch(self, req: RpcRequest):
        op = req.opcode
        if op == LOG_OPCODES["CREATE"]:
            cap = yield from self.create_log()
            return RpcReply(caps=(cap,))
        if req.cap is None:
            raise BadRequestError("request carries no capability")
        if op == LOG_OPCODES["APPEND"]:
            seq = yield from self.append(req.cap, req.body)
            return RpcReply(args=(seq,))
        if op == LOG_OPCODES["READ"]:
            from_seq, limit = req.args
            records = yield from self.read(req.cap, from_seq, limit)
            return RpcReply(args=(len(records),),
                            body=b"".join(
                                len(r).to_bytes(2, "big") + r for r in records
                            ))
        if op == LOG_OPCODES["LENGTH"]:
            n = yield from self.length(req.cap)
            return RpcReply(args=(n,))
        raise BadRequestError(f"unknown log opcode {op}")

    def _trace(self, category: str, message: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(category, message, **fields)
