"""Log server (S10): append-optimized storage for the workload the
immutable whole-file model handles badly."""

from .server import LOG_OPCODES, LogServer

__all__ = ["LOG_OPCODES", "LogServer"]
