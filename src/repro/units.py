"""Unit helpers.

All simulated time in this library is kept in **seconds** (floats); all
sizes in **bytes** (ints). These helpers exist so that calibration
constants and benchmark tables read like the paper (msec, Kbytes/sec).
"""

from __future__ import annotations

KB = 1024
MB = 1024 * 1024

USEC = 1e-6
MSEC = 1e-3


def kbytes(n: float) -> int:
    """``n`` kilobytes as bytes."""
    return int(n * KB)


def mbytes(n: float) -> int:
    """``n`` megabytes as bytes."""
    return int(n * MB)


def msec(t: float) -> float:
    """``t`` milliseconds as seconds."""
    return t * MSEC


def usec(t: float) -> float:
    """``t`` microseconds as seconds."""
    return t * USEC


def to_msec(seconds: float) -> float:
    """Seconds -> milliseconds (for reporting)."""
    return seconds / MSEC


def bandwidth_kb_per_sec(nbytes: int, seconds: float) -> float:
    """Throughput in Kbytes/sec, the unit of the paper's figures 2b/3b."""
    if seconds <= 0:
        return float("inf")
    return (nbytes / KB) / seconds


def fmt_size(nbytes: int) -> str:
    """Format a size the way the paper labels its table rows."""
    if nbytes == 1:
        return "1 byte"
    if nbytes < KB:
        return f"{nbytes} bytes"
    if nbytes < MB:
        kb = nbytes / KB
        return f"{int(kb)} Kbytes" if kb == int(kb) else f"{kb:.1f} Kbytes"
    mb = nbytes / MB
    return f"{int(mb)} Mbyte" if mb == int(mb) else f"{mb:.2f} Mbyte"
