"""Span reconstruction over trace records.

Components emit span begin/end markers through
:meth:`repro.sim.trace.Tracer.begin_span` / ``end_span`` (category
``"span"`` by convention); this module pairs them back into
:class:`Span` objects so a request can be decomposed into its
queue / op / cache / disk / net components — the measurement the
paper's §4 delay tables are made of.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConsistencyError

__all__ = ["Span", "pair_spans", "durations_by_name"]


@dataclass(frozen=True)
class Span:
    """One completed span, reconstructed from its B/E trace records."""

    span_id: int
    category: str
    name: str
    begin: float
    end: float
    parent: int = 0
    begin_fields: tuple = ()
    end_fields: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.begin


def pair_spans(records, allow_open: bool = False) -> list:
    """Pair span begin/end trace records into :class:`Span` objects.

    ``records`` is an iterable of :class:`~repro.sim.trace.TraceRecord`;
    records without ``span``/``phase`` fields are ignored. Raises
    :class:`~repro.errors.ConsistencyError` on a duplicate begin, an end
    without a begin, or (unless ``allow_open``) a begin without an end —
    the span-pairing invariant the metrics test suite enforces.
    """
    open_spans: dict = {}
    spans = []
    for record in records:
        fields = dict(record.fields)
        span_id = fields.get("span")
        phase = fields.get("phase")
        if span_id is None or phase is None:
            continue
        if phase == "B":
            if span_id in open_spans:
                raise ConsistencyError(f"span {span_id} began twice")
            open_spans[span_id] = record
        elif phase == "E":
            begin = open_spans.pop(span_id, None)
            if begin is None:
                raise ConsistencyError(
                    f"span {span_id} ended without a begin"
                )
            begin_fields = dict(begin.fields)
            spans.append(Span(
                span_id=span_id,
                category=begin.category,
                name=begin.message,
                begin=begin.time,
                end=record.time,
                parent=begin_fields.get("parent", 0),
                begin_fields=begin.fields,
                end_fields=record.fields,
            ))
        else:
            raise ConsistencyError(
                f"span {span_id} carries unknown phase {phase!r}"
            )
    if open_spans and not allow_open:
        raise ConsistencyError(
            f"unclosed spans: {sorted(open_spans)}"
        )
    return sorted(spans, key=lambda s: (s.begin, s.span_id))


def durations_by_name(spans) -> dict:
    """Total duration per span name (the delay-decomposition view)."""
    totals: dict = {}
    for span in spans:
        totals[span.name] = totals.get(span.name, 0.0) + span.duration
    return dict(sorted(totals.items()))
