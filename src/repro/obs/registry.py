"""The metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is the accounting authority for a whole
testbed: every component (server, cache, disks, Ethernet, RPC, retry
layer, fault controller) registers its instruments here, keyed by
metric name plus a sorted label set, so ``std_status`` snapshots, the
Prometheus/JSON exporters, and the bench emitter all read the *same*
numbers — no scattered dataclass pokes that can drift apart.

Determinism rules:

* **Sim-time only.** The registry never reads a clock. Durations fed to
  :meth:`Histogram.observe` are simulated seconds supplied by callers.
* **Deterministic export.** Collection order is sorted by
  ``(name, labels)``; two same-seed runs render byte-identical text and
  JSON (the runtime half of the analyzer's D001/D002 contract).
* **Monotonic counters.** :meth:`Counter.inc` rejects negative deltas,
  so conservation invariants (``hits + misses == lookups``) are checked
  against values that can only have been accumulated, never rewound.
"""

from __future__ import annotations

import bisect
import re
from typing import Optional

from ..errors import BadRequestError, ConsistencyError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "RegistryStats",
    "DEFAULT_BUCKETS",
]

_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default latency buckets (simulated seconds): spans the null-RPC
#: regime (~1.4 ms) up to the 1 MB whole-file transfers (~2 s).
DEFAULT_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)


class Metric:
    """Base: a named instrument with a canonical (sorted) label set.

    ``name``/``labels`` never change after construction, so the
    canonical sample key is rendered exactly once here — hot paths and
    exporters read a plain attribute instead of re-joining label tuples
    per call.
    """

    kind = "untyped"

    __slots__ = ("name", "labels", "key")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels  # tuple of (key, value) pairs, sorted by key
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in labels)
            self.key = f"{name}{{{inner}}}"  # Prometheus sample shape
        else:
            self.key = name


class Counter(Metric):
    """A monotonically increasing count (int or float)."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: tuple):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount=1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise BadRequestError(
                f"counter {self.key} can only go up (inc by {amount})"
            )
        self.value += amount


class Gauge(Metric):
    """A value that can go up and down (fragmentation, free bytes...)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: tuple):
        super().__init__(name, labels)
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class Histogram(Metric):
    """Fixed-bucket histogram of observations (simulated seconds).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    rest. Per-bin counts are stored; exporters render the cumulative
    ``le`` form Prometheus expects.
    """

    kind = "histogram"

    __slots__ = ("buckets", "bin_counts", "total", "count")

    def __init__(self, name: str, labels: tuple, buckets: tuple):
        super().__init__(name, labels)
        if not buckets:
            raise BadRequestError("histogram needs at least one bucket")
        ordered = tuple(buckets)
        if list(ordered) != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise BadRequestError(
                f"histogram buckets must be strictly ascending: {buckets}"
            )
        self.buckets = ordered
        self.bin_counts = [0] * (len(ordered) + 1)  # last bin is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value) -> None:
        """Record one observation."""
        self.bin_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list:
        """(upper_bound_label, cumulative_count) pairs, ending at +Inf."""
        out = []
        running = 0
        for bound, count in zip(self.buckets, self.bin_counts):
            running += count
            out.append((repr(float(bound)), running))
        out.append(("+Inf", running + self.bin_counts[-1]))
        return out


class MetricsRegistry:
    """Get-or-create registry of metrics, keyed by (name, labels)."""

    def __init__(self):
        self._metrics: dict = {}

    # ----------------------------------------------------------- factories

    def counter(self, name: str, **labels) -> Counter:
        """The counter named ``name`` with exactly ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge named ``name`` with exactly ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[tuple] = None,
                  **labels) -> Histogram:
        """The histogram named ``name``; ``buckets`` must agree with any
        earlier registration of the same instrument."""
        wanted = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        metric = self._get(Histogram, name, labels, buckets=wanted)
        if metric.buckets != wanted:
            raise ConsistencyError(
                f"histogram {metric.key} re-registered with different "
                f"buckets: {metric.buckets} vs {wanted}"
            )
        return metric

    def _get(self, cls, name: str, labels: dict, **extra):
        if not _NAME.match(name):
            raise BadRequestError(f"invalid metric name {name!r}")
        canonical = []
        for key in sorted(labels):
            if not _LABEL_NAME.match(key):
                raise BadRequestError(f"invalid label name {key!r}")
            canonical.append((key, str(labels[key])))
        label_tuple = tuple(canonical)
        slot = (name, label_tuple)
        metric = self._metrics.get(slot)
        if metric is None:
            metric = cls(name, label_tuple, **extra)
            self._metrics[slot] = metric
            return metric
        if not isinstance(metric, cls):
            raise ConsistencyError(
                f"metric {metric.key} already registered as a "
                f"{metric.kind}, requested as a {cls.kind}"
            )
        return metric

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> list:
        """Every metric, sorted by (name, labels) — the export order."""
        return sorted(self._metrics.values(), key=lambda m: (m.name, m.labels))

    def find(self, name: str, **labels) -> Optional[Metric]:
        """The metric with exactly these labels, or None (no creation)."""
        label_tuple = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self._metrics.get((name, label_tuple))

    def value(self, name: str, **labels):
        """Shortcut: the current value of a counter/gauge (0 if absent)."""
        metric = self.find(name, **labels)
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise BadRequestError(
                f"{metric.key} is a histogram; read .count/.total instead"
            )
        return metric.value

    def total(self, name: str):
        """Sum of a counter family's values across all label sets."""
        return sum(
            m.value
            for (metric_name, _labels), m in sorted(self._metrics.items())
            if metric_name == name and isinstance(m, Counter)
        )

    def snapshot(self) -> dict:
        """A plain-data, JSON-able view: stable keys, sorted order."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for metric in self.collect():
            if isinstance(metric, Counter):
                counters[metric.key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.key] = metric.value
            else:
                histograms[metric.key] = {
                    "buckets": {le: n for le, n in metric.cumulative()},
                    "sum": metric.total,
                    "count": metric.count,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class RegistryStats:
    """Base for component stat facades backed by a registry.

    Subclasses declare ``_PREFIX`` and ``_COUNTER_FIELDS``; each field
    becomes a registry counter named ``{_PREFIX}_{field}_total`` carrying
    the labels given at construction. Attribute reads return the counter
    value and ``stats.field += n`` increments it, so existing call sites
    (and tests) keep working while the registry is the single authority.
    """

    _PREFIX = "repro"
    _COUNTER_FIELDS: tuple = ()

    def __init__(self, registry: Optional[MetricsRegistry] = None, **labels):
        reg = registry if registry is not None else MetricsRegistry()
        counters = {
            field: reg.counter(f"{self._PREFIX}_{field}_total", **labels)
            for field in self._COUNTER_FIELDS
        }
        # object.__setattr__ sidesteps the counter-routing __setattr__.
        object.__setattr__(self, "registry", reg)
        object.__setattr__(self, "labels", dict(labels))
        object.__setattr__(self, "_counters", counters)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__} has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counter = counters[name]
            counter.inc(value - counter.value)
        else:
            object.__setattr__(self, name, value)

    def handle(self, field: str) -> Counter:
        """The backing :class:`Counter` for ``field``.

        Hot paths cache this once and call ``inc`` directly, skipping
        the facade's ``__getattr__``/``__setattr__`` round trip (and the
        registry's label canonicalization) on every increment. The
        facade and the handle mutate the same counter, so the two styles
        agree by construction (tests/test_obs_registry.py pins this).
        """
        return self.__dict__["_counters"][field]

    def snapshot(self) -> dict:
        """Field -> current value, in declaration order."""
        counters = self.__dict__["_counters"]
        return {field: counters[field].value for field in self._COUNTER_FIELDS}
