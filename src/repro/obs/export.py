"""Exporters: Prometheus exposition text and canonical JSON.

Both renderings are pure functions of a registry's state and are
byte-identical across same-seed runs: metrics are emitted in sorted
``(name, labels)`` order, integers render without a decimal point, and
floats render via :func:`repr` (shortest round-trip form, stable for a
given value).
"""

from __future__ import annotations

import json

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_text", "render_json"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(value)


def _sample(name: str, labels: tuple, value, extra_label=None) -> str:
    pairs = list(labels)
    if extra_label is not None:
        pairs.append(extra_label)
    if pairs:
        inner = ",".join(f'{k}="{v}"' for k, v in pairs)
        return f"{name}{{{inner}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def render_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition format (one ``# TYPE`` line per family)."""
    lines = []
    last_family = None
    for metric in registry.collect():
        if metric.name != last_family:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            last_family = metric.name
        if isinstance(metric, (Counter, Gauge)):
            lines.append(_sample(metric.name, metric.labels, metric.value))
        elif isinstance(metric, Histogram):
            for le, cumulative in metric.cumulative():
                lines.append(_sample(f"{metric.name}_bucket", metric.labels,
                                     cumulative, extra_label=("le", le)))
            lines.append(_sample(f"{metric.name}_sum", metric.labels,
                                 metric.total))
            lines.append(_sample(f"{metric.name}_count", metric.labels,
                                 metric.count))
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Canonical JSON: sorted keys, fixed indent, trailing newline."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=indent) + "\n"
