"""The kernel fast-path speedup harness (``BENCH_PR6.json``).

Measures the wall-clock effect of the fast paths by running the *same*
bench suites (Figure 2/3 and the PR5 worker-scaling/disk-discipline
experiments, seed 1989) against two source trees:

* ``baseline`` — a pristine checkout of the pre-fast-path tree
  (``--baseline-src``, e.g. a ``git worktree`` of the seed commit);
* ``current`` — the tree this module was imported from.

Methodology — the numbers are only honest if measured like this:

* **Subprocess per measurement.** Each tree runs in its own
  interpreter with only ``PYTHONPATH`` switched, so neither tree's
  imports, code objects, or caches can leak into the other's timing.
* **Interleaved rounds.** Machine speed drifts (thermal state, noisy
  neighbours); alternating baseline/current rounds and taking the
  per-suite **minimum** makes the ratio robust to drift that would
  silently flatter whichever tree ran on the faster half of the wall
  clock. A warm-up pass inside each child absorbs import cost.
* **Events as the invariant.** Both trees simulate the identical
  workload (the simulated-time artifacts are byte-identical), so the
  scheduled-event counts are exact, machine-independent measures of
  kernel work; they are asserted stable across rounds. Wall-clock
  seconds are the machine-dependent part and are reported as such.

The child timer uses the host clock by necessity — that is the quantity
being measured. It lives in a source string (executed via ``python
-c``) that also runs unchanged against the baseline tree, which
predates this module.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Optional

__all__ = ["run_speedup", "write_speedup", "summarize", "SUITES"]

SUITES = ("fig2_fig3", "worker_scaling")

#: Self-contained child: times both suites (min over inner repeats,
#: after one warm-up pass), then counts scheduled events per suite by
#: wrapping ``Environment._schedule`` — the one seam both trees share.
_CHILD_SOURCE = """\
import json, sys, time
import repro.sim.core as core
from repro.obs.bench import run_bench, run_bench_pr5

seed = int(sys.argv[1])
inner = int(sys.argv[2])
run_bench(seed=seed)
run_bench_pr5(seed=seed)
best = [float("inf"), float("inf")]
for _ in range(inner):
    t0 = time.perf_counter()
    run_bench(seed=seed)
    t1 = time.perf_counter()
    run_bench_pr5(seed=seed)
    t2 = time.perf_counter()
    best[0] = min(best[0], t1 - t0)
    best[1] = min(best[1], t2 - t1)
counts = [0]
orig = core.Environment._schedule
def counting(self, event, delay=0.0, priority=1):
    counts[0] += 1
    orig(self, event, delay, priority)
core.Environment._schedule = counting
events = []
run_bench(seed=seed)
events.append(counts[0])
run_bench_pr5(seed=seed)
events.append(counts[0] - events[0])
core.Environment._schedule = orig
print(json.dumps({
    "wall": {"fig2_fig3": best[0], "worker_scaling": best[1]},
    "events_scheduled": {"fig2_fig3": events[0],
                         "worker_scaling": events[1]},
}))
"""


def _current_src_dir() -> Path:
    # .../src/repro/obs/speedup.py -> .../src
    return Path(__file__).resolve().parents[2]


def _measure_tree(src_dir: Path, seed: int, inner: int) -> dict:
    """One child run against ``src_dir``; returns the child's JSON."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SOURCE, str(seed), str(inner)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def summarize(baseline: dict, current: dict, target: float = 5.0) -> dict:
    """Derived figures from two tree measurements (pure; unit-tested)."""
    speedup = {
        suite: baseline["wall"][suite] / current["wall"][suite]
        for suite in SUITES
    }
    base_total = sum(baseline["wall"].values())
    curr_total = sum(current["wall"].values())
    speedup["combined"] = base_total / curr_total
    for tree in (baseline, current):
        tree["events_per_second"] = {
            suite: tree["events_scheduled"][suite] / tree["wall"][suite]
            for suite in SUITES
        }
    events_ratio = (sum(baseline["events_scheduled"].values())
                    / sum(current["events_scheduled"].values()))
    return {
        "speedup": speedup,
        "events_ratio": events_ratio,
        "target": target,
        "target_met": speedup["combined"] >= target,
    }


def run_speedup(baseline_src: str, seed: int = 1989, rounds: int = 3,
                inner: int = 2) -> dict:
    """Interleaved baseline/current measurement; returns the artifact."""
    baseline_dir = Path(baseline_src).resolve()
    current_dir = _current_src_dir()
    if not (baseline_dir / "repro" / "obs" / "bench.py").is_file():
        raise FileNotFoundError(
            f"{baseline_dir} does not look like a repro src tree "
            f"(expected repro/obs/bench.py under it)"
        )
    mins: dict = {}
    for _ in range(rounds):
        for label, src in (("baseline", baseline_dir),
                           ("current", current_dir)):
            sample = _measure_tree(src, seed, inner)
            tree = mins.setdefault(label, sample)
            if tree is not sample:
                for suite in SUITES:
                    tree["wall"][suite] = min(tree["wall"][suite],
                                              sample["wall"][suite])
                    if (tree["events_scheduled"][suite]
                            != sample["events_scheduled"][suite]):
                        raise RuntimeError(
                            f"{label}/{suite}: scheduled-event count "
                            f"varies across rounds — the workload is "
                            f"not deterministic"
                        )
    baseline, current = mins["baseline"], mins["current"]
    derived = summarize(baseline, current)
    return {
        "suite": "kernel-fast-paths-speedup",
        "seed": seed,
        "rounds": rounds,
        "inner_repeats": inner,
        "python": platform.python_version(),
        "methodology": (
            "Interleaved rounds of baseline (pristine pre-fast-path "
            "checkout) and current trees, one subprocess per "
            "measurement with only PYTHONPATH switched; each child "
            "warms once then reports the per-suite minimum over "
            "inner repeats; per-suite minima taken across rounds. "
            "Wall seconds are machine-dependent; scheduled-event "
            "counts are exact and asserted stable across rounds. "
            "Simulated-time artifacts (BENCH_PR4/PR5) are "
            "byte-identical between the two trees."
        ),
        "baseline": {"src": str(baseline_dir), **baseline},
        "current": {"src": str(current_dir), **current},
        **derived,
    }


def write_speedup(results_path: str, baseline_src: str, seed: int = 1989,
                  rounds: int = 3, inner: int = 2,
                  top_path: Optional[str] = None) -> dict:
    payload = run_speedup(baseline_src, seed=seed, rounds=rounds,
                          inner=inner)
    text = json.dumps(payload, indent=2) + "\n"
    Path(results_path).parent.mkdir(parents=True, exist_ok=True)
    Path(results_path).write_text(text)
    if top_path:
        Path(top_path).write_text(text)
    return payload
