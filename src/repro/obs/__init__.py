"""repro.obs — the deterministic observability plane (PR 4 tentpole).

The paper's evaluation (§4) is entirely measured delays and bandwidths;
this package is the measurement substrate the reproduction uses to
observe itself:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  all sim-time based (no wall clock, analyzer-clean). One registry per
  testbed is the single accounting authority; the per-component stats
  objects (``ServerStats``, ``CacheStats``, ``DiskStats``...) are thin
  facades over its counters via :class:`RegistryStats`.
* :func:`render_text` / :func:`render_json` — Prometheus-style and
  canonical-JSON exporters, byte-identical across same-seed runs.
* :func:`pair_spans` — request-scoped span reconstruction; spans flow
  RPC → server → cache → disk so a READ decomposes into its
  queue/cache/disk/net components.
* ``repro.obs.bench`` — the bench emitter hooking
  :mod:`repro.bench.harness` (imported lazily; it pulls in the whole
  testbed). ``python -m repro.obs`` dumps a registry snapshot from an
  example run, ``python -m repro.obs bench`` writes the trajectory
  artifacts (``benchmarks/results/bench.json``, ``BENCH_PR4.json``).
"""

from .export import render_json, render_text
from .registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    RegistryStats,
)
from .spans import Span, durations_by_name, pair_spans

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "RegistryStats",
    "Span",
    "durations_by_name",
    "pair_spans",
    "render_json",
    "render_text",
]
