"""``python -m repro.obs`` — the observability plane's CLI.

Default mode builds a small Bullet testbed, drives a seeded workload
through the RPC plane, and dumps the shared metrics registry::

    python -m repro.obs                    # Prometheus text exposition
    python -m repro.obs --format json      # canonical JSON snapshot
    python -m repro.obs --seed 7           # different workload seed

``bench`` runs the Figure 2/3 experiments and writes the canonical
bench artifact (byte-identical across same-seed runs)::

    python -m repro.obs bench --seed 1989 \
        --results benchmarks/results/bench.json --top BENCH_PR4.json
"""

from __future__ import annotations

import argparse

from ..bench import make_rig
from ..sim import run_process
from ..units import KB
from .export import render_json, render_text

#: The snapshot workload: whole files created, read twice (one cold,
#: one warm probe each), the middle one deleted.
SNAPSHOT_SIZES = (1 * KB, 16 * KB, 64 * KB)


def _snapshot(seed: int, fmt: str) -> str:
    rig = make_rig(seed=seed, with_nfs=False, background_load=False)
    env, client = rig.env, rig.bullet_client
    caps = [run_process(env, client.create(bytes(size), 1))
            for size in SNAPSHOT_SIZES]
    for cap in caps:
        run_process(env, client.read(cap))
        run_process(env, client.read(cap))
    run_process(env, client.delete(caps[1]))
    if fmt == "json":
        return render_json(rig.metrics)
    return render_text(rig.metrics)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Dump the deterministic metrics registry, or emit "
                    "the bench artifact.",
    )
    parser.add_argument("--seed", type=int, default=1989,
                        help="workload seed (default: 1989)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="snapshot rendering")
    sub = parser.add_subparsers(dest="command")
    bench = sub.add_parser("bench", help="run fig2/fig3 and write the "
                                         "canonical bench JSON")
    bench.add_argument("--seed", type=int, default=1989)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--results", default="benchmarks/results/bench.json",
                       help="bench artifact path")
    bench.add_argument("--top", default=None,
                       help="optional second copy (e.g. BENCH_PR4.json)")
    pr5 = sub.add_parser("bench-pr5", help="run the worker-scaling and "
                                           "disk-discipline experiments")
    pr5.add_argument("--seed", type=int, default=1989)
    pr5.add_argument("--duration", type=float, default=2.0,
                     help="closed-loop window per worker count (sim s)")
    pr5.add_argument("--results",
                     default="benchmarks/results/bench_pr5.json",
                     help="bench artifact path")
    pr5.add_argument("--top", default=None,
                     help="optional second copy (e.g. BENCH_PR5.json)")
    pr9 = sub.add_parser("bench-pr9", help="run the workstation-cache "
                                           "scaling experiment")
    pr9.add_argument("--seed", type=int, default=1989)
    pr9.add_argument("--ops-per-client", type=int, default=150,
                     help="reads each client process performs")
    pr9.add_argument("--results",
                     default="benchmarks/results/bench_pr9.json",
                     help="bench artifact path")
    pr9.add_argument("--top", default=None,
                     help="optional second copy (e.g. BENCH_PR9.json)")
    pr10 = sub.add_parser("bench-pr10", help="run the §5 coherence "
                                             "traffic experiment")
    pr10.add_argument("--seed", type=int, default=1989)
    pr10.add_argument("--ops-per-workstation", type=int, default=120,
                      help="open+read ops each workstation performs")
    pr10.add_argument("--results",
                      default="benchmarks/results/bench_pr10.json",
                      help="bench artifact path")
    pr10.add_argument("--top", default=None,
                      help="optional second copy (e.g. BENCH_PR10.json)")
    speedup = sub.add_parser(
        "speedup", help="measure wall-clock speedup of the kernel fast "
                        "paths against a pristine baseline checkout")
    speedup.add_argument("--baseline-src", required=True,
                         help="src/ directory of the pre-fast-path tree "
                              "(e.g. a git worktree of the seed commit)")
    speedup.add_argument("--seed", type=int, default=1989)
    speedup.add_argument("--rounds", type=int, default=3,
                         help="interleaved baseline/current rounds")
    speedup.add_argument("--inner", type=int, default=2,
                         help="timed repeats inside each child process")
    speedup.add_argument("--results", default="BENCH_PR6.json",
                         help="speedup artifact path")
    args = parser.parse_args(argv)

    if args.command == "bench":
        # Imported lazily: obs.bench pulls in repro.bench -> repro.core,
        # which itself imports repro.obs.
        from .bench import write_bench
        write_bench(args.results, args.top,
                    seed=args.seed, repeats=args.repeats)
        print(f"wrote {args.results}"
              + (f" and {args.top}" if args.top else ""))
        return 0

    if args.command == "bench-pr5":
        from .bench import write_bench_pr5
        write_bench_pr5(args.results, args.top,
                        seed=args.seed, duration=args.duration)
        print(f"wrote {args.results}"
              + (f" and {args.top}" if args.top else ""))
        return 0

    if args.command == "bench-pr9":
        from .bench import write_bench_pr9
        write_bench_pr9(args.results, args.top, seed=args.seed,
                        ops_per_client=args.ops_per_client)
        print(f"wrote {args.results}"
              + (f" and {args.top}" if args.top else ""))
        return 0

    if args.command == "bench-pr10":
        from .bench import write_bench_pr10
        write_bench_pr10(args.results, args.top, seed=args.seed,
                         ops_per_workstation=args.ops_per_workstation)
        print(f"wrote {args.results}"
              + (f" and {args.top}" if args.top else ""))
        return 0

    if args.command == "speedup":
        from .speedup import write_speedup
        payload = write_speedup(args.results, args.baseline_src,
                                seed=args.seed, rounds=args.rounds,
                                inner=args.inner)
        ratio = payload["speedup"]["combined"]
        print(f"wrote {args.results}: combined speedup {ratio:.2f}x "
              f"(events ratio {payload['events_ratio']:.2f}x)")
        return 0

    print(_snapshot(args.seed, args.format), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
