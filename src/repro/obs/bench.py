"""The bench emitter: one deterministic JSON artifact per bench run.

Runs the paper's Figure 2 / Figure 3 experiments (plus a small cache
ablation) on the shared-registry rig and renders everything — delays,
bandwidths, the full metrics snapshot, and the conservation invariants —
as canonical JSON: keys sorted, floats via ``repr`` (what ``json``
emits), trailing newline. Two runs with the same seed produce
**byte-identical** files; CI diffs them to catch determinism
regressions.

This module imports :mod:`repro.bench` (which imports ``repro.core``,
which imports :mod:`repro.obs`), so it is deliberately *not* imported
from ``repro.obs.__init__`` — import it directly::

    from repro.obs.bench import run_bench, write_bench
"""

from __future__ import annotations

import json
from typing import Optional

from ..bench import (PAPER_SIZES, bullet_figure2, client_cache_scaling,
                     coherence_policy_tradeoff, coherence_vs_workstations,
                     cold_read_disciplines, make_rig, nfs_figure3,
                     throughput_vs_workers)
from ..errors import ConsistencyError
from ..units import KB, to_msec

__all__ = ["run_bench", "run_bench_pr5", "run_bench_pr9", "run_bench_pr10",
           "write_bench", "write_bench_pr5", "write_bench_pr9",
           "write_bench_pr10", "canonical_json"]

#: Sizes used for the quick cache-policy ablation (kept small: the
#: ablation is a smoke check, not a figure).
ABLATION_SIZES = (1024, 65536)


def canonical_json(payload: dict) -> str:
    """The one true rendering: sorted keys, 2-space indent, trailing
    newline. Byte-identical for equal payloads."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _table_payload(table) -> dict:
    """A MeasurementTable as plain data: per size and column, the delay
    (msec, as the paper's part (a)) and bandwidth (KB/s, part (b))."""
    out: dict = {}
    for size in sorted(table.rows):
        row: dict = {}
        for column in table.columns:
            if column not in table.rows[size]:
                continue
            row[column] = {
                "delay_ms": to_msec(table.delay(size, column)),
                "bandwidth_kb_s": table.bandwidth(size, column),
            }
        out[str(size)] = row
    return out


def _check_invariants(registry) -> dict:
    """The conservation checks the registry makes possible; raises
    :class:`ConsistencyError` on violation so CI fails loudly."""
    lookups = registry.total("repro_cache_lookups_total")
    hits = registry.total("repro_cache_hits_total")
    misses = registry.total("repro_cache_misses_total")
    if hits + misses != lookups:
        raise ConsistencyError(
            f"cache conservation violated: {hits} hits + {misses} misses "
            f"!= {lookups} lookups"
        )
    return {
        "cache_lookups": lookups,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_conservation": "hits + misses == lookups",
    }


def _ablation_cache_policy(seed: int, repeats: int) -> dict:
    """Fig. 2 READ delay under LRU vs FIFO eviction (A3)."""
    out: dict = {}
    for policy in ("lru", "fifo"):
        rig = make_rig(seed=seed, with_nfs=False, background_load=False,
                       cache_policy=policy)
        table = bullet_figure2(rig, sizes=list(ABLATION_SIZES),
                               repeats=repeats)
        out[policy] = {
            str(size): to_msec(table.delay(size, "READ"))
            for size in sorted(table.rows)
        }
    return out


def run_bench(seed: int = 1989, repeats: int = 3,
              sizes: Optional[list] = None) -> dict:
    """Run the figures on one shared-registry rig; return the payload."""
    wanted = list(sizes) if sizes is not None else list(PAPER_SIZES)
    rig = make_rig(seed=seed)
    fig2 = bullet_figure2(rig, sizes=wanted, repeats=repeats)
    fig3 = nfs_figure3(rig, sizes=wanted, repeats=repeats)
    return {
        "meta": {
            "paper": "The Design of a High-Performance File Server "
                     "(van Renesse, Tanenbaum, Wilschut; ICDCS 1989)",
            "seed": seed,
            "repeats": repeats,
            "sizes": wanted,
        },
        "fig2_bullet": _table_payload(fig2),
        "fig3_nfs": _table_payload(fig3),
        "ablations": {
            "cache_policy_read_delay_ms":
                _ablation_cache_policy(seed, min(repeats, 2)),
        },
        "invariants": _check_invariants(rig.metrics),
        "metrics": rig.metrics.snapshot(),
    }


def run_bench_pr5(seed: int = 1989, duration: float = 2.0) -> dict:
    """The PR 5 experiments: closed-loop cache-hit throughput as the
    worker pool grows, and the cold-read storm under FCFS vs elevator
    disk scheduling. Raises :class:`ConsistencyError` when scaling is
    not strictly increasing, so CI fails loudly."""
    worker_counts = (1, 2, 4)
    throughput = throughput_vs_workers(worker_counts=worker_counts,
                                       duration=duration, seed=seed)
    ordered = [throughput[workers] for workers in worker_counts]
    if not all(a < b for a, b in zip(ordered, ordered[1:])):
        raise ConsistencyError(
            f"worker scaling not strictly increasing: {throughput}"
        )
    # 24 files keeps the per-disk queues deep enough that the elevator
    # actually reorders (at larger counts the storm's stride pattern
    # degenerates to arrival order and both disciplines tie).
    storm_files = 24
    disciplines = cold_read_disciplines(n_files=storm_files, seed=seed)
    return {
        "meta": {
            "paper": "The Design of a High-Performance File Server "
                     "(van Renesse, Tanenbaum, Wilschut; ICDCS 1989)",
            "experiment": "concurrent service plane: worker-pool "
                          "throughput scaling and disk-scheduler "
                          "disciplines under cold-read load",
            "seed": seed,
            "duration_s": duration,
            "worker_counts": list(worker_counts),
            "storm_files": storm_files,
        },
        "throughput_vs_workers_ops_per_sec": {
            str(workers): throughput[workers] for workers in worker_counts
        },
        "cold_read_disciplines": disciplines,
        "invariants": {
            "worker_scaling": "ops/sec strictly increasing 1 -> 2 -> 4",
        },
    }


#: Workstation cache byte budgets swept by the PR 9 experiment. The hot
#: set is 24 x 16 KB = 384 KB, so the sweep runs from thrashing (64 KB
#: holds four files) to full residency (448 KB holds everything).
PR9_CACHE_SIZES = (64 * KB, 160 * KB, 288 * KB, 448 * KB)


def run_bench_pr9(seed: int = 1989, ops_per_client: int = 150) -> dict:
    """The PR 9 experiment: served throughput and server READ load vs
    the workstation cache size, under many client processes sharing one
    cache (§5 client caching with local capability verification).

    Checks — raising :class:`ConsistencyError` so CI fails loudly —
    that per size ``hits + misses == lookups``, and that across the
    sweep server reads fall strictly while hits, bytes saved, RPCs
    avoided, and served ops/sec rise strictly.
    """
    sizes = list(PR9_CACHE_SIZES)
    sweep = client_cache_scaling(sizes, ops_per_client=ops_per_client,
                                 seed=seed)
    for size in sizes:
        row = sweep[size]
        if row["hits"] + row["misses"] != row["lookups"]:
            raise ConsistencyError(
                f"client cache conservation violated at {size} B: "
                f"{row['hits']} hits + {row['misses']} misses != "
                f"{row['lookups']} lookups"
            )
    for field, direction in (("server_reads", "falling"),
                             ("hits", "rising"),
                             ("bytes_saved", "rising"),
                             ("rpcs_avoided", "rising"),
                             ("served_ops_per_sec", "rising")):
        series = [sweep[size][field] for size in sizes]
        pairs = zip(series, series[1:])
        ok = (all(a > b for a, b in pairs) if direction == "falling"
              else all(a < b for a, b in pairs))
        if not ok:
            raise ConsistencyError(
                f"client cache scaling: {field} not strictly "
                f"{direction} across {sizes}: {series}"
            )
    return {
        "meta": {
            "paper": "The Design of a High-Performance File Server "
                     "(van Renesse, Tanenbaum, Wilschut; ICDCS 1989)",
            "experiment": "workstation cache scaling: served ops/sec "
                          "and server READ load vs client-cache size, "
                          "many clients sharing one cache with local "
                          "capability verification",
            "seed": seed,
            "ops_per_client": ops_per_client,
            "cache_sizes_bytes": sizes,
        },
        "client_cache_scaling": {
            str(size): sweep[size] for size in sizes
        },
        "invariants": {
            "client_cache_conservation": "hits + misses == lookups "
                                         "at every cache size",
            "server_reads": "strictly falling with cache size",
            "served_ops_per_sec": "strictly rising with cache size",
            "bytes_saved": "strictly rising with cache size",
            "rpcs_avoided": "strictly rising with cache size",
        },
    }


def write_bench_pr9(results_path: str, top_path: Optional[str] = None,
                    seed: int = 1989, ops_per_client: int = 150) -> dict:
    """Run the PR 9 bench and write the canonical JSON."""
    payload = run_bench_pr9(seed=seed, ops_per_client=ops_per_client)
    text = canonical_json(payload)
    for path in filter(None, (results_path, top_path)):
        with open(path, "w") as handle:
            handle.write(text)
    return payload


#: Workstation counts swept by the PR 10 coherence experiment.
PR10_WORKSTATIONS = (1, 2, 4, 8, 16)

#: The hot-set and writer shape shared by both PR 10 measurements. The
#: per-workstation server-READ envelope follows from it: at most one
#: cold fetch per hot file plus one re-fetch per REPLACE.
PR10_HOT_FILES = 12
PR10_REPLACES = 10


def run_bench_pr10(seed: int = 1989, ops_per_workstation: int = 120) -> dict:
    """The PR 10 experiment: §5 coherence traffic vs workstation count.

    Two measurements. The **sweep** runs N = 1..16 workstations under
    the check-always currency policy: directory RPCs must grow with N
    while per-workstation server READs stay within the single-
    workstation envelope (``hot_files + n_replaces`` — cold fetches
    plus re-fetches of replaced versions) and no stale read is ever
    served. The **policy comparison** holds N = 8 and swaps the
    currency policy: directory RPCs per op must fall strictly from
    check-always through check-after-T to session, and the session
    policy — which never re-checks — must actually serve stale reads
    (otherwise the workload isn't stressing coherence and the zero
    above would be vacuous). All checks raise
    :class:`ConsistencyError` so CI fails loudly.
    """
    counts = list(PR10_WORKSTATIONS)
    sweep = coherence_vs_workstations(
        workstation_counts=counts, seed=seed,
        hot_files=PR10_HOT_FILES, n_replaces=PR10_REPLACES,
        ops_per_workstation=ops_per_workstation)
    envelope = PR10_HOT_FILES + PR10_REPLACES
    for count in counts:
        row = sweep[count]
        if row["stale_reads_served"] != 0:
            raise ConsistencyError(
                f"check-always served {row['stale_reads_served']} stale "
                f"reads at {count} workstations; §5 says zero"
            )
        if row["server_reads_per_workstation"] > envelope:
            raise ConsistencyError(
                f"server READs per workstation "
                f"({row['server_reads_per_workstation']}) exceeded the "
                f"single-workstation envelope ({envelope}) at "
                f"{count} workstations: the cache is not shielding "
                f"the file server"
            )
    rpc_series = [sweep[count]["dir_rpcs"] for count in counts]
    if not all(a < b for a, b in zip(rpc_series, rpc_series[1:])):
        raise ConsistencyError(
            f"directory RPCs not strictly rising with workstations: "
            f"{rpc_series}"
        )
    policies = ("always", "after", "session")
    tradeoff = coherence_policy_tradeoff(
        policies=policies, seed=seed,
        hot_files=PR10_HOT_FILES, n_replaces=PR10_REPLACES,
        ops_per_workstation=ops_per_workstation)
    per_op = [tradeoff[spec]["dir_rpcs_per_op"] for spec in policies]
    if not all(a > b for a, b in zip(per_op, per_op[1:])):
        raise ConsistencyError(
            f"directory RPCs per op not strictly ordered "
            f"always > after > session: {per_op}"
        )
    if tradeoff["session"]["stale_reads_served"] == 0:
        raise ConsistencyError(
            "session policy served no stale reads: the workload is not "
            "exercising coherence, so the check-always zero is vacuous"
        )
    return {
        "meta": {
            "paper": "The Design of a High-Performance File Server "
                     "(van Renesse, Tanenbaum, Wilschut; ICDCS 1989)",
            "experiment": "name-based coherence (§5): directory RPCs "
                          "and server READ load vs workstation count "
                          "and currency policy, under a shared Zipf "
                          "hot set with a writer REPLACE-ing bindings",
            "seed": seed,
            "ops_per_workstation": ops_per_workstation,
            "workstation_counts": counts,
            "hot_files": PR10_HOT_FILES,
            "n_replaces": PR10_REPLACES,
            "server_read_envelope_per_workstation": envelope,
        },
        "coherence_vs_workstations": {
            str(count): sweep[count] for count in counts
        },
        "policy_tradeoff": {spec: tradeoff[spec] for spec in policies},
        "invariants": {
            "stale_reads_check_always": "zero at every workstation "
                                        "count",
            "server_reads_per_workstation": "within the single-"
                                            "workstation envelope "
                                            "(hot_files + n_replaces)",
            "dir_rpcs": "strictly rising with workstation count",
            "dir_rpcs_per_op_by_policy": "strictly ordered "
                                         "always > after > session",
            "session_staleness": "session policy serves stale reads "
                                 "(the workload stresses coherence)",
        },
    }


def write_bench_pr10(results_path: str, top_path: Optional[str] = None,
                     seed: int = 1989,
                     ops_per_workstation: int = 120) -> dict:
    """Run the PR 10 bench and write the canonical JSON."""
    payload = run_bench_pr10(seed=seed,
                             ops_per_workstation=ops_per_workstation)
    text = canonical_json(payload)
    for path in filter(None, (results_path, top_path)):
        with open(path, "w") as handle:
            handle.write(text)
    return payload


def write_bench_pr5(results_path: str, top_path: Optional[str] = None,
                    seed: int = 1989, duration: float = 2.0) -> dict:
    """Run the PR 5 bench and write the canonical JSON."""
    payload = run_bench_pr5(seed=seed, duration=duration)
    text = canonical_json(payload)
    for path in filter(None, (results_path, top_path)):
        with open(path, "w") as handle:
            handle.write(text)
    return payload


def write_bench(results_path: str, top_path: Optional[str] = None,
                seed: int = 1989, repeats: int = 3,
                sizes: Optional[list] = None) -> dict:
    """Run the bench and write the canonical JSON to ``results_path``
    (and ``top_path``, when given). Returns the payload."""
    payload = run_bench(seed=seed, repeats=repeats, sizes=sizes)
    text = canonical_json(payload)
    for path in filter(None, (results_path, top_path)):
        with open(path, "w") as handle:
            handle.write(text)
    return payload
