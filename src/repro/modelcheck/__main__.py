"""CLI: ``python -m repro.modelcheck`` — explore a scope, report the
explored-state count and fingerprint, and on violation write a shrunk,
replayable counterexample trace.

Exit status 1 when a violation was found, 0 otherwise. Output contains
no wall-clock timing: two same-seed runs print byte-identical reports
(CI diffs them).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .explorer import Explorer
from .rig import Scope
from .trace import save_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.modelcheck",
        description="Small-scope exhaustive model checking of the Bullet "
                    "rig (replication + locking + linearizability).")
    parser.add_argument("--mode", choices=("dfs", "walk"), default="dfs",
                        help="exhaustive DFS (default) or seeded random walk")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for walk mode (and recorded in stats)")
    scope = parser.add_argument_group("scope bounds")
    scope.add_argument("--clients", type=int, default=2)
    scope.add_argument("--ops", type=int, default=3,
                       help="ops per client (create/read/modify/delete cycle)")
    scope.add_argument("--crashes", type=int, default=1,
                       help="server crash budget (each crash may be "
                            "followed by a restart)")
    scope.add_argument("--losses", type=int, default=0,
                       help="replica-loss budget")
    scope.add_argument("--repairs", type=int, default=0,
                       help="replica-repair budget")
    scope.add_argument("--compactions", type=int, default=0,
                       help="online-compaction budget")
    scope.add_argument("--disks", type=int, default=2)
    scope.add_argument("--p-factor", type=int, default=2)
    scope.add_argument("--tolerance", type=int, default=None,
                       help="failure tolerance the durability invariant "
                            "asserts (default: p-factor; setting it higher "
                            "models a spec/implementation mismatch)")
    scope.add_argument("--workers", type=int, default=2,
                       help="server worker-pool size")
    scope.add_argument("--overlap", action="store_true",
                       help="split ops into go/wait so requests overlap in "
                            "the worker pool")
    scope.add_argument("--tie-depth", type=int, default=0,
                       help="kernel scheduling choice points per transition "
                            "to explore (0 = reference schedule only)")
    scope.add_argument("--max-depth", type=int, default=None)
    scope.add_argument("--payload", type=int, default=512,
                       help="base payload size in bytes")
    scope.add_argument("--inject", choices=("none", "leak", "corrupt"),
                       default="none",
                       help="arm a test-only fault transition")
    walk = parser.add_argument_group("walk mode")
    walk.add_argument("--walks", type=int, default=64)
    walk.add_argument("--steps", type=int, default=32,
                      help="max transitions per walk")
    out = parser.add_argument_group("output")
    out.add_argument("--stats", metavar="PATH", default=None,
                     help="write the exploration stats JSON here")
    out.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write the (shrunk) counterexample trace here")
    out.add_argument("--no-shrink", action="store_true",
                     help="keep the raw counterexample trace")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    scope = Scope(
        clients=args.clients, ops_per_client=args.ops, crashes=args.crashes,
        replica_losses=args.losses, repairs=args.repairs,
        compactions=args.compactions, n_disks=args.disks,
        p_factor=args.p_factor, tolerance=args.tolerance,
        workers=args.workers, overlap=args.overlap, tie_depth=args.tie_depth,
        max_depth=args.max_depth, payload_bytes=args.payload,
        inject="" if args.inject == "none" else args.inject)
    explorer = Explorer(scope, seed=args.seed)
    if args.mode == "dfs":
        stats = explorer.dfs(shrink=not args.no_shrink)
    else:
        stats = explorer.walk(walks=args.walks, steps=args.steps,
                              shrink=not args.no_shrink)
    print(f"modelcheck: mode={stats.mode} seed={stats.seed} "
          f"scope={json.dumps(stats.scope, sort_keys=True)}")
    print(f"explored {stats.states} states, {stats.transitions} transitions "
          f"({stats.replays} replays, {stats.pruned} pruned), "
          f"{stats.leaves} leaves, max depth {stats.max_depth}")
    print(f"fingerprint: {stats.fingerprint}")
    if args.stats:
        with open(args.stats, "w", encoding="utf-8") as fh:
            json.dump(stats.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats written to {args.stats}")
    counterexample = explorer.counterexample
    if counterexample is None:
        print("PASS: no invariant violation found")
        return 0
    shrunk = ""
    if counterexample.shrunk_from is not None:
        shrunk = (f", shrunk from {counterexample.shrunk_from}")
    print(f"VIOLATION ({counterexample.family}): {counterexample.message}")
    print(f"counterexample ({len(counterexample.records)} transitions"
          f"{shrunk}): {', '.join(counterexample.labels())}")
    if args.trace_out:
        save_trace(args.trace_out, scope, counterexample, seed=args.seed,
                   mode=args.mode)
        print(f"trace written to {args.trace_out}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
