"""The schedule-controlled rig the model checker steps.

A :class:`CheckRig` is one *real* Bullet deployment — RPC transport
over the shared Ethernet, mirrored virtual disks, a ``workers=N``
server with its FileLockTable, and K scripted clients — wrapped in a
transition relation the explorer can enumerate:

* every enabled transition has a stable string label (``c0``, ``crash``,
  ``lose:md1``, ...);
* :meth:`CheckRig.apply` executes one transition by running the sim
  until the corresponding process completes (not until quiescence —
  background replica writes still in flight at a transition boundary
  are exactly the window the fault transitions exist to hit);
* :meth:`CheckRig.state_key` hashes the reachable state so the explorer
  can prune revisits.

The state key deliberately abstracts away simulated time, cache LRU
order, and the capability-check memo (none affect which behaviors are
reachable — only when they happen), and hashes only *reachable* disk
state (the inode table plus every live extent) so runs that differ only
in dead bytes merge. See DESIGN.md §12.

Client programs are deterministic functions of (client index, step
index); all nondeterminism lives in the explorer's schedule choices, so
a recorded (label, tie-choice) trace replays exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from hashlib import sha256
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.runtime import (
    LocksetChecker,
    RaceReport,
    activate,
    active_checker,
    deactivate,
)
from ..capability import Capability
from ..client import BulletClient
from ..core import BulletServer
from ..core.compaction import compact_disk
from ..core.inode import InodeTable
from ..disk import MirroredDiskSet, VirtualDisk
from ..errors import (
    ConsistencyError,
    DeadlockError,
    DiskIOError,
    NoSpaceError,
    NotFoundError,
    ReproError,
    RpcTimeoutError,
    ServerDownError,
)
from ..net import Ethernet, RpcTransport
from ..profiles import BulletProfile, CpuProfile, DiskProfile, EthernetProfile, Testbed
from ..sim import Environment
from ..units import MB
from .refmodel import RefModel

__all__ = ["Scope", "CheckRig", "InvariantViolation", "TransitionRecord",
           "check_scope"]


class InvariantViolation(AssertionError):
    """An explored state broke one of the checked invariant families.

    ``family`` is one of ``"durability"`` (a confirmed file is not
    online despite fewer than `tolerance` replica failures — snippet 1's
    ``AllFilesOnline``), ``"locks"`` (leaked grant, reader/writer
    overlap, waits-for cycle, or a runtime RaceReport/DeadlockError),
    or ``"linearizability"`` (a completed client op disagrees with the
    RefModel oracle).
    """

    def __init__(self, family: str, message: str):
        super().__init__(f"[{family}] {message}")
        self.family = family
        self.message = message


@dataclass(frozen=True)
class TransitionRecord:
    """One replayable schedule choice: a transition label plus the tie
    choices taken at the kernel's scheduling choice points during it."""

    label: str
    ties: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Scope:
    """Bounds of one small-scope exploration (all budgets, not counts:
    the explorer chooses *where* to spend them)."""

    clients: int = 2
    ops_per_client: int = 3
    crashes: int = 1
    replica_losses: int = 0
    repairs: int = 0
    compactions: int = 0
    n_disks: int = 2
    p_factor: int = 2
    #: The failure tolerance the durability invariant asserts: every
    #: confirmed file must survive < tolerance replica failures. None
    #: means "what replication actually provides" (= p_factor); setting
    #: it *above* p_factor models a spec/implementation mismatch — the
    #: deliberately-broken configuration the acceptance counterexample
    #: uses (claim 2-fault tolerance while writing P-FACTOR 1).
    tolerance: Optional[int] = None
    workers: int = 2
    #: False: each client op is one atomic transition (issue + await).
    #: True: ops split into ``c0.go``/``c0.wait`` so requests overlap in
    #: the worker pool and faults can hit mid-flight.
    overlap: bool = False
    #: How many kernel scheduling choice points (heap ties) per
    #: transition the explorer may deviate from insertion order. 0 keeps
    #: the reference schedule.
    tie_depth: int = 0
    max_depth: Optional[int] = None
    payload_bytes: int = 512
    #: "" | "leak" (a read grant is taken and never released) |
    #: "corrupt" (one cached byte is flipped) — test-only fault
    #: transitions for exercising the locks / linearizability families.
    inject: str = ""

    @property
    def tolerance_effective(self) -> int:
        return self.p_factor if self.tolerance is None else self.tolerance

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scope":
        return cls(**data)


#: Per-client op cycle: every client CREATEs first so targets exist.
_OP_CYCLE = ("create", "read", "modify", "delete")


@dataclass(frozen=True)
class OpSpec:
    """One scripted client operation, fully determined by (client,
    step): the only free choices in the system are the explorer's."""

    kind: str
    size: int
    target_index: int
    offset: int
    delete_bytes: int
    insert: bytes


def op_spec(scope: Scope, client: int, step: int) -> OpSpec:
    kind = _OP_CYCLE[step % len(_OP_CYCLE)]
    size = scope.payload_bytes + 16 * client + step
    return OpSpec(kind=kind, size=size, target_index=client + step,
                  offset=3 * client + step, delete_bytes=client + 2 * step,
                  insert=b"MC%d.%d" % (client, step))


def _payload(client: int, step: int, size: int) -> bytes:
    stamp = b"c%d op%d " % (client, step)
    return (stamp * (size // len(stamp) + 1))[:size]


#: A deliberately tiny testbed: 4 MB disks and 32 inodes keep volume
#: format/scan/digest inside a few hundred microseconds per transition,
#: which is what makes exhausting thousands of interleavings practical.
_MC_DISK = DiskProfile(name="mc-disk", capacity_bytes=4 * MB, cylinders=32,
                       heads=2, sectors_per_track=32)
_MC_BULLET = BulletProfile(ram_bytes=2 * MB, reserved_ram_bytes=1 * MB,
                           inode_count=32, rnode_count=16,
                           default_p_factor=2)


def check_testbed(scope: Scope) -> Testbed:
    return Testbed(disk=_MC_DISK,
                   bullet=replace(_MC_BULLET, default_p_factor=scope.p_factor))


class _TieRecorder:
    """The kernel tie-hook driver: consumes a prescribed choice vector
    (padding with 0 = reference order), or draws choices from a seeded
    stream in random-walk mode. Records the candidate count at every
    consulted choice point and the choice actually taken, so the
    explorer can enumerate the siblings and replay the walk."""

    def __init__(self) -> None:
        self.script: Tuple[int, ...] = ()
        self.rng: Any = None
        self.limit: int = 0
        self.counts: List[int] = []
        self.chosen: List[int] = []

    def begin(self, script: Tuple[int, ...], rng: Any, limit: int) -> None:
        self.script = script
        self.rng = rng
        self.limit = limit
        self.counts = []
        self.chosen = []

    def __call__(self, tied: List[tuple]) -> int:
        position = len(self.counts)
        self.counts.append(len(tied))
        if position < len(self.script):
            choice = self.script[position]
        elif self.rng is not None and position < self.limit:
            choice = self.rng.randint(0, len(tied) - 1)
        else:
            choice = 0
        if choice >= len(tied):
            choice = 0
        self.chosen.append(choice)
        return choice


class CheckRig:
    """One real deployment plus the transition relation over it."""

    def __init__(self, scope: Scope):
        self.scope = scope
        self.testbed = check_testbed(scope)
        # Every explored path runs under a fresh Eraser-style lockset
        # checker (cross-checking the lock plane at every transition) on
        # an exact-semantics environment: the fast paths collapse the
        # very same-instant interleavings the tie hook exists to permute.
        self._previous_checker = active_checker()
        activate(LocksetChecker())
        env = self.env = Environment(fast=False)
        self._ties = _TieRecorder()
        env.set_tie_hook(self._ties)
        self.eth = Ethernet(env, EthernetProfile())
        self.rpc = RpcTransport(env, self.eth, CpuProfile())
        self.disks = [VirtualDisk(env, self.testbed.disk, name=f"md{i}")
                      for i in range(scope.n_disks)]
        self.mirror = MirroredDiskSet(env, self.disks)
        self.server = BulletServer(env, self.mirror, self.testbed,
                                   transport=self.rpc, workers=scope.workers,
                                   name="bullet")
        self.server.format()
        env.run(until=env.process(self.server.boot()))
        self.layout = self.server.layout
        # A generous client timeout (no retry policy): a call caught by
        # a crash must surface as an error, not hang the stepper or get
        # silently re-executed.
        self.clients = [
            BulletClient(env, self.rpc, self.server.port, timeout=2.0,
                         name=f"mc{c}")
            for c in range(scope.clients)
        ]
        self.oracle = RefModel()
        self.booted = True
        self.pc = [0] * scope.clients
        self.outstanding: List[Optional[Dict[str, Any]]] = (
            [None] * scope.clients)
        self.crashes_used = 0
        self.losses_used = 0
        self.repairs_used = 0
        self.compactions_used = 0
        self.injected: List[str] = []
        #: Crash-window bookkeeping for the linearizability oracle.
        self.pending_deletes: Dict[Capability, int] = {}
        self.maybe_orphans = 0
        self.had_timeout = False

    # ------------------------------------------------------- transitions

    def enabled(self) -> List[str]:
        """Enabled transition labels, in a canonical deterministic
        order (the explorer's child order and the trace vocabulary)."""
        scope = self.scope
        labels: List[str] = []
        for c in range(scope.clients):
            if scope.overlap:
                if self.outstanding[c] is not None:
                    labels.append(f"c{c}.wait")
                elif self.booted and self.pc[c] < scope.ops_per_client:
                    labels.append(f"c{c}.go")
            elif self.booted and self.pc[c] < scope.ops_per_client:
                labels.append(f"c{c}")
        if self.booted and self.compactions_used < scope.compactions:
            labels.append("compact")
        if self.booted and self.crashes_used < scope.crashes:
            labels.append("crash")
        if not self.booted and any(not d.failed for d in self.disks):
            labels.append("restart")
        live = sum(not d.failed for d in self.disks)
        for i, disk in enumerate(self.disks):
            if (not disk.failed and live > 1
                    and self.losses_used < scope.replica_losses):
                labels.append(f"lose:md{i}")
        for i, disk in enumerate(self.disks):
            if (disk.failed and live > 0
                    and self.repairs_used < scope.repairs):
                labels.append(f"repair:md{i}")
        if self.booted and scope.inject and scope.inject not in self.injected:
            if scope.inject == "leak":
                labels.append("inject:leak")
            elif scope.inject == "corrupt" and self._corrupt_target() is not None:
                labels.append("inject:corrupt")
        return labels

    def apply(self, label: str, ties: Tuple[int, ...] = (),
              rng: Any = None) -> Tuple[int, ...]:
        """Execute one transition, then check the per-state invariant
        families. Returns the tie choices actually taken (== ``ties``
        padded with reference choices, or the walk's random draws), for
        the trace record. Raises :class:`InvariantViolation`."""
        self._ties.begin(tuple(ties), rng,
                         self.scope.tie_depth if rng is not None else 0)
        try:
            self._step(label)
        except InvariantViolation:
            raise
        except (RaceReport, DeadlockError) as exc:
            raise InvariantViolation(
                "locks", f"{type(exc).__name__} during {label!r}: {exc}"
            ) from exc
        except RuntimeError as exc:
            if "deadlock" not in str(exc):
                raise
            raise InvariantViolation(
                "locks", f"scheduler deadlock during {label!r}: {exc}"
            ) from exc
        self.check_invariants()
        return tuple(self._ties.chosen)

    def _step(self, label: str) -> None:
        if label == "crash":
            self.crashes_used += 1
            self.server.crash()
            self.booted = False
            self.oracle.crash()
        elif label == "restart":
            self.env.run(until=self.env.process(self.server.boot()))
            self.booted = True
        elif label == "compact":
            self.compactions_used += 1
            self.env.run(until=self.env.process(compact_disk(self.server)))
        elif label.startswith("lose:"):
            self.losses_used += 1
            self._disk(label[5:]).fail("modelcheck replica loss")
        elif label.startswith("repair:"):
            self.repairs_used += 1
            target = self._disk(label[7:])
            self.env.run(until=self.env.process(self.mirror.recover(target)))
        elif label == "inject:leak":
            self.injected.append("leak")
            # A read grant on an unused high inode number, never
            # released — the canonical lock-plane bug. The key is
            # unused so no client op wedges on it; the leak is caught
            # by the leaked-grant check at quiesced leaves.
            self.server.locks.acquire_read(  # repro: allow(L001)
                self.testbed.bullet.inode_count - 1)
        elif label == "inject:corrupt":
            self.injected.append("corrupt")
            rnode = self._corrupt_target()
            if rnode is None:
                raise ConsistencyError("inject:corrupt enabled with no target")
            # A RAM bit flip in the cache: the disks stay correct (so
            # durability holds) but a READ served from cache returns
            # bytes the oracle never wrote — a linearizability break.
            rnode.data = bytes([rnode.data[0] ^ 0xFF]) + rnode.data[1:]
        elif label.startswith("c"):
            name = label[1:]
            if name.endswith(".go"):
                self._op_go(int(name[:-3]))
            elif name.endswith(".wait"):
                self._op_wait(int(name[:-5]))
            else:
                self._op_go(int(name))
                self._op_wait(int(name))
        else:
            raise ValueError(f"unknown transition label {label!r}")

    def _disk(self, name: str) -> VirtualDisk:
        for disk in self.disks:
            if disk.name == name:
                return disk
        raise ValueError(f"unknown disk {name!r}")

    def _corrupt_target(self) -> Optional[Any]:
        """The cached rnode of the first confirmed, non-empty file, in
        oracle order (deterministic); None when nothing is resident."""
        if not self.booted:
            return None
        for cap, data in self.oracle.confirmed_files():
            if not data:
                continue
            rnode = self.server.cache.peek(cap.object)
            if rnode is not None and rnode.data:
                return rnode
        return None

    # -------------------------------------------------------- client ops

    def _op_go(self, client: int) -> None:
        scope = self.scope
        step = self.pc[client]
        self.pc[client] += 1
        spec = op_spec(scope, client, step)
        info: Dict[str, Any] = {"kind": spec.kind, "client": client,
                                "step": step}
        if spec.kind == "create":
            payload = _payload(client, step, spec.size)
            info["payload"] = payload
            gen = self.clients[client].create(payload, scope.p_factor)
        else:
            target = self.oracle.pick(spec.target_index)
            if target is None:
                # Nothing to operate on: the op degenerates to a no-op
                # transition (same state, pc advanced — pruned upstream).
                self.outstanding[client] = {"kind": "noop", "proc": None}
                return
            info["target"] = target
            info["data"] = self.oracle.data(target)
            if spec.kind == "read":
                gen = self.clients[client].read(target)
            elif spec.kind == "delete":
                self.pending_deletes[target] = (
                    self.pending_deletes.get(target, 0) + 1)
                gen = self.clients[client].delete(target)
            else:
                offset, delete_bytes = RefModel.clamp_modify(
                    len(info["data"]), spec.offset, spec.delete_bytes)
                info["offset"] = offset
                info["delete_bytes"] = delete_bytes
                info["insert"] = spec.insert
                gen = self.clients[client].modify(
                    target, offset, delete_bytes, spec.insert, scope.p_factor)
        info["proc"] = self.env.process(self._run_op(gen))
        self.outstanding[client] = info

    @staticmethod
    def _run_op(gen: Any):
        """Wrap a client call so the op process always *succeeds* with a
        (status, value) pair — errors are data for the oracle, not
        unhandled process failures."""
        try:
            result = yield from gen
        except ReproError as exc:
            return ("err", exc)
        return ("ok", result)

    def _op_wait(self, client: int) -> None:
        info = self.outstanding[client]
        if info is None:
            raise ConsistencyError(f"no outstanding op for client {client}")
        self.outstanding[client] = None
        if info["kind"] == "noop":
            return
        status, value = self.env.run(until=info["proc"])
        self._apply_outcome(info, status, value)

    def _apply_outcome(self, info: Dict[str, Any], status: str,
                       value: Any) -> None:
        kind = info["kind"]
        target: Optional[Capability] = info.get("target")
        if kind == "delete" and target is not None:
            count = self.pending_deletes.get(target, 0) - 1
            if count > 0:
                self.pending_deletes[target] = count
            else:
                self.pending_deletes.pop(target, None)
        if status == "err" and isinstance(
                value, (ServerDownError, RpcTimeoutError, DiskIOError)):
            # The call overlapped a fault: no usable reply. A crash eats
            # the answer (ServerDown/RpcTimeout); a replica dying
            # mid-write makes P-FACTOR legitimately unachievable and the
            # server reports DiskIOError. Either way CREATE/MODIFY may
            # have orphaned a file the oracle never learns about and
            # DELETE may have half-applied.
            self.had_timeout = True
            if kind in ("create", "modify"):
                self.maybe_orphans += 1
            elif kind == "delete" and target is not None:
                self.oracle.mark_uncertain(target)
            return
        confirmed = self.scope.p_factor >= 1
        if kind == "create":
            if status == "ok":
                self._oracle_create(value, info["payload"], confirmed)
            elif not isinstance(value, NoSpaceError):
                self._bad_reply(info, value)
        elif kind == "read" and target is not None:
            if status == "ok":
                if value != info["data"]:
                    raise InvariantViolation(
                        "linearizability",
                        f"READ of object {target.object} returned "
                        f"{value[:32]!r}... ({len(value)} bytes), oracle has "
                        f"{info['data'][:32]!r}... ({len(info['data'])} bytes)")
                self.oracle.resolve_present(target)
            elif isinstance(value, NotFoundError):
                self._absence_reply(info, target)
            else:
                self._bad_reply(info, value)
        elif kind == "delete" and target is not None:
            if status == "ok":
                if self.oracle.is_uncertain(target):
                    self.oracle.resolve_present(target)
                if target not in self.oracle:
                    raise InvariantViolation(
                        "linearizability",
                        f"DELETE of object {target.object} succeeded but the "
                        f"oracle already saw it deleted")
                self.oracle.delete(target)
            elif isinstance(value, NotFoundError):
                self._absence_reply(info, target)
            else:
                self._bad_reply(info, value)
        elif kind == "modify" and target is not None:
            if status == "ok":
                expected = RefModel.spliced(
                    info["data"], info["offset"], info["delete_bytes"],
                    info["insert"])
                self._oracle_create(value, expected, confirmed)
                self.oracle.resolve_present(target)
            elif isinstance(value, NotFoundError):
                self._absence_reply(info, target)
            elif not isinstance(value, NoSpaceError):
                self._bad_reply(info, value)

    def _oracle_create(self, cap: Any, data: bytes, confirmed: bool) -> None:
        if not isinstance(cap, Capability):
            raise InvariantViolation(
                "linearizability", f"CREATE/MODIFY returned {cap!r}, "
                f"not a capability")
        if self.oracle.known(cap):
            raise InvariantViolation(
                "linearizability",
                f"server returned an already-issued capability "
                f"(object {cap.object})")
        self.oracle.create(cap, data, confirmed=confirmed)

    def _absence_reply(self, info: Dict[str, Any], target: Capability) -> None:
        """A NOT_FOUND reply is linearizable only if absence was
        plausible at some instant the op was in flight."""
        if (self.oracle.absence_plausible(target)
                or self.pending_deletes.get(target, 0) > 0):
            if self.oracle.is_uncertain(target):
                self.oracle.resolve_absent(target)
            return
        raise InvariantViolation(
            "linearizability",
            f"{info['kind'].upper()} of object {target.object} reported "
            f"NOT_FOUND but the oracle holds it live with no delete in "
            f"flight")

    def _bad_reply(self, info: Dict[str, Any], value: Any) -> None:
        raise InvariantViolation(
            "linearizability",
            f"{info['kind'].upper()} failed unexpectedly: "
            f"{type(value).__name__}: {value}")

    # --------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """The per-state families: AllFilesOnline + lock-plane safety.
        (Linearizability is checked as op outcomes arrive.)"""
        from .invariants import check_durability, check_lock_plane
        check_durability(self)
        check_lock_plane(self)

    def finalize(self) -> None:
        """Leaf checks that need quiescence: drain the sim, consume any
        still-outstanding ops, then assert no grant outlives its op and
        every confirmed file reads back byte-correct."""
        self.env.run(None)
        for client in range(self.scope.clients):
            if self.outstanding[client] is not None:
                self._op_wait(client)
        self.check_invariants()
        if not self.booted:
            return
        held = self.server.locks.held_keys()
        if held:
            raise InvariantViolation(
                "locks", f"grants leaked at quiescence: inodes {held}")
        for cap, data in self.oracle.confirmed_files():
            try:
                got = self.env.run(
                    until=self.env.process(
                        self._run_op(self.clients[0].read(cap))))
            except RuntimeError as exc:
                raise InvariantViolation(
                    "locks",
                    f"scheduler deadlock during leaf readback: {exc}"
                ) from exc
            status, value = got
            if status == "err" or value != data:
                raise InvariantViolation(
                    "linearizability",
                    f"leaf readback of confirmed object {cap.object} got "
                    f"{value!r:.64}, oracle has {len(data)} bytes")

    def teardown(self) -> None:
        """Restore the lockset checker that was active before this rig
        claimed the slot. The :class:`~repro.modelcheck.Explorer` does
        its own save/restore around a whole exploration; call this when
        driving a bare rig directly (e.g. a replay test)."""
        if self._previous_checker is not None:
            activate(self._previous_checker)
        else:
            deactivate()

    # ---------------------------------------------------------- state key

    def state_key(self) -> str:
        """Replay-stable digest of the reachable state (see module
        docstring for what is deliberately excluded)."""
        h = sha256()
        h.update(repr((
            tuple(self.pc),
            tuple(None if o is None else o["kind"] for o in self.outstanding),
            self.booted,
            self.crashes_used, self.losses_used, self.repairs_used,
            self.compactions_used, tuple(self.injected),
            self.maybe_orphans, self.had_timeout,
            tuple(sorted((cap.object, n)
                         for cap, n in self.pending_deletes.items())),
            tuple(d.failed for d in self.disks),
            tuple(d.queue_depth for d in self.disks),
            len(self.env._heap),
        )).encode())
        for disk in self.disks:
            h.update(self._disk_digest(disk))
        h.update(self.oracle.digest().encode())
        if self.booted:
            for key, lock in sorted(self.server.locks._locks.items()):
                h.update(repr((key, len(lock.readers),
                               lock.writer is not None,
                               len(lock.queue))).encode())
            for number, _inode in self.server.table.live_inodes():
                rnode = self.server.cache.peek(number)
                if rnode is not None:
                    h.update(repr((number,
                                   sha256(rnode.data).hexdigest())).encode())
        return h.hexdigest()

    def _disk_digest(self, disk: VirtualDisk) -> bytes:
        """Digest of one replica's *reachable* durable state: the inode
        table plus every live extent (dead blocks are unreachable —
        nothing the server can do ever reads them)."""
        raw = disk.read_raw(0, self.layout.inode_table_blocks)
        h = sha256(raw)
        table = InodeTable.decode(raw, disk.block_size)
        for _number, inode in table.live_inodes():
            blocks = self.layout.blocks_for(inode.size)
            if blocks:
                h.update(disk.read_raw(inode.start_block, blocks)[:inode.size])
        return h.digest()


def check_scope(scope: Scope) -> None:
    """Reject scopes the stepper cannot faithfully execute."""
    if scope.clients < 1:
        raise ValueError("scope needs at least one client")
    if scope.n_disks < 1:
        raise ValueError("scope needs at least one disk")
    if not 0 <= scope.p_factor <= scope.n_disks:
        raise ValueError(
            f"p_factor {scope.p_factor} impossible with {scope.n_disks} disks")
    if scope.tolerance is not None and scope.tolerance > scope.n_disks:
        raise ValueError("tolerance cannot exceed the replica count")
    if scope.inject not in ("", "leak", "corrupt"):
        raise ValueError(f"unknown injection {scope.inject!r}")
