"""The invariant families checked at every explored state.

Executable translations of the spec obligations:

* **durability** — snippet 1's TLA+ ``AllFilesOnline`` under
  ``IsCorrect == Cardinality(Servers \\ OnlineServers) < Replicas =>
  AllFilesOnline``: as long as fewer than `tolerance` replicas have
  failed, every file the oracle holds as *confirmed* (its CREATE/MODIFY
  reply promised P-FACTOR ≥ 1 durable copies) must be present,
  byte-correct, on at least one live replica. Checked against the raw
  disks — each live replica's inode table is decoded from block 0 and
  the extent bytes compared — never through the server, so a server
  that lies cannot mask a durability hole.
* **locks** — the lock plane's structural safety
  (:meth:`FileLockTable.check_invariants`: no reader/writer overlap, no
  released grant held, waits-for acyclic), cross-checked at runtime by
  the PR 7 Eraser-style lockset checker and the deadlock detector
  (their reports are converted to violations by the rig), plus the
  leaked-grant check at quiesced leaves.
* **linearizability** — checked as completed-op outcomes arrive in
  ``rig._apply_outcome`` (the paper's immutable files make this a
  per-op content/presence check, see refmodel.py).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..core.inode import Inode, InodeTable
from ..errors import ConsistencyError, ReproError

if TYPE_CHECKING:  # pragma: no cover
    from .rig import CheckRig

__all__ = ["check_durability", "check_lock_plane"]


def check_durability(rig: "CheckRig") -> None:
    """AllFilesOnline: every confirmed file on ≥ 1 live replica."""
    from .rig import InvariantViolation

    confirmed = rig.oracle.confirmed_files()
    if not confirmed:
        return
    live = [d for d in rig.disks if not d.failed]
    failures = len(rig.disks) - len(live)
    if failures >= rig.scope.tolerance_effective:
        # More failures than the configuration claims to tolerate:
        # the implication's antecedent is false, nothing to check.
        return
    tables: Dict[str, Dict[int, Inode]] = {}
    for disk in live:
        raw = disk.read_raw(0, rig.layout.inode_table_blocks)
        table = InodeTable.decode(raw, disk.block_size)
        tables[disk.name] = dict(table.live_inodes())
    for cap, data in confirmed:
        if _online(rig, live, tables, cap.object, data):
            continue
        raise InvariantViolation(
            "durability",
            f"confirmed file (object {cap.object}, {len(data)} bytes) is on "
            f"no live replica with {failures} failure(s) < tolerance "
            f"{rig.scope.tolerance_effective} "
            f"(live: {[d.name for d in live]})")


def _online(rig: "CheckRig", live: list, tables: Dict[str, Dict[int, Inode]],
            number: int, data: bytes) -> bool:
    for disk in live:
        inode = tables[disk.name].get(number)
        if inode is None or inode.size != len(data):
            continue
        blocks = rig.layout.blocks_for(inode.size)
        stored = (disk.read_raw(inode.start_block, blocks)[:inode.size]
                  if blocks else b"")
        if stored == data:
            return True
    return False


def check_lock_plane(rig: "CheckRig") -> None:
    """Structural lock-table safety on the live server incarnation."""
    from .rig import InvariantViolation

    if not rig.booted:
        return
    try:
        rig.server.locks.check_invariants()
    except (ConsistencyError, ReproError) as exc:
        raise InvariantViolation("locks", str(exc)) from exc
