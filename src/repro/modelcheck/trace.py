"""Counterexample traces: a replayable (scope, schedule) record.

Format ``repro.modelcheck/1`` — a JSON object carrying the full scope
(so the rig rebuilds identically), the transition labels in order, and
the kernel tie choices each transition took. Everything else in the
system is deterministic, so this is sufficient to reproduce the run
bit-for-bit; the committed regression traces under
``tests/modelcheck_traces/`` are exactly these files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..errors import ConsistencyError
from .explorer import Counterexample, Explorer
from .rig import InvariantViolation, Scope, TransitionRecord

__all__ = ["TRACE_FORMAT", "trace_to_dict", "trace_from_dict", "save_trace",
           "load_trace", "replay_trace", "assert_trace_still_fails"]

TRACE_FORMAT = "repro.modelcheck/1"


def trace_to_dict(scope: Scope, counterexample: Counterexample,
                  seed: int = 0, mode: str = "dfs") -> Dict[str, Any]:
    return {
        "format": TRACE_FORMAT,
        "scope": scope.to_dict(),
        "seed": seed,
        "mode": mode,
        "violation": {
            "family": counterexample.family,
            "message": counterexample.message,
        },
        "shrunk_from": counterexample.shrunk_from,
        "trace": [
            {"label": rec.label, "ties": list(rec.ties)}
            for rec in counterexample.records
        ],
    }


def trace_from_dict(data: Dict[str, Any]
                    ) -> tuple[Scope, List[TransitionRecord]]:
    if data.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"not a {TRACE_FORMAT} trace: format={data.get('format')!r}")
    scope = Scope.from_dict(data["scope"])
    records = [
        TransitionRecord(entry["label"], tuple(entry.get("ties", ())))
        for entry in data["trace"]
    ]
    return scope, records


def save_trace(path: str, scope: Scope, counterexample: Counterexample,
               seed: int = 0, mode: str = "dfs") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_to_dict(scope, counterexample, seed=seed, mode=mode),
                  fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def replay_trace(data: Dict[str, Any]) -> Optional[InvariantViolation]:
    """Re-run a recorded trace on a fresh rig; returns the violation it
    reproduces, or None if the trace now passes (i.e. the bug it
    witnessed is fixed — or regressed into hiding)."""
    scope, records = trace_from_dict(data)
    return Explorer(scope).replay_fails(records)


def assert_trace_still_fails(path: str) -> InvariantViolation:
    """The pytest regression helper: replay the committed trace and
    assert it still demonstrates a violation of the recorded family.
    (Used inverted: run it against a rig with the bug *fixed* and the
    assertion documents that the trace no longer fires.)"""
    data = load_trace(path)
    violation = replay_trace(data)
    expected = data["violation"]["family"]
    if violation is None:
        raise ConsistencyError(
            f"trace {path} no longer reproduces its {expected!r} violation")
    if violation.family != expected:
        raise ConsistencyError(
            f"trace {path} now fails with family {violation.family!r}, "
            f"recorded {expected!r}: {violation.message}")
    return violation
