"""Exhaustive DFS and seeded random-walk exploration of a CheckRig.

The sim kernel's processes are live generators — they cannot be
snapshotted or deep-copied — so the explorer is *stateless* in the
model-checking sense: it owns at most one live rig at a time and
re-executes the trace prefix from a fresh rig whenever it backtracks
to a state whose rig has already been consumed (replay-on-backtrack).
Replays are cheap because the rig is tiny (~1–2 ms per full trace) and
exact because every transition is deterministic given its (label, tie
choices) record.

Visited-state pruning hashes :meth:`CheckRig.state_key`; the hash
excludes simulated time, so two schedules that reach the same reachable
state at different instants merge. The exploration *fingerprint* — the
hash of the sorted visited-state set — is the determinism witness the
CLI and CI compare across runs.

Tie exploration: each transition records the candidate count at every
kernel scheduling choice point it consulted. With ``scope.tie_depth >
0`` the DFS enumerates deviating choice vectors in canonical form
(deviations only at positions ≥ the parent vector's length, so every
vector is generated exactly once); the walk draws choices from its
seeded stream and records what it drew, keeping every walk replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Dict, List, Optional, Set, Tuple

from ..analysis.runtime import activate, active_checker, deactivate
from ..errors import ConsistencyError
from ..sim.rng import SeededStream
from .rig import CheckRig, InvariantViolation, Scope, TransitionRecord, check_scope

__all__ = ["Explorer", "ExploreStats", "Counterexample"]


@dataclass
class Counterexample:
    """A failing schedule: the records replay it, shrunk or not."""

    records: List[TransitionRecord]
    family: str
    message: str
    shrunk_from: Optional[int] = None

    def labels(self) -> List[str]:
        return [rec.label for rec in self.records]


@dataclass
class ExploreStats:
    """What an exploration did — all fields replay-stable (no wall
    clock anywhere: determinism is the point)."""

    mode: str
    scope: Dict[str, Any]
    seed: int
    states: int = 0
    transitions: int = 0
    replays: int = 0
    pruned: int = 0
    leaves: int = 0
    max_depth: int = 0
    walks: int = 0
    fingerprint: str = ""
    violation: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro.modelcheck.stats/1",
            "mode": self.mode,
            "scope": self.scope,
            "seed": self.seed,
            "states": self.states,
            "transitions": self.transitions,
            "replays": self.replays,
            "pruned": self.pruned,
            "leaves": self.leaves,
            "max_depth": self.max_depth,
            "walks": self.walks,
            "fingerprint": self.fingerprint,
            "violation": self.violation,
        }


class _Found(Exception):
    """Internal: unwinds the DFS when a violation is found."""

    def __init__(self, records: List[TransitionRecord],
                 violation: InvariantViolation):
        super().__init__(str(violation))
        self.records = records
        self.violation = violation


class Explorer:
    """One exploration of one scope. Create a fresh instance per run."""

    def __init__(self, scope: Scope, seed: int = 0):
        check_scope(scope)
        self.scope = scope
        self.seed = seed
        self.visited: Set[str] = set()
        self.counterexample: Optional[Counterexample] = None
        self.stats: Optional[ExploreStats] = None

    # ---------------------------------------------------------- frontends

    def dfs(self, shrink: bool = True) -> ExploreStats:
        """Exhaust the scope depth-first. Stops at the first violation
        (optionally shrinking its trace); otherwise visits every
        reachable state and finalizes every leaf."""
        stats = ExploreStats(mode="dfs", scope=self.scope.to_dict(),
                             seed=self.seed)
        self.stats = stats
        previous = active_checker()
        try:
            rig = self._new_rig()
            self.visited.add(rig.state_key())
            self._visit(rig, [], 0)
        except _Found as found:
            self._record_violation(found.records, found.violation, shrink)
        finally:
            self._restore(previous)
        stats.fingerprint = self._fingerprint()
        return stats

    def walk(self, walks: int = 64, steps: int = 32,
             shrink: bool = True) -> ExploreStats:
        """Seeded random walks for scopes too big to exhaust: each walk
        picks uniformly among enabled transitions and random tie choices
        (up to ``scope.tie_depth`` per transition), recording every draw
        so any failing walk replays exactly."""
        stats = ExploreStats(mode="walk", scope=self.scope.to_dict(),
                             seed=self.seed, walks=walks)
        self.stats = stats
        rng = SeededStream(self.seed, "modelcheck.walk")
        previous = active_checker()
        try:
            for _walk in range(walks):
                if self._one_walk(rng, steps, shrink):
                    break
        finally:
            self._restore(previous)
        stats.fingerprint = self._fingerprint()
        return stats

    # ---------------------------------------------------------------- DFS

    def _visit(self, rig: CheckRig, records: List[TransitionRecord],
               depth: int) -> None:
        """Expand the state ``rig`` sits in (already marked visited).
        Consumes ``rig``: the first child mutates it in place; siblings
        replay from fresh rigs."""
        stats = self._stats()
        stats.states += 1
        stats.max_depth = max(stats.max_depth, depth)
        labels = rig.enabled()
        limit = self.scope.max_depth
        if not labels or (limit is not None and depth >= limit):
            stats.leaves += 1
            self._finalize(rig, records)
            return
        # The work queue of (label, tie-vector) children; tie deviations
        # are appended as each child's apply reports its choice points.
        queue: List[Tuple[str, Tuple[int, ...]]] = [
            (label, ()) for label in labels]
        live: Optional[CheckRig] = rig
        index = 0
        while index < len(queue):
            label, vector = queue[index]
            index += 1
            if live is not None:
                child, live = live, None
            else:
                child = self._replay(records)
            try:
                taken = child.apply(label, ties=vector)
            except InvariantViolation as violation:
                raise _Found(
                    records + [TransitionRecord(label, vector)], violation)
            stats.transitions += 1
            counts = child._ties.counts
            for position in range(len(vector),
                                  min(len(counts), self.scope.tie_depth)):
                for choice in range(1, counts[position]):
                    queue.append((label, vector
                                  + (0,) * (position - len(vector))
                                  + (choice,)))
            key = child.state_key()
            if key in self.visited:
                stats.pruned += 1
                continue
            self.visited.add(key)
            self._visit(child,
                        records + [TransitionRecord(label, tuple(taken))],
                        depth + 1)

    def _replay(self, records: List[TransitionRecord]) -> CheckRig:
        stats = self._stats()
        stats.replays += 1
        rig = self._new_rig()
        for rec in records:
            rig.apply(rec.label, ties=rec.ties)
        return rig

    def _finalize(self, rig: CheckRig, records: List[TransitionRecord]) -> None:
        try:
            rig.finalize()
        except InvariantViolation as violation:
            raise _Found(list(records), violation)

    # --------------------------------------------------------------- walk

    def _one_walk(self, rng: SeededStream, steps: int, shrink: bool) -> bool:
        stats = self._stats()
        rig = self._new_rig()
        records: List[TransitionRecord] = []
        self.visited.add(rig.state_key())
        try:
            for _step in range(steps):
                labels = rig.enabled()
                if not labels:
                    break
                label = labels[rng.randint(0, len(labels) - 1)]
                taken = rig.apply(label, rng=rng)
                stats.transitions += 1
                records.append(TransitionRecord(label, tuple(taken)))
                key = rig.state_key()
                if key not in self.visited:
                    self.visited.add(key)
                    stats.states += 1
                stats.max_depth = max(stats.max_depth, len(records))
            stats.leaves += 1
            rig.finalize()
        except InvariantViolation as violation:
            self._record_violation(records, violation, shrink)
            return True
        return False

    # ------------------------------------------------------------ shrinker

    def shrink(self, records: List[TransitionRecord]
               ) -> Tuple[List[TransitionRecord], InvariantViolation]:
        """Greedy single-removal fixpoint (ddmin-lite): repeatedly drop
        any one record whose removal still yields a failing, *valid*
        trace (every remaining label enabled when its turn comes). The
        result is 1-minimal: removing any single record makes it pass."""
        current = list(records)
        violation = self.replay_fails(current)
        if violation is None:
            raise ValueError("shrink() requires a failing trace")
        changed = True
        while changed:
            changed = False
            for index in range(len(current)):
                candidate = current[:index] + current[index + 1:]
                failed = self.replay_fails(candidate)
                if failed is not None:
                    current = candidate
                    violation = failed
                    changed = True
                    break
        return current, violation

    def replay_fails(self, records: List[TransitionRecord]
                     ) -> Optional[InvariantViolation]:
        """Replay ``records`` on a fresh rig: the violation it raises
        (at any transition or at finalize), or None if the trace passes
        or becomes invalid (a label not enabled at its turn — which for
        shrinking purposes counts as passing)."""
        stats = self.stats
        if stats is not None:
            stats.replays += 1
        rig = self._new_rig()
        for rec in records:
            if rec.label not in rig.enabled():
                return None
            try:
                rig.apply(rec.label, ties=rec.ties)
            except InvariantViolation as violation:
                return violation
        try:
            rig.finalize()
        except InvariantViolation as violation:
            return violation
        return None

    # ------------------------------------------------------------ plumbing

    def _new_rig(self) -> CheckRig:
        return CheckRig(self.scope)

    def _stats(self) -> ExploreStats:
        if self.stats is None:
            raise ConsistencyError("no exploration in progress")
        return self.stats

    def _record_violation(self, records: List[TransitionRecord],
                          violation: InvariantViolation,
                          shrink: bool) -> None:
        stats = self._stats()
        shrunk_from: Optional[int] = None
        if shrink and records:
            shrunk_from = len(records)
            records, violation = self.shrink(records)
        self.counterexample = Counterexample(
            records=records, family=violation.family,
            message=violation.message, shrunk_from=shrunk_from)
        stats.violation = {
            "family": violation.family,
            "message": violation.message,
            "trace": [rec.label for rec in records],
        }

    def _fingerprint(self) -> str:
        h = sha256()
        for key in sorted(self.visited):
            h.update(key.encode())
        return h.hexdigest()

    @staticmethod
    def _restore(previous: Any) -> None:
        """Rigs activate their own lockset checker; put back whatever
        the caller (e.g. conftest's REPRO_LOCKSET fixture) had."""
        if previous is not None:
            activate(previous)
        else:
            deactivate()
