"""Small-scope exhaustive model checking of the Bullet rig.

``python -m repro.modelcheck`` explores every interleaving of K
scripted clients, server crash/restart, replica loss/repair, and
compaction over the *real* stack (RPC transport, worker pool,
FileLockTable, replication, failover), checking three invariant
families at every state: durability (``AllFilesOnline``), lock-plane
safety, and linearizability against the shared :class:`RefModel`
oracle. See DESIGN.md §12.
"""

from .explorer import Counterexample, Explorer, ExploreStats
from .refmodel import RefDirectory, RefModel
from .rig import (
    CheckRig,
    InvariantViolation,
    Scope,
    TransitionRecord,
    check_scope,
)
from .trace import (
    TRACE_FORMAT,
    assert_trace_still_fails,
    load_trace,
    replay_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "Counterexample",
    "Explorer",
    "ExploreStats",
    "RefDirectory",
    "RefModel",
    "CheckRig",
    "InvariantViolation",
    "Scope",
    "TransitionRecord",
    "check_scope",
    "TRACE_FORMAT",
    "assert_trace_still_fails",
    "load_trace",
    "replay_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
]
