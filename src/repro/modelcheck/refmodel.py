"""Reference models (oracles) for model-based testing and checking.

:class:`RefModel` is the capability→bytes oracle for a Bullet volume
that `tests/test_model_based.py` and the model checker share. It
captures exactly the semantics the paper promises:

* files are **immutable** — a capability's bytes never change, so the
  only uncertainty a crash can introduce is *presence*, never content;
* CREATE/MODIFY return a fresh capability; the reply means the file is
  durable on at least P-FACTOR replicas (for P ≥ 1), which the oracle
  records as *confirmed*;
* a server crash may orphan an in-flight CREATE/MODIFY (the oracle
  simply never learns the capability) and may leave an in-flight
  DELETE half-applied, which the oracle records as *uncertain* — a
  later successful READ resolves presence either way.

Immutability is what makes linearizability checking cheap: a completed
READ is correct iff it returned either the capability's one true byte
string or NOT_FOUND at a moment when absence was plausible. There is
no window in which two different *contents* are both acceptable.

:class:`RefDirectory` is the name→capability oracle for the directory
server (`tests/test_model_based_more.py`).
"""

from __future__ import annotations

from hashlib import sha256
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..capability import Capability
from ..errors import ConsistencyError

__all__ = ["RefModel", "RefDirectory"]


class RefModel:
    """Oracle for one Bullet volume: capability → immutable bytes."""

    def __init__(self) -> None:
        # Files the oracle believes exist (confirmed or not).
        self._files: Dict[Capability, bytes] = {}
        # Subset of _files whose reply implied durability (P-FACTOR >= 1).
        self._confirmed: Set[Capability] = set()
        # Files whose *presence* is unknown after a crash interrupted an
        # operation on them (bytes retained: content is never uncertain).
        self._uncertain: Dict[Capability, bytes] = {}
        # Capabilities known to have been deleted (presence resolved to
        # "gone"); READ returning NOT_FOUND for these is correct.
        self._gone: Set[Capability] = set()

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, cap: Capability) -> bool:
        return cap in self._files

    def __iter__(self) -> Iterator[Capability]:
        return iter(self.caps())

    def caps(self) -> List[Capability]:
        """Live capabilities in deterministic (object-number) order."""
        return sorted(self._files, key=lambda c: c.object)

    def pick(self, index: int) -> Optional[Capability]:
        """The live capability at ``index`` modulo the live count — the
        deterministic target-selection rule the model-based suites and
        the checker's scripted clients share. None when empty."""
        caps = self.caps()
        return caps[index % len(caps)] if caps else None

    def data(self, cap: Capability) -> bytes:
        """The one true content of ``cap`` (KeyError if unknown)."""
        if cap in self._files:
            return self._files[cap]
        return self._uncertain[cap]

    def items(self) -> List[Tuple[Capability, bytes]]:
        """Live (capability, bytes) pairs in deterministic order."""
        return [(cap, self._files[cap]) for cap in self.caps()]

    def confirmed_files(self) -> List[Tuple[Capability, bytes]]:
        """The durability set: files whose reply promised P ≥ 1 copies
        and whose presence is not in doubt. These must survive fewer
        than `tolerance` replica failures (AllFilesOnline)."""
        return [(cap, self._files[cap]) for cap in self.caps()
                if cap in self._confirmed]

    def is_uncertain(self, cap: Capability) -> bool:
        return cap in self._uncertain

    def has_uncertain(self) -> bool:
        return bool(self._uncertain)

    def known(self, cap: Capability) -> bool:
        """True if the oracle has ever tracked ``cap``."""
        return (cap in self._files or cap in self._uncertain
                or cap in self._gone)

    def absence_plausible(self, cap: Capability) -> bool:
        """True when a NOT_FOUND reply for ``cap`` is acceptable:
        deleted, never tracked, or crash-uncertain."""
        return cap not in self._files or cap in self._uncertain

    # ---------------------------------------------------------- mutation

    def create(self, cap: Capability, data: bytes,
               confirmed: bool = True) -> None:
        """Record a completed CREATE (or MODIFY's fresh file). Reusing a
        *live* (or uncertain) capability is an oracle-integrity error; a
        *gone* capability may legitimately come back — a reboot reseeds
        the server's deterministic check generator, so a deleted
        (object, check) pair can be reissued for a brand-new file."""
        if cap in self._files or cap in self._uncertain:
            raise ConsistencyError(f"live capability reuse: {cap!r}")
        self._gone.discard(cap)
        self._files[cap] = data
        if confirmed:
            self._confirmed.add(cap)

    def delete(self, cap: Capability) -> None:
        """Record a completed DELETE."""
        if cap in self._uncertain:
            del self._uncertain[cap]
        self._files.pop(cap)
        self._confirmed.discard(cap)
        self._gone.add(cap)

    def crash(self) -> None:
        """A server crash: every unconfirmed file (written with P = 0,
        so the reply promised nothing durable) becomes uncertain."""
        for cap in [c for c in self._files if c not in self._confirmed]:
            self._uncertain[cap] = self._files[cap]

    def mark_uncertain(self, cap: Capability) -> None:
        """An operation that could have removed ``cap`` died without a
        reply (crash mid-DELETE): presence is now unknown."""
        if cap in self._files:
            self._uncertain[cap] = self._files[cap]
            self._confirmed.discard(cap)

    def resolve_present(self, cap: Capability) -> None:
        """A successful READ proved ``cap`` still exists."""
        self._uncertain.pop(cap, None)

    def resolve_absent(self, cap: Capability) -> None:
        """A NOT_FOUND reply proved ``cap`` is gone."""
        if cap not in self._uncertain:
            raise ConsistencyError(
                f"cannot resolve {cap!r} absent: not uncertain")
        del self._uncertain[cap]
        self._files.pop(cap, None)
        self._confirmed.discard(cap)
        self._gone.add(cap)

    # ------------------------------------------------- modify arithmetic

    @staticmethod
    def clamp_modify(size: int, offset: int,
                     delete_bytes: int) -> Tuple[int, int]:
        """The in-range (offset, delete_bytes) the suites derive from
        unbounded generated integers, shared so scripted clients and
        hypothesis agree byte-for-byte."""
        offset = offset % (size + 1)
        return offset, min(delete_bytes, size - offset)

    @staticmethod
    def spliced(old: bytes, offset: int, delete_bytes: int,
                insert: bytes) -> bytes:
        """MODIFY's result content: splice ``insert`` over the deleted
        range. The source file is immutable and unchanged."""
        return old[:offset] + insert + old[offset + delete_bytes:]

    # ------------------------------------------------------------ digest

    def digest(self) -> str:
        """Replay-stable hash of the oracle state (state-key input)."""
        h = sha256()
        for cap in self.caps():
            h.update(repr((cap.object, cap.check,
                           self._files[cap],
                           cap in self._confirmed,
                           cap in self._uncertain)).encode())
        for cap in sorted(self._uncertain, key=lambda c: c.object):
            if cap not in self._files:
                h.update(repr(("u", cap.object, cap.check)).encode())
        for cap in sorted(self._gone, key=lambda c: c.object):
            h.update(repr(("g", cap.object, cap.check)).encode())
        return h.hexdigest()


class RefDirectory:
    """Oracle for one directory: name → capability, flat namespace."""

    def __init__(self) -> None:
        self._names: Dict[str, Capability] = {}

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def names(self) -> List[str]:
        """Entry names in sorted order (the LIST wire order)."""
        return sorted(self._names)

    def lookup(self, name: str) -> Optional[Capability]:
        return self._names.get(name)

    def append(self, name: str, cap: Capability) -> bool:
        """Record an APPEND; False when the name already exists (the
        server must raise ExistsError)."""
        if name in self._names:
            return False
        self._names[name] = cap
        return True

    def replace(self, name: str, cap: Capability) -> Optional[Capability]:
        """Record a REPLACE; returns the displaced capability, or None
        when the name is absent (the server must raise NotFoundError)."""
        old = self._names.get(name)
        if old is None:
            return None
        self._names[name] = cap
        return old

    def remove(self, name: str) -> Optional[Capability]:
        """Record a REMOVE; returns the removed capability, or None
        when absent (the server must raise NotFoundError)."""
        return self._names.pop(name, None)
