"""Tests for the disk substrate: geometry/timing, the virtual disk,
scheduling disciplines, mirroring, and fault injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import (
    DiskGeometry,
    ElevatorQueue,
    FaultInjector,
    FcfsQueue,
    MirroredDiskSet,
    VirtualDisk,
    make_queue,
)
from repro.errors import DiskIOError, ServerDownError
from repro.profiles import DiskProfile
from repro.sim import Environment, run_process
from repro.units import KB, MB


SMALL = DiskProfile(name="small", capacity_bytes=16 * MB, cylinders=64,
                    heads=4, sectors_per_track=32)


def make_disk(env, name="d0", discipline="fcfs", profile=SMALL):
    return VirtualDisk(env, profile, name=name, discipline=discipline)


# ----------------------------------------------------------- geometry


def test_geometry_block_counts():
    g = DiskGeometry(SMALL)
    assert g.total_blocks == 16 * MB // 512
    assert g.block_size == 512


def test_cylinder_mapping():
    g = DiskGeometry(SMALL)
    per_cyl = SMALL.blocks_per_cylinder
    assert g.cylinder_of(0) == 0
    assert g.cylinder_of(per_cyl - 1) == 0
    assert g.cylinder_of(per_cyl) == 1


def test_cylinder_mapping_rejects_bad_block():
    g = DiskGeometry(SMALL)
    with pytest.raises(ValueError):
        g.cylinder_of(-1)
    with pytest.raises(ValueError):
        g.cylinder_of(g.total_blocks)


def test_seek_time_zero_for_same_cylinder():
    g = DiskGeometry(SMALL)
    assert g.seek_time(5, 5) == 0.0


def test_seek_time_monotone_in_distance():
    g = DiskGeometry(SMALL)
    times = [g.seek_time(0, d) for d in (1, 4, 16, 63)]
    assert times == sorted(times)
    assert times[0] >= SMALL.seek_settle


def test_full_stroke_seek_matches_profile():
    g = DiskGeometry(SMALL)
    assert g.seek_time(0, SMALL.cylinders - 1) == pytest.approx(
        SMALL.seek_full_stroke
    )


def test_transfer_time_linear():
    g = DiskGeometry(SMALL)
    assert g.transfer_time(20) == pytest.approx(2 * g.transfer_time(10))
    assert g.transfer_time(0) == 0.0


def test_contiguous_access_cheaper_than_scattered():
    """The core physical claim of the paper: reading N blocks
    contiguously costs far less than reading them scattered."""
    g = DiskGeometry(SMALL)
    nblocks = 128  # 64 KB
    contiguous = g.access_time(0, 0, nblocks)
    per_cyl = SMALL.blocks_per_cylinder
    scattered = 0.0
    cyl = 0
    for i in range(nblocks):
        target_cyl = (i * 7) % SMALL.cylinders
        scattered += g.access_time(cyl, target_cyl * per_cyl, 1)
        cyl = target_cyl
    assert scattered > 5 * contiguous


def test_access_time_charges_cylinder_crossings():
    g = DiskGeometry(SMALL)
    per_cyl = SMALL.blocks_per_cylinder
    within = g.access_time(0, 0, per_cyl)
    crossing = g.access_time(0, 0, per_cyl + 1)
    assert crossing > within


@given(
    start=st.integers(min_value=0, max_value=1000),
    nblocks=st.integers(min_value=1, max_value=512),
    cyl=st.integers(min_value=0, max_value=63),
)
@settings(max_examples=100)
def test_access_time_positive_property(start, nblocks, cyl):
    g = DiskGeometry(SMALL)
    t = g.access_time(cyl, start, nblocks)
    assert t >= g.transfer_time(nblocks)


# -------------------------------------------------------- virtual disk


def test_write_then_read_roundtrip():
    env = Environment()
    disk = make_disk(env)
    payload = bytes(range(256)) * 8  # 4 blocks

    def proc():
        yield disk.write(10, payload)
        data = yield disk.read(10, 4)
        return data

    data = run_process(env, proc())
    assert data[: len(payload)] == payload


def test_unwritten_blocks_read_as_zero():
    env = Environment()
    disk = make_disk(env)

    def proc():
        data = yield disk.read(100, 2)
        return data

    assert run_process(env, proc()) == bytes(1024)


def test_write_pads_partial_block():
    env = Environment()
    disk = make_disk(env)

    def proc():
        yield disk.write(0, b"hello")
        data = yield disk.read(0, 1)
        return data

    data = run_process(env, proc())
    assert data == b"hello" + bytes(512 - 5)


def test_write_empty_rejected():
    env = Environment()
    disk = make_disk(env)
    with pytest.raises(ValueError):
        disk.write(0, b"")


def test_read_takes_simulated_time():
    env = Environment()
    disk = make_disk(env)

    def proc():
        yield disk.read(0, 16)
        return env.now

    elapsed = run_process(env, proc())
    g = disk.geometry
    assert elapsed == pytest.approx(
        g.avg_rotational_latency + g.transfer_time(16)
    )


def test_requests_serialize_on_the_arm():
    """Two concurrent reads must not overlap in time."""
    env = Environment()
    disk = make_disk(env)
    done = []

    def reader(tag):
        yield disk.read(0, 64)
        done.append((tag, env.now))

    env.process(reader("a"))
    env.process(reader("b"))
    env.run()
    (t_a, t_b) = (done[0][1], done[1][1])
    one_read = disk.geometry.avg_rotational_latency + disk.geometry.transfer_time(64)
    assert t_a == pytest.approx(one_read)
    assert t_b == pytest.approx(2 * one_read)


def test_stats_accumulate():
    env = Environment()
    disk = make_disk(env)

    def proc():
        yield disk.write(0, bytes(1024))
        yield disk.read(0, 2)

    run_process(env, proc())
    assert disk.stats.writes == 1
    assert disk.stats.reads == 1
    assert disk.stats.blocks_written == 2
    assert disk.stats.blocks_read == 2
    assert disk.stats.busy_time > 0


def test_raw_plane_is_free_and_instant():
    env = Environment()
    disk = make_disk(env)
    disk.write_raw(5, b"raw data")
    assert disk.read_raw(5, 1)[:8] == b"raw data"
    assert env.now == 0.0
    assert disk.stats.writes == 0


def test_sparse_storage():
    env = Environment()
    disk = make_disk(env)
    disk.write_raw(1000, bytes(512))
    assert disk.used_host_bytes() == 512


def test_out_of_range_extent_rejected():
    env = Environment()
    disk = make_disk(env)
    with pytest.raises(ValueError):
        disk.read(disk.total_blocks - 1, 2)


def test_failed_disk_rejects_new_requests():
    env = Environment()
    disk = make_disk(env)
    disk.fail("test")

    def proc():
        try:
            yield disk.read(0, 1)
        except DiskIOError:
            return "io-error"
        return "unexpected success"

    assert run_process(env, proc()) == "io-error"


def test_failure_drains_pending_queue():
    env = Environment()
    disk = make_disk(env)
    results = []

    def reader():
        try:
            yield disk.read(0, 2048)
        except DiskIOError:
            results.append("failed")

    def second_reader():
        try:
            yield disk.read(100, 2048)
        except DiskIOError:
            results.append("failed")

    def killer():
        yield env.timeout(1e-6)
        disk.fail("mid-flight")

    env.process(reader())
    env.process(second_reader())
    env.process(killer())
    env.run()
    assert results == ["failed", "failed"]


def test_repair_restores_service():
    env = Environment()
    disk = make_disk(env)
    disk.fail("test")
    disk.repair()

    def proc():
        yield disk.write(0, b"back")
        return (yield disk.read(0, 1))[:4]

    assert run_process(env, proc()) == b"back"


# ---------------------------------------------------------- schedulers


class _Req:
    def __init__(self, cylinder, tag):
        self.cylinder = cylinder
        self.tag = tag


def test_fcfs_order():
    q = FcfsQueue()
    for i, cyl in enumerate((9, 1, 5)):
        q.push(_Req(cyl, i))
    assert [q.pop(0).tag for _ in range(3)] == [0, 1, 2]
    assert q.pop(0) is None


def test_elevator_sweeps_upward_first():
    q = ElevatorQueue()
    for tag, cyl in enumerate((50, 10, 30)):
        q.push(_Req(cyl, tag))
    # Arm at 20 sweeping up: 30, 50, then reverse to 10.
    order = [q.pop(20).cylinder, q.pop(30).cylinder, q.pop(50).cylinder]
    assert order == [30, 50, 10]


def test_elevator_ties_fifo():
    q = ElevatorQueue()
    q.push(_Req(5, "first"))
    q.push(_Req(5, "second"))
    assert q.pop(0).tag == "first"
    assert q.pop(5).tag == "second"


def test_elevator_ties_fifo_on_down_sweep():
    """Same-cylinder ties must be FIFO in *both* sweep directions."""
    q = ElevatorQueue()
    q.push(_Req(10, "low"))        # forces the up sweep to exhaust first
    q.push(_Req(3, "older"))
    q.push(_Req(3, "newer"))
    assert q.pop(10).tag == "low"  # arm at 10, up sweep
    # Nothing ahead going up: direction reverses at cylinder 10.
    assert q.pop(10).tag == "older"
    assert q.pop(3).tag == "newer"
    assert q.pop(3) is None


def test_elevator_down_sweep_prefers_highest_cylinder_behind_arm():
    q = ElevatorQueue()
    for tag, cyl in enumerate((2, 8, 5)):
        q.push(_Req(cyl, tag))
    q.push(_Req(90, "ahead"))
    assert q.pop(60).tag == "ahead"     # up sweep first
    # Reversed: serve 8, 5, 2 — descending cylinder order.
    assert [q.pop(90).cylinder, q.pop(8).cylinder, q.pop(5).cylinder] \
        == [8, 5, 2]


class _ReferenceElevator:
    """The pre-rewrite O(n²) implementation, kept as the behavioral
    oracle: the bisect-based queue must pop identically."""

    def __init__(self):
        self._pending = []
        self._counter = 0
        self._direction = 1

    def push(self, request):
        self._counter += 1
        self._pending.append((request.cylinder, self._counter, request))

    def pop(self, current_cylinder):
        if not self._pending:
            return None
        chosen = self._best_ahead(current_cylinder)
        if chosen is None:
            self._direction = -self._direction
            chosen = self._best_ahead(current_cylinder)
        self._pending.remove(chosen)
        return chosen[2]

    def _best_ahead(self, current_cylinder):
        if self._direction > 0:
            ahead = [r for r in self._pending if r[0] >= current_cylinder]
            return min(ahead, key=lambda r: (r[0], r[1])) if ahead else None
        ahead = [r for r in self._pending if r[0] <= current_cylinder]
        return max(ahead, key=lambda r: (r[0], -r[1])) if ahead else None


@given(st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers(min_value=0, max_value=30)),
    st.tuples(st.just("pop"), st.integers(min_value=0, max_value=30)),
), max_size=80))
@settings(max_examples=60, deadline=None)
def test_elevator_rewrite_matches_reference(script):
    fast, slow = ElevatorQueue(), _ReferenceElevator()
    tag = 0
    for action, value in script:
        if action == "push":
            fast.push(_Req(value, tag))
            slow.push(_Req(value, tag))
            tag += 1
        else:
            a, b = fast.pop(value), slow.pop(value)
            assert (a.tag if a else None) == (b.tag if b else None)
    assert len(fast) == len(slow._pending)


def test_make_queue_factory():
    assert isinstance(make_queue("fcfs"), FcfsQueue)
    assert isinstance(make_queue("elevator"), ElevatorQueue)
    with pytest.raises(ValueError):
        make_queue("sstf")


def test_elevator_disk_reduces_seek_time_under_load():
    """Under a batch of scattered requests, SCAN must finish no later
    than FCFS."""
    per_cyl = SMALL.blocks_per_cylinder
    targets = [(i * 37) % 60 for i in range(24)]

    def total_time(discipline):
        env = Environment()
        disk = make_disk(env, discipline=discipline)

        def client(cyl):
            yield disk.read(cyl * per_cyl, 1)

        for cyl in targets:
            env.process(client(cyl))
        env.run()
        return env.now

    assert total_time("elevator") <= total_time("fcfs")


# ------------------------------------------------------------ mirroring


def make_mirror(env, n=2):
    disks = [make_disk(env, name=f"d{i}") for i in range(n)]
    return MirroredDiskSet(env, disks), disks


def test_mirror_requires_a_disk():
    env = Environment()
    with pytest.raises(ValueError):
        MirroredDiskSet(env, [])


def test_mirror_write_reaches_all_replicas():
    env = Environment()
    mirror, disks = make_mirror(env)

    def proc():
        yield mirror.write(3, b"replicated")

    run_process(env, proc())
    for disk in disks:
        assert disk.read_raw(3, 1)[:10] == b"replicated"


def test_mirror_write_need_zero_returns_immediately():
    env = Environment()
    mirror, disks = make_mirror(env)

    def proc():
        yield mirror.write(0, b"lazy", need=0)
        return env.now

    assert run_process(env, proc()) == 0.0
    env.run()  # let the background writes finish
    for disk in disks:
        assert disk.read_raw(0, 1)[:4] == b"lazy"


def test_mirror_write_need_one_faster_than_all():
    """With one busy replica, waiting for 1 of 2 writes must complete
    before waiting for 2 of 2 would."""
    env = Environment()
    mirror, disks = make_mirror(env)

    def hog():
        yield disks[1].read(0, 4096)  # keep replica 1 busy

    times = {}

    def writer():
        yield env.timeout(1e-9)  # let the hog enqueue first
        yield mirror.write(0, b"quick", need=1)
        times["one"] = env.now

    env.process(hog())
    env.process(writer())
    env.run()
    assert times["one"] < env.now  # full run includes the slow replica


def test_mirror_read_uses_primary():
    env = Environment()
    mirror, disks = make_mirror(env)
    disks[0].write_raw(7, b"primary data")
    disks[1].write_raw(7, b"replica data")

    def proc():
        data = yield mirror.read(7, 1)
        return data[:12]

    assert run_process(env, proc()) == b"primary data"


def test_mirror_failover_on_primary_death():
    env = Environment()
    mirror, disks = make_mirror(env)
    disks[0].write_raw(7, b"same bytes!")
    disks[1].write_raw(7, b"same bytes!")
    disks[0].fail("primary dead")
    assert mirror.primary is disks[1]

    def proc():
        data = yield mirror.read(7, 1)
        return data[:11]

    assert run_process(env, proc()) == b"same bytes!"


def test_mirror_read_with_failover_mid_flight():
    env = Environment()
    mirror, disks = make_mirror(env)
    for d in disks:
        d.write_raw(0, b"survives")

    def killer():
        yield env.timeout(1e-6)
        disks[0].fail("mid-read")

    def proc():
        data = yield env.process(mirror.read_with_failover(0, 2048))
        return data[:8]

    env.process(killer())
    assert run_process(env, proc()) == b"survives"


def test_mirror_all_dead_raises_server_down():
    env = Environment()
    mirror, disks = make_mirror(env)
    for d in disks:
        d.fail("gone")
    with pytest.raises(ServerDownError):
        mirror.primary

    def proc():
        try:
            yield mirror.write(0, b"x")
        except ServerDownError:
            return "down"

    assert run_process(env, proc()) == "down"


def test_mirror_write_skips_dead_replica():
    env = Environment()
    mirror, disks = make_mirror(env)
    disks[1].fail("gone")

    def proc():
        yield mirror.write(0, b"solo")

    run_process(env, proc())
    assert disks[0].read_raw(0, 1)[:4] == b"solo"
    assert mirror.replica_count == 1


def test_recovery_copies_whole_disk():
    env = Environment()
    mirror, disks = make_mirror(env)
    disks[0].write_raw(0, b"block zero")
    disks[0].write_raw(500, b"block five hundred")
    disks[1].fail("to be recovered")

    def proc():
        blocks = yield env.process(mirror.recover(disks[1]))
        return blocks

    blocks = run_process(env, proc())
    assert blocks == disks[0].total_blocks
    assert disks[1].read_raw(0, 1)[:10] == b"block zero"
    assert disks[1].read_raw(500, 1)[:18] == b"block five hundred"
    assert not disks[1].failed
    assert env.now > 0  # recovery charged simulated time


def test_recovery_from_self_rejected():
    env = Environment()
    mirror, disks = make_mirror(env)
    disks[1].fail("x")
    gen = mirror.recover(disks[0])
    with pytest.raises(ValueError):
        # primary is disks[0] only after disks[... wait, disks[0] alive
        run_process(env, gen)


# ------------------------------------------------------- fault injection


def test_fault_injector_fail_at():
    env = Environment()
    disk = make_disk(env)
    FaultInjector(env).fail_at(disk, when=0.5)
    env.run(until=0.4)
    assert not disk.failed
    env.run(until=0.6)
    assert disk.failed


def test_fault_injector_rejects_past_time():
    env = Environment()
    disk = make_disk(env)
    env.run(until=1.0)
    with pytest.raises(ValueError):
        FaultInjector(env).fail_at(disk, when=0.5)


def test_fault_injector_fail_after_writes():
    env = Environment()
    disk = make_disk(env)
    FaultInjector(env).fail_after_writes(disk, writes=2)
    outcomes = []

    def writer():
        for i in range(4):
            try:
                yield disk.write(i * 10, b"data")
                outcomes.append("ok")
            except DiskIOError:
                outcomes.append("failed")

    env.process(writer())
    env.run()
    assert outcomes[:2] == ["ok", "ok"]
    assert "failed" in outcomes[2:]
