"""Model-based tests for the directory server and the FFS substrate,
mirroring tests/test_model_based.py's approach for the Bullet server."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.client import LocalBulletStub
from repro.directory import DirectoryServer
from repro.disk import VirtualDisk
from repro.errors import ExistsError, NoSpaceError, NotFoundError
from repro.modelcheck import RefDirectory
from repro.nfs import FFS, BufferCache, MODE_FILE
from repro.sim import Environment, run_process
from repro.units import KB

from conftest import SMALL_DISK, make_bullet, small_testbed


# ------------------------------------------------------------- directory


dir_ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "replace", "remove", "lookup", "list"]),
        st.integers(min_value=0, max_value=7),   # name index
        st.integers(min_value=0, max_value=5),   # file index
    ),
    max_size=40,
)


@given(script=dir_ops)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_directory_matches_dict_model(script):
    env = Environment()
    bullet = make_bullet(env, testbed=small_testbed(inode_count=2048))
    dirs = DirectoryServer(env, VirtualDisk(env, SMALL_DISK, name="dd"),
                           LocalBulletStub(bullet), small_testbed(),
                           max_directories=8)
    dirs.format()
    env.run(until=env.process(dirs.boot()))
    root = run_process(env, dirs.create_directory())
    files = [run_process(env, bullet.create(f"f{i}".encode(), 1))
             for i in range(6)]
    model = RefDirectory()

    for op, name_index, file_index in script:
        name = f"n{name_index}"
        cap = files[file_index]
        if op == "append":
            if not model.append(name, cap):
                with pytest.raises(ExistsError):
                    run_process(env, dirs.append(root, name, cap))
            else:
                run_process(env, dirs.append(root, name, cap))
        elif op == "replace":
            displaced = model.replace(name, cap)
            if displaced is not None:
                old = run_process(env, dirs.replace(root, name, cap))
                assert old == displaced
            else:
                with pytest.raises(NotFoundError):
                    run_process(env, dirs.replace(root, name, cap))
        elif op == "remove":
            removed_cap = model.remove(name)
            if removed_cap is not None:
                removed = run_process(env, dirs.remove_entry(root, name))
                assert removed == removed_cap
            else:
                with pytest.raises(NotFoundError):
                    run_process(env, dirs.remove_entry(root, name))
        elif op == "lookup":
            expected = model.lookup(name)
            if expected is not None:
                assert run_process(env, dirs.lookup(root, name)) == expected
            else:
                with pytest.raises(NotFoundError):
                    run_process(env, dirs.lookup(root, name))
        else:
            assert run_process(env, dirs.list_names(root)) == model.names()

    # Reboot the directory server: the model must survive exactly.
    dirs.crash()
    reborn = DirectoryServer(env, dirs.disk, LocalBulletStub(bullet),
                             small_testbed(), name="directory",
                             max_directories=8)
    env.run(until=env.process(reborn.boot()))
    assert run_process(env, reborn.list_names(root)) == model.names()
    for name in model.names():
        assert run_process(env, reborn.lookup(root, name)) == model.lookup(name)


# -------------------------------------------------------------------- FFS


ffs_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "read"]),
        st.integers(min_value=0, max_value=40 * KB),   # offset
        st.integers(min_value=1, max_value=12 * KB),   # length
        st.integers(min_value=0, max_value=255),       # fill byte
    ),
    max_size=25,
)


@given(script=ffs_ops)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ffs_file_matches_bytearray_model(script):
    """Random offset writes and reads against one FFS file vs a plain
    bytearray — exercises partial-block read/modify/write, holes, and
    indirect-block paths."""
    env = Environment()
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 256 * KB, 8192)
    fs = FFS(env, disk, cache, ninodes=16)
    fs.format()
    run_process(env, fs.mount())
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    model = bytearray()

    for op, offset, length, fill in script:
        if op == "write":
            data = bytes([fill]) * length
            run_process(env, fs.write(inum, offset, data))
            if offset + length > len(model):
                model.extend(bytes(offset + length - len(model)))
            model[offset:offset + length] = data
        else:
            got = run_process(env, fs.read(inum, offset, length))
            expected = bytes(model[offset:offset + length])
            assert got == expected

    # Full-file comparison, then after a remount (durability).
    inode = run_process(env, fs.inode_read(inum))
    assert inode.size == len(model)
    assert run_process(env, fs.read(inum, 0, len(model) + 1)) == bytes(model)
    run_process(env, cache.sync())
    fs2 = FFS(env, disk, BufferCache(env, disk, 256 * KB, 8192), ninodes=16)
    run_process(env, fs2.mount())
    assert run_process(env, fs2.read(inum, 0, len(model) + 1)) == bytes(model)


def test_ffs_double_indirect_file(env):
    """A file beyond the single-indirect span (12 + 1024 blocks of 8 KB
    with our pointer size => ~8.1 MB using a small ppb? No: ppb = 2048,
    single covers 16.09 MB) — force the double-indirect path with a
    write at a high offset into a sparse file."""
    disk = VirtualDisk(env, SMALL_DISK, name="d")
    cache = BufferCache(env, disk, 512 * KB, 8192)
    fs = FFS(env, disk, cache, ninodes=16)
    fs.format()
    run_process(env, fs.mount())
    inum, _ = run_process(env, fs.alloc_inode(MODE_FILE))
    # File-block index beyond NDIRECT + ptrs_per_block = 12 + 2048.
    offset = (12 + 2048 + 5) * 8192
    run_process(env, fs.write(inum, offset, b"deep data"))
    inode = run_process(env, fs.inode_read(inum))
    assert inode.dindirect != 0
    assert run_process(env, fs.read(inum, offset, 9)) == b"deep data"
    # The hole before it reads as zeros.
    assert run_process(env, fs.read(inum, 0, 16)) == bytes(16)
    # Remove frees everything, including both indirect levels.
    free_before_file = fs.free_bytes
    run_process(env, fs.remove(inum))
    assert fs.free_bytes > free_before_file


def test_three_way_mirror_p_factor_three(env):
    """A Bullet server over three replicas honours P-FACTOR 3 and
    survives two disk failures."""
    from repro.capability import Capability
    from conftest import make_bullet

    bullet = make_bullet(env, n_disks=3,
                         testbed=small_testbed(default_p_factor=3))
    cap = run_process(env, bullet.create(b"thrice", 3))
    for disk in bullet.mirror.disks:
        inode = bullet.table.get(cap.object)
        assert disk.read_raw(inode.start_block, 1)[:6] == b"thrice"
    bullet.mirror.disks[0].fail("one")
    bullet.mirror.disks[1].fail("two")
    bullet.evict(cap.object)
    assert run_process(env, bullet.read(cap)) == b"thrice"
