"""Integration tests for the Bullet server: the whole create/read/
size/delete/modify lifecycle, P-FACTOR semantics, caching, crash
recovery, and consistency checking."""

import pytest

from repro.capability import (
    ALL_RIGHTS,
    Capability,
    RIGHT_DELETE,
    RIGHT_MODIFY,
    RIGHT_READ,
    restrict,
)
from repro.core import BulletServer, scan_volume
from repro.errors import (
    BadRequestError,
    CapabilityError,
    ConsistencyError,
    FileTooBigError,
    NoSpaceError,
    NotFoundError,
    RightsError,
    ServerDownError,
)
from repro.sim import Environment, run_process
from repro.units import KB, MB

from conftest import make_bullet, small_testbed


def call(env, gen):
    """Run one server-process call to completion."""
    return run_process(env, gen)


# ------------------------------------------------------------ lifecycle


def test_create_returns_owner_capability(env, bullet):
    cap = call(env, bullet.create(b"hello bullet", p_factor=2))
    assert cap.port == bullet.port
    assert cap.rights == ALL_RIGHTS
    assert cap.object >= 1


def test_create_then_read_roundtrip(env, bullet):
    payload = bytes(range(256)) * 37
    cap = call(env, bullet.create(payload, p_factor=2))
    assert call(env, bullet.read(cap)) == payload


def test_size_reports_byte_size(env, bullet):
    cap = call(env, bullet.create(b"12345", p_factor=1))
    assert call(env, bullet.size(cap)) == 5


def test_empty_file(env, bullet):
    cap = call(env, bullet.create(b"", p_factor=2))
    assert call(env, bullet.size(cap)) == 0
    assert call(env, bullet.read(cap)) == b""
    call(env, bullet.delete(cap))


def test_delete_removes_file(env, bullet):
    cap = call(env, bullet.create(b"doomed", p_factor=2))
    call(env, bullet.delete(cap))
    with pytest.raises(NotFoundError):
        call(env, bullet.read(cap))


def test_delete_frees_disk_space(env, bullet):
    before = bullet.disk_free.free_units
    cap = call(env, bullet.create(bytes(10 * KB), p_factor=2))
    assert bullet.disk_free.free_units < before
    call(env, bullet.delete(cap))
    assert bullet.disk_free.free_units == before


def test_files_are_immutable_reads_stable(env, bullet):
    cap = call(env, bullet.create(b"version 1", p_factor=2))
    first = call(env, bullet.read(cap))
    second = call(env, bullet.read(cap))
    assert first == second == b"version 1"


def test_many_files_distinct(env, bullet):
    caps = [call(env, bullet.create(f"file {i}".encode(), p_factor=1))
            for i in range(20)]
    assert len({c.object for c in caps}) == 20
    for i, cap in enumerate(caps):
        assert call(env, bullet.read(cap)) == f"file {i}".encode()


def test_write_through_data_on_both_disks(env, bullet):
    payload = b"replicated payload" * 100
    cap = call(env, bullet.create(payload, p_factor=2))
    inode = bullet.table.get(cap.object)
    for disk in bullet.mirror.disks:
        raw = disk.read_raw(inode.start_block, bullet.layout.blocks_for(inode.size))
        assert raw[: len(payload)] == payload


# -------------------------------------------------------------- security


def test_read_requires_read_right(env, bullet):
    owner = call(env, bullet.create(b"secret", p_factor=1))
    delete_only = restrict(owner, RIGHT_DELETE)
    with pytest.raises(RightsError):
        call(env, bullet.read(delete_only))


def test_delete_requires_delete_right(env, bullet):
    owner = call(env, bullet.create(b"data", p_factor=1))
    reader = restrict(owner, RIGHT_READ)
    with pytest.raises(RightsError):
        call(env, bullet.delete(reader))
    assert call(env, bullet.read(reader)) == b"data"


def test_forged_capability_rejected(env, bullet):
    owner = call(env, bullet.create(b"data", p_factor=1))
    forged = Capability(port=owner.port, object=owner.object,
                        rights=ALL_RIGHTS, check=(owner.check ^ 1))
    with pytest.raises(CapabilityError):
        call(env, bullet.read(forged))


def test_unknown_object_not_found(env, bullet):
    bogus = Capability(port=bullet.port, object=99, rights=ALL_RIGHTS, check=1)
    with pytest.raises(NotFoundError):
        call(env, bullet.read(bogus))
    out_of_range = Capability(port=bullet.port, object=9999,
                              rights=ALL_RIGHTS, check=1)
    with pytest.raises(NotFoundError):
        call(env, bullet.read(out_of_range))


def test_capability_cache_speeds_up_repeat_checks(env, bullet):
    cap = call(env, bullet.create(b"cached cap", p_factor=1))
    call(env, bullet.read(cap))
    call(env, bullet.read(cap))
    assert bullet.stats.cap_check_cache_hits >= 1


def test_deleted_object_capability_not_reusable(env, bullet):
    """After delete, a new file may reuse the inode number; the old
    capability must not open the new file (fresh random secret)."""
    old = call(env, bullet.create(b"old", p_factor=1))
    call(env, bullet.delete(old))
    new = call(env, bullet.create(b"new", p_factor=1))
    assert new.object == old.object  # inode number reused
    with pytest.raises((CapabilityError, NotFoundError)):
        call(env, bullet.read(old))


def test_server_restrict(env, bullet):
    owner = call(env, bullet.create(b"x", p_factor=1))
    both = restrict(owner, RIGHT_READ | RIGHT_DELETE)
    reader = call(env, bullet.restrict_cap(both, RIGHT_READ))
    assert reader.rights == RIGHT_READ
    assert call(env, bullet.read(reader)) == b"x"


# -------------------------------------------------------------- P-FACTOR


def test_p_factor_zero_returns_before_disk_write(env, bullet):
    """P-FACTOR 0 replies after the cache copy; the disks become
    consistent shortly after."""
    writes_before = [d.stats.writes for d in bullet.mirror.disks]
    cap = call(env, bullet.create(bytes(64 * KB), p_factor=0))
    # The reply arrived before any disk write completed.
    assert [d.stats.writes for d in bullet.mirror.disks] == writes_before
    env.run()  # drain background writes
    inode = bullet.table.get(cap.object)
    raw = bullet.mirror.disks[0].read_raw(
        inode.start_block, bullet.layout.blocks_for(inode.size))
    assert raw[: 64 * KB] == bytes(64 * KB)


def test_p_factor_ordering(env, bullet):
    """Higher paranoia can only be slower."""
    def timed(p):
        t0 = env.now
        call(env, bullet.create(bytes(32 * KB), p_factor=p))
        env.run()  # drain background writes between measurements
        return env.now - t0

    t0_, t1, t2 = timed(0), timed(1), timed(2)
    assert t0_ < t1 <= t2


def test_p_factor_exceeding_disks_rejected(env, bullet):
    with pytest.raises(BadRequestError):
        call(env, bullet.create(b"x", p_factor=3))
    with pytest.raises(BadRequestError):
        call(env, bullet.create(b"x", p_factor=-1))


def test_p_factor_exceeding_live_disks(env, bullet):
    bullet.mirror.disks[1].fail("gone")
    with pytest.raises(ServerDownError):
        call(env, bullet.create(b"x", p_factor=2))
    # p=1 still works on the surviving disk.
    cap = call(env, bullet.create(b"x", p_factor=1))
    assert call(env, bullet.read(cap)) == b"x"


def test_p_factor_zero_file_lost_on_immediate_crash(env):
    """The paper's stated risk: with P-FACTOR 0, 'if the server crashes
    shortly afterwards the file may be lost'."""
    bullet = make_bullet(env)
    cap = call(env, bullet.create(b"volatile!", p_factor=0))
    # Power-cut both disks before the background writes land.
    for disk in bullet.mirror.disks:
        disk.fail("power cut")
    env.run()
    for disk in bullet.mirror.disks:
        disk.repair()
    rebooted = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet2")
    env.run(until=env.process(rebooted.boot()))
    inode = rebooted.table.get(cap.object)
    assert inode.free  # the file never reached any disk


def test_p_factor_one_file_survives_crash(env):
    bullet = make_bullet(env)
    cap = call(env, bullet.create(b"durable!", p_factor=1))
    bullet.crash()
    rebooted = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet2")
    env.run(until=env.process(rebooted.boot()))
    data = call(env, rebooted.read(
        Capability(port=rebooted.port, object=cap.object,
                   rights=cap.rights, check=cap.check)))
    assert data == b"durable!"


# ---------------------------------------------------------------- caching


def test_read_hits_cache_after_create(env, bullet):
    cap = call(env, bullet.create(b"warm", p_factor=2))
    disk_reads_before = bullet.mirror.disks[0].stats.reads
    call(env, bullet.read(cap))
    assert bullet.mirror.disks[0].stats.reads == disk_reads_before
    assert bullet.cache.stats.hits >= 1


def test_cold_read_loads_from_disk(env):
    bullet = make_bullet(env)
    cap = call(env, bullet.create(b"cold data", p_factor=2))
    bullet.crash()
    rebooted = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet2")
    env.run(until=env.process(rebooted.boot()))
    cap2 = Capability(port=rebooted.port, object=cap.object,
                      rights=cap.rights, check=cap.check)
    reads_before = rebooted.mirror.primary.stats.reads
    assert call(env, rebooted.read(cap2)) == b"cold data"
    assert rebooted.mirror.primary.stats.reads == reads_before + 1
    # Second read is served from the cache.
    assert call(env, rebooted.read(cap2)) == b"cold data"
    assert rebooted.mirror.primary.stats.reads == reads_before + 1


def test_cached_read_faster_than_cold_read(env):
    bullet = make_bullet(env)
    cap = call(env, bullet.create(bytes(256 * KB), p_factor=2))
    bullet.evict(cap.object)

    t0 = env.now
    call(env, bullet.read(cap))
    cold = env.now - t0

    t0 = env.now
    call(env, bullet.read(cap))
    warm = env.now - t0
    assert warm < cold / 3


def test_cache_eviction_keeps_serving(env):
    """Fill the cache several times over; every file stays readable."""
    bullet = make_bullet(env)  # 2 MB cache
    caps = [call(env, bullet.create(bytes([i]) * (512 * KB), p_factor=1))
            for i in range(8)]
    assert bullet.cache.stats.evictions > 0
    for i, cap in enumerate(caps):
        assert call(env, bullet.read(cap)) == bytes([i]) * (512 * KB)
    bullet.cache.check_invariants()


def test_inode_index_tracks_cache_state(env, bullet):
    cap = call(env, bullet.create(b"indexed", p_factor=1))
    inode = bullet.table.get(cap.object)
    assert inode.index != 0
    assert bullet.cache.get_slot(inode.index).inode_number == cap.object
    # A cache-filling create evicts it; on_evict must clear the index.
    call(env, bullet.create(bytes(2 * MB), p_factor=0))
    assert bullet.table.get(cap.object).index == 0
    assert bullet.cache.peek(cap.object) is None
    # A subsequent read reloads it from disk and restores the index.
    env.run()  # drain background writes first
    assert call(env, bullet.read(cap)) == b"indexed"
    assert bullet.table.get(cap.object).index != 0


def test_file_too_big_for_memory_rejected(env, bullet):
    with pytest.raises(FileTooBigError):
        call(env, bullet.create(bytes(3 * MB), p_factor=0))


# ----------------------------------------------------------------- modify


def test_modify_creates_new_version(env, bullet):
    v1 = call(env, bullet.create(b"the quick brown fox", p_factor=1))
    v2 = call(env, bullet.modify(v1, offset=4, delete_bytes=5,
                                 insert_data=b"slow", p_factor=1))
    assert call(env, bullet.read(v2)) == b"the slow brown fox"
    # Immutability: v1 is untouched.
    assert call(env, bullet.read(v1)) == b"the quick brown fox"
    assert v1.object != v2.object


def test_modify_append(env, bullet):
    v1 = call(env, bullet.create(b"log line 1\n", p_factor=1))
    v2 = call(env, bullet.modify(v1, offset=11, delete_bytes=0,
                                 insert_data=b"log line 2\n", p_factor=1))
    assert call(env, bullet.read(v2)) == b"log line 1\nlog line 2\n"


def test_modify_pure_delete(env, bullet):
    v1 = call(env, bullet.create(b"abcdef", p_factor=1))
    v2 = call(env, bullet.modify(v1, offset=2, delete_bytes=2,
                                 insert_data=b"", p_factor=1))
    assert call(env, bullet.read(v2)) == b"abef"


def test_modify_range_validation(env, bullet):
    v1 = call(env, bullet.create(b"short", p_factor=1))
    with pytest.raises(BadRequestError):
        call(env, bullet.modify(v1, offset=4, delete_bytes=5, insert_data=b""))
    with pytest.raises(BadRequestError):
        call(env, bullet.modify(v1, offset=-1, delete_bytes=0, insert_data=b""))


def test_modify_requires_modify_right(env, bullet):
    v1 = call(env, bullet.create(b"data", p_factor=1))
    reader = restrict(v1, RIGHT_READ)
    with pytest.raises(RightsError):
        call(env, bullet.modify(reader, offset=0, delete_bytes=0,
                                insert_data=b"x"))


# ------------------------------------------------------- space exhaustion


def test_disk_exhaustion_raises_no_space(env):
    bullet = make_bullet(env)
    data_bytes = bullet.disk_free.free_units * bullet.layout.block_size
    chunk = 1 * MB
    caps = []
    with pytest.raises(NoSpaceError):
        for _ in range(data_bytes // chunk + 2):
            caps.append(call(env, bullet.create(bytes(chunk), p_factor=0)))
    # Failure must not corrupt accounting: delete everything, space returns.
    for cap in caps:
        call(env, bullet.delete(cap))
    assert bullet.disk_free.free_units == data_bytes // bullet.layout.block_size
    bullet.disk_free.check_invariants()


def test_inode_exhaustion(env):
    # 32 inodes fill exactly one inode-table block (512 / 16); inode 0 is
    # the descriptor, so 31 files fit.
    bullet = make_bullet(env, testbed=small_testbed(inode_count=32))
    for i in range(31):
        call(env, bullet.create(f"{i}".encode(), p_factor=0))
    with pytest.raises(NoSpaceError):
        call(env, bullet.create(b"one too many", p_factor=0))


# -------------------------------------------------------------- recovery


def test_reboot_preserves_files_and_free_space(env):
    bullet = make_bullet(env)
    caps = [call(env, bullet.create(f"persistent {i}".encode() * 50, p_factor=2))
            for i in range(5)]
    call(env, bullet.delete(caps[2]))
    free_before = bullet.disk_free.free_units
    bullet.crash()
    rebooted = BulletServer(env, bullet.mirror, bullet.testbed, name="bullet2")
    report = env.run(until=env.process(rebooted.boot()))
    assert report.live_files == 4
    assert rebooted.disk_free.free_units == free_before
    for i, cap in enumerate(caps):
        if i == 2:
            continue
        cap2 = Capability(port=rebooted.port, object=cap.object,
                          rights=cap.rights, check=cap.check)
        assert call(env, rebooted.read(cap2)) == f"persistent {i}".encode() * 50


def test_scan_detects_overlapping_files(env, bullet):
    call(env, bullet.create(bytes(4 * KB), p_factor=1))
    call(env, bullet.create(bytes(4 * KB), p_factor=1))
    # Corrupt: make inode 2 overlap inode 1's extent.
    bullet.table.get(2).start_block = bullet.table.get(1).start_block
    with pytest.raises(ConsistencyError):
        scan_volume(bullet.table, bullet.layout)


def test_scan_repair_quarantines_bad_inode(env, bullet):
    call(env, bullet.create(bytes(4 * KB), p_factor=1))
    call(env, bullet.create(bytes(4 * KB), p_factor=1))
    bullet.table.get(2).start_block = bullet.table.get(1).start_block
    freelist, report = scan_volume(bullet.table, bullet.layout, repair=True)
    assert report.live_files == 1
    assert len(report.quarantined) == 1
    assert bullet.table.get(2).free
    freelist.check_invariants()


def test_scan_detects_extent_outside_data_area(env, bullet):
    call(env, bullet.create(bytes(4 * KB), p_factor=1))
    bullet.table.get(1).start_block = 0  # inside the inode table!
    with pytest.raises(ConsistencyError):
        scan_volume(bullet.table, bullet.layout)


def test_disk_failover_during_reads(env):
    """Primary dies mid-workload; reads continue from the replica."""
    bullet = make_bullet(env)
    cap = call(env, bullet.create(bytes(512 * KB), p_factor=2))
    bullet.cache.remove(cap.object)
    bullet.table.get(cap.object).index = 0
    bullet.mirror.disks[0].fail("primary died")
    assert call(env, bullet.read(cap)) == bytes(512 * KB)


def test_status_snapshot(env, bullet):
    cap = call(env, bullet.create(b"x" * 100, p_factor=1))
    call(env, bullet.read(cap))
    status = bullet.status()
    assert status["files"] == 1
    assert status["creates"] == 1
    assert status["reads"] == 1
    assert status["replicas_live"] == 2
    assert status["bytes_created"] == 100


def test_render_layout_shows_files_and_holes(env, bullet):
    call(env, bullet.create(bytes(8 * KB), p_factor=1))
    art = bullet.render_layout()
    assert "Disk Descriptor" in art
    assert "Inode Table" in art
    assert "inode 1" in art
    assert "free" in art


def test_operations_require_boot(env):
    testbed = small_testbed()
    from repro.disk import MirroredDiskSet, VirtualDisk
    disks = [VirtualDisk(env, testbed.disk, name="x")]
    server = BulletServer(env, MirroredDiskSet(env, disks), testbed)
    with pytest.raises(BadRequestError):
        call(env, server.create(b"x", p_factor=0))
