"""Tests for the §5 client caching plane: the shared WorkstationCache,
local capability verification, and the CachingBulletClient regressions
fixed in the same PR (re-admission double-counting, missing
restrict/stat delegation, SIZE bypassing recency/counters, and DELETE
invalidating before the server confirmed)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capability import (
    ALL_RIGHTS,
    Capability,
    RIGHT_DELETE,
    RIGHT_READ,
    mint_owner,
    restrict,
)
from repro.client import (
    BulletClient,
    CachingBulletClient,
    WorkstationCache,
)
from repro.errors import (
    CapabilityError,
    ConsistencyError,
    NotFoundError,
    RightsError,
)
from repro.faults import FaultController, FaultPlan
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, SeededStream, Tracer, run_process
from repro.client.retry import RetryPolicy
from repro.units import KB

from conftest import make_bullet


PORT = 0xB17E


def owner(obj: int, secret: int = 0x1234) -> Capability:
    return mint_owner(PORT, obj, secret * (obj + 1))


@pytest.fixture
def rpc_rig(env):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    client = BulletClient(env, rpc, bullet.port)
    return bullet, client


# ----------------------------------------------------- cache unit tests


def test_admit_and_lookup_roundtrip():
    cache = WorkstationCache(64 * KB)
    cap = owner(1)
    assert cache.admit(cap, b"bytes")
    result = cache.lookup(cap, RIGHT_READ)
    assert result.hit and result.data == b"bytes"
    assert cache.stats.hits == 1 and cache.stats.lookups == 1
    assert cache.stats.bytes_saved == 5


def test_readmission_does_not_double_count():
    """Regression: a concurrent sharer re-admitting a resident file used
    to bump the byte accounting again, inflating cached_bytes until
    phantom evictions thrashed the cache."""
    cache = WorkstationCache(64 * KB)
    cap = owner(1)
    data = b"x" * KB
    for _ in range(5):
        assert cache.admit(cap, data)
    assert cache.cached_bytes == KB
    assert cache.entry_count == 1
    assert cache.audit() == KB


def test_readmission_merges_verification_state():
    cache = WorkstationCache(64 * KB)
    own = owner(1)
    reader = restrict(own, RIGHT_READ)
    # First sharer fetched under the restricted cap: no secret known.
    assert cache.admit(reader, b"data")
    assert not cache.lookup(own, RIGHT_READ).hit  # owner pair unknown
    # Second sharer re-admits under the owner cap: secret learned, so
    # any rights subset now verifies locally.
    assert cache.admit(own, b"data")
    other = restrict(own, RIGHT_READ | RIGHT_DELETE)
    assert cache.lookup(other, RIGHT_READ).hit
    assert cache.cached_bytes == 4


def test_reincarnated_object_replaces_entry():
    cache = WorkstationCache(64 * KB)
    stale = owner(1, secret=0x1111)
    fresh = owner(1, secret=0x2222)
    assert cache.admit(stale, b"old bytes")
    assert cache.admit(fresh, b"new")
    assert cache.lookup(fresh, RIGHT_READ).data == b"new"
    # The stale capability no longer verifies against the new secret.
    assert not cache.lookup(stale, RIGHT_READ).hit
    assert cache.audit() == 3


def test_lru_eviction_order_and_budget():
    cache = WorkstationCache(8 * KB)
    a, b, c = owner(1), owner(2), owner(3)
    assert cache.admit(a, b"a" * (4 * KB))
    assert cache.admit(b, b"b" * (4 * KB))
    cache.lookup(a, RIGHT_READ)  # refresh a: b becomes LRU
    assert cache.admit(c, b"c" * (4 * KB))
    assert a in cache and c in cache and b not in cache
    assert cache.stats.evictions == 1
    assert cache.audit() == 8 * KB


def test_oversized_file_rejected():
    cache = WorkstationCache(1 * KB)
    assert not cache.admit(owner(1), b"z" * (2 * KB))
    assert cache.cached_bytes == 0


def test_pin_blocks_eviction_and_defers_invalidation():
    cache = WorkstationCache(8 * KB)
    a, b = owner(1), owner(2)
    assert cache.admit(a, b"a" * (4 * KB))
    cache.pin(a)
    assert cache.admit(b, b"b" * (4 * KB))
    # a is LRU but pinned: admitting c must evict b instead.
    assert cache.admit(owner(3), b"c" * (4 * KB))
    assert a in cache and b not in cache
    # Invalidating the pinned entry defers the drop: it stops serving
    # hits at once, but its bytes are held until the pin releases.
    assert cache.invalidate(a)
    assert a not in cache
    assert not cache.lookup(a, RIGHT_READ).hit
    assert cache.audit() == 8 * KB
    cache.unpin(a)
    assert cache.audit() == 4 * KB
    assert not cache.invalidate(a)


def test_fully_pinned_cache_rejects_admission():
    cache = WorkstationCache(4 * KB)
    a = owner(1)
    assert cache.admit(a, b"a" * (4 * KB))
    cache.pin(a)
    assert not cache.admit(owner(2), b"b" * KB)
    assert cache.stats.evictions == 0
    cache.unpin(a)
    assert cache.admit(owner(2), b"b" * KB)


def test_pin_of_absent_entry_and_unbalanced_unpin_raise():
    cache = WorkstationCache(4 * KB)
    with pytest.raises(NotFoundError):
        cache.pin(owner(9))
    cache.admit(owner(1), b"x")
    with pytest.raises(ConsistencyError):
        cache.unpin(owner(1))


def test_bytes_gauge_tracks_usage():
    cache = WorkstationCache(8 * KB, name="ws-gauge")
    gauge = cache.metrics.gauge("repro_client_cache_bytes",
                                workstation="ws-gauge")
    cache.admit(owner(1), b"a" * KB)
    assert gauge.value == KB
    cache.invalidate(owner(1))
    assert gauge.value == 0


def test_local_verification_from_owner_secret():
    """Admitting under the owner capability teaches the cache the
    object's secret; a never-seen restricted capability then verifies
    locally (one OWF derivation), and a forged one misses."""
    cache = WorkstationCache(64 * KB, cpu=CpuProfile())
    own = owner(1)
    assert cache.admit(own, b"data")
    reader = restrict(own, RIGHT_READ)
    first = cache.lookup(reader, RIGHT_READ)
    assert first.hit
    assert first.verify_cost == CpuProfile().capability_check
    assert cache.stats.local_verifies == 1
    # The pair is memoized: the second lookup is free.
    second = cache.lookup(reader, RIGHT_READ)
    assert second.hit and second.verify_cost == 0.0
    assert cache.stats.local_verifies == 1
    forged = Capability(port=PORT, object=1, rights=RIGHT_READ,
                        check=(reader.check ^ 1))
    assert not cache.lookup(forged, RIGHT_READ).hit
    assert cache.stats.misses == 1


def test_genuine_capability_without_rights_is_denied_locally():
    cache = WorkstationCache(64 * KB)
    own = owner(1)
    cache.admit(own, b"data")
    deleter = restrict(own, RIGHT_DELETE)
    result = cache.lookup(deleter, RIGHT_READ)
    assert result.denied and result.data is None
    # Denied is an authoritative local answer: a hit, an RPC avoided.
    assert cache.stats.hits == 1 and cache.stats.rpcs_avoided == 1


def test_restricted_only_admission_cannot_verify_other_pairs():
    """Without the owner capability the cache holds no secret: only the
    exact (rights, check) pair that fetched the bytes hits; the server
    stays the authority for everything else."""
    cache = WorkstationCache(64 * KB)
    own = owner(1)
    reader = restrict(own, RIGHT_READ)
    cache.admit(reader, b"data")
    assert cache.lookup(reader, RIGHT_READ).hit
    other = restrict(own, RIGHT_READ | RIGHT_DELETE)
    assert not cache.lookup(other, RIGHT_READ).hit
    assert cache.stats.local_verifies == 0


def test_rejects_bad_capacity():
    for bad in (0, -1, None):
        with pytest.raises(ValueError):
            WorkstationCache(bad)


# --------------------------------------- the accounting property (A5)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["admit", "lookup", "invalidate", "pin", "unpin"]),
    st.integers(min_value=0, max_value=5),     # object number
    st.integers(min_value=1, max_value=6),     # size in KB
), max_size=40))
def test_accounting_invariant_under_random_interleavings(ops):
    """``cached_bytes == sum(len(entry))`` and never above the budget,
    under any admit/evict/pin/invalidate interleaving — the invariant
    the double-count bug violated — including the deferred drop of
    entries invalidated while pinned."""
    cache = WorkstationCache(8 * KB)
    pins: dict = {}
    dead: set = set()
    for kind, obj, size_kb in ops:
        cap = owner(obj)
        if kind == "admit":
            admitted = cache.admit(cap, bytes([obj]) * (size_kb * KB))
            if obj in dead:
                assert not admitted  # dead entries refuse re-admission
        elif kind == "lookup":
            result = cache.lookup(cap, RIGHT_READ)
            if obj in dead:
                assert not result.hit
        elif kind == "invalidate":
            invalidated = cache.invalidate(cap)
            if obj in dead:
                assert not invalidated  # already logically gone
            elif invalidated and pins.get(obj, 0):
                dead.add(obj)  # deferred: dropped at the last unpin
        elif kind == "pin":
            if cap in cache:
                cache.pin(cap)
                pins[obj] = pins.get(obj, 0) + 1
            else:
                with pytest.raises(NotFoundError):
                    cache.pin(cap)
        elif kind == "unpin":
            if pins.get(obj, 0):
                cache.unpin(cap)
                pins[obj] -= 1
                if pins[obj] == 0:
                    dead.discard(obj)
            else:
                with pytest.raises(ConsistencyError):
                    cache.unpin(cap)
        # A pinned entry can be neither evicted nor replaced, so the
        # model's pin counts stay in lockstep with the cache's.
        assert cache.audit() <= cache.capacity
    assert (cache.stats.hits + cache.stats.misses == cache.stats.lookups)


# ------------------------------------------- caching client, end to end


def test_shared_cache_across_sharers_avoids_server(env, rpc_rig):
    """Two client processes on one workstation share one cache: the
    second sharer's first read of a file the first sharer fetched is a
    hit — no network, no server."""
    bullet, client = rpc_rig
    shared = WorkstationCache(64 * KB, metrics=client.metrics,
                              cpu=CpuProfile())
    one = CachingBulletClient(client, cache=shared)
    two = CachingBulletClient(client, cache=shared)
    cap = run_process(env, one.create(b"shared bytes", 1))
    run_process(env, one.read(cap))
    reads = bullet.stats.reads
    assert run_process(env, two.read(cap)) == b"shared bytes"
    assert bullet.stats.reads == reads
    assert one.misses == 1 and two.hits == 1
    assert shared.stats.hits == 1 and shared.stats.misses == 1


def test_concurrent_sharer_miss_storm_accounts_once(env, rpc_rig):
    """N processes fault the same cold file through one shared cache at
    the same instant: every probe misses (nobody has admitted yet), the
    re-admissions merge, and the accounting ends exact."""
    bullet, client = rpc_rig
    shared = WorkstationCache(64 * KB, metrics=client.metrics)
    caching = CachingBulletClient(client, cache=shared)
    payload = b"storm" * 512
    cap = run_process(env, caching.create(payload, 1))
    got = []

    def sharer():
        data = yield from caching.read(cap)
        got.append(data)

    waits = [env.process(sharer()) for _ in range(6)]
    for wait in waits:
        env.run(until=wait)
    assert got == [payload] * 6
    assert shared.entry_count == 1
    assert shared.audit() == len(payload)
    assert shared.stats.hits + shared.stats.misses == shared.stats.lookups
    # And the file is now hot: one more read touches no server.
    reads = bullet.stats.reads
    run_process(env, caching.read(cap))
    assert bullet.stats.reads == reads


def test_restricted_read_hits_after_owner_admission(env, rpc_rig):
    """The §5 + §2.1 composition: fetch under the owner capability,
    restrict locally, then read under the restriction — the cache
    verifies the restricted check field against the owner's secret and
    serves from RAM. Zero server READs for the whole second step."""
    bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"restricted read", 1))
    run_process(env, caching.read(cap))
    reads = bullet.stats.reads
    restricts = bullet.stats.restricts
    reader = run_process(env, caching.restrict(cap, RIGHT_READ))
    assert reader.rights == RIGHT_READ
    assert run_process(env, caching.read(reader)) == b"restricted read"
    assert bullet.stats.reads == reads          # served locally
    assert bullet.stats.restricts == restricts  # restricted locally
    assert caching.cache.stats.rpcs_avoided >= 2


def test_restrict_of_restricted_cap_delegates_to_server(env, rpc_rig):
    """Regression: restrict() used to be missing from the caching
    wrapper entirely (AttributeError). A non-owner capability cannot be
    restricted locally, so the wrapper must delegate to the server."""
    bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"x", 1))
    both = run_process(env,
                       caching.restrict(cap, RIGHT_READ | RIGHT_DELETE))
    restricts = bullet.stats.restricts
    reader = run_process(env, caching.restrict(both, RIGHT_READ))
    assert reader.rights == RIGHT_READ
    assert bullet.stats.restricts == restricts + 1
    assert run_process(env, caching.read(reader)) == b"x"


def test_stat_delegates(env, rpc_rig):
    """Regression: stat() was also missing from the wrapper."""
    _bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"x", 1))
    status = run_process(env, caching.stat(cap))
    assert status["files"] == 1


def test_size_hit_refreshes_recency_and_counts(env, rpc_rig):
    """Regression: SIZE answered from the cache without touching the
    LRU order or the hit counters, so hot sized files aged straight to
    eviction while the stats claimed the cache was cold."""
    _bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=8 * KB)
    a = run_process(env, caching.create(b"a" * (4 * KB), 1))
    b = run_process(env, caching.create(b"b" * (4 * KB), 1))
    run_process(env, caching.read(a))
    run_process(env, caching.read(b))
    hits = caching.hits
    assert run_process(env, caching.size(a)) == 4 * KB
    assert caching.hits == hits + 1  # the counter regression
    c = run_process(env, caching.create(b"c" * (4 * KB), 1))
    run_process(env, caching.read(c))
    # The size() touch made `a` most-recent, so `b` was the victim.
    assert a in caching.cache and b not in caching.cache


def test_forged_capability_falls_through_to_server(env, rpc_rig):
    """A capability that fails local verification is a miss, and the
    server — the authority — rejects it; the cached entry survives."""
    bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"genuine", 1))
    run_process(env, caching.read(cap))
    forged = Capability(port=cap.port, object=cap.object,
                        rights=cap.rights, check=cap.check ^ 1)

    def attempt():
        try:
            yield from caching.read(forged)
        except CapabilityError:
            return "rejected"

    assert run_process(env, attempt()) == "rejected"
    assert forged not in caching.cache or cap in caching.cache
    assert run_process(env, caching.read(cap)) == b"genuine"


def test_rights_denial_is_local(env, rpc_rig):
    """A genuine capability lacking READ is refused on the workstation:
    RightsError without a single server round trip."""
    bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"no reading", 1))
    run_process(env, caching.read(cap))
    deleter = run_process(env, caching.restrict(cap, RIGHT_DELETE))
    reads = bullet.stats.reads
    errors = bullet.stats.errors

    def attempt():
        try:
            yield from caching.read(deleter)
        except RightsError:
            return "denied"

    assert run_process(env, attempt()) == "denied"
    assert bullet.stats.reads == reads
    assert bullet.stats.errors == errors  # the server never saw it


# ------------------------------------------------- DELETE invalidation


class _CountingCache(WorkstationCache):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.invalidations = 0

    def invalidate(self, cap):
        dropped = super().invalidate(cap)
        if dropped:
            self.invalidations += 1
        return dropped


def test_failed_delete_keeps_cached_entry(env, rpc_rig):
    """Regression: delete() used to invalidate before calling the
    server, so a DELETE refused for missing rights still evicted a
    perfectly valid immutable entry."""
    bullet, client = rpc_rig
    cache = _CountingCache(64 * KB, metrics=client.metrics)
    caching = CachingBulletClient(client, cache=cache)
    cap = run_process(env, caching.create(b"keep me", 1))
    run_process(env, caching.read(cap))
    reader = run_process(env, caching.restrict(cap, RIGHT_READ))

    def attempt():
        try:
            yield from caching.delete(reader)
        except RightsError:
            return "refused"

    assert run_process(env, attempt()) == "refused"
    assert cache.invalidations == 0
    assert cap in cache
    # Still a hit — no refetch needed after the failed delete.
    reads = bullet.stats.reads
    assert run_process(env, caching.read(cap)) == b"keep me"
    assert bullet.stats.reads == reads


def test_successful_delete_invalidates_exactly_once(env, rpc_rig):
    bullet, client = rpc_rig
    cache = _CountingCache(64 * KB, metrics=client.metrics)
    caching = CachingBulletClient(client, cache=cache)
    cap = run_process(env, caching.create(b"bye", 1))
    run_process(env, caching.read(cap))
    run_process(env, caching.delete(cap))
    assert cache.invalidations == 1
    assert cap not in cache
    with pytest.raises(NotFoundError):
        run_process(env, caching.read(cap))


def test_delete_retried_under_loss_invalidates_exactly_once(env):
    """DELETE under a lossy network: the retry layer re-sends the same
    txid, the server's reply cache dedupes execution, and the cache
    invalidation runs exactly once — after the confirmed success."""
    tracer = Tracer(env, categories={"retry"})
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    client = BulletClient(
        env, rpc, bullet.port, timeout=0.4,
        retry=RetryPolicy(max_attempts=8, base_delay=0.2, max_delay=1.0),
        retry_stream=SeededStream(11, "client-retry"), tracer=tracer,
    )
    cache = _CountingCache(64 * KB, metrics=client.metrics)
    caching = CachingBulletClient(client, cache=cache)
    cap = run_process(env, caching.create(b"lossy delete", 1))
    run_process(env, caching.read(cap))
    plan = FaultPlan().net_loss(at=env.now + 0.05, duration=2.0,
                                probability=0.6)
    ctrl = FaultController(env, plan, master_seed=11, tracer=tracer)
    ctrl.attach_ethernet("net", eth).start()

    def workload():
        yield env.timeout(0.1)  # into the loss window
        yield from caching.delete(cap)

    run_process(env, workload())
    assert client.retrier.retries >= 1   # the loss actually bit
    assert bullet.stats.deletes == 1     # txid dedupe: one execution
    assert cache.invalidations == 1      # and one invalidation
    assert cap not in cache


# --------------------------- trust: only proven capabilities register


def test_forged_owner_cannot_poison_cache_via_register():
    """Regression (review): register_verified() used to take the
    caller's word for an owner-shaped capability, overwriting the
    entry's secret and minting verified pairs from a forgery. It must
    refuse anything it cannot prove against its own evidence."""
    cache = WorkstationCache(64 * KB)
    own = owner(1)
    reader = restrict(own, RIGHT_READ)
    assert cache.admit(reader, b"data")  # secret unknown to the cache
    forged_owner = Capability(port=PORT, object=1, rights=ALL_RIGHTS,
                              check=own.check ^ 0xBAD)
    forged_reader = restrict(forged_owner, RIGHT_READ)
    cache.register_verified(forged_owner, forged_reader)
    # Neither forged capability hits — they miss through to the server —
    # and the genuine pair that admitted the entry still verifies.
    assert not cache.lookup(forged_owner, RIGHT_READ).hit
    assert not cache.lookup(forged_reader, RIGHT_READ).hit
    assert cache.lookup(reader, RIGHT_READ).hit


def test_register_verified_seeds_from_proven_owner():
    """The legitimate seeding path still works: an owner capability
    that admitted the entry registers its local restriction, so the
    later read is a known-pair hit with zero check-field work."""
    cache = WorkstationCache(64 * KB, cpu=CpuProfile())
    own = owner(1)
    assert cache.admit(own, b"data")
    derived = restrict(own, RIGHT_READ)
    cache.register_verified(own, derived)
    result = cache.lookup(derived, RIGHT_READ)
    assert result.hit and result.verify_cost == 0.0
    assert cache.stats.local_verifies == 0


def test_forged_owner_restrict_goes_to_server_and_fails(env, rpc_rig):
    """Regression (review): restrict() trusted any ALL_RIGHTS-shaped
    capability, derived a plausible-looking restriction locally, and
    poisoned the shared cache so forged owner and forged restricted
    capabilities were served file bytes from RAM. A forged owner
    capability must fall through to the server, which rejects it, and
    the cache's verification state must survive intact."""
    bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"genuine", 1))
    run_process(env, caching.read(cap))
    genuine_reader = run_process(env, caching.restrict(cap, RIGHT_READ))
    forged = Capability(port=cap.port, object=cap.object,
                        rights=ALL_RIGHTS, check=cap.check ^ 1)

    def attempt(op):
        try:
            yield from op
        except CapabilityError:
            return "rejected"

    assert run_process(env,
                       attempt(caching.restrict(forged, RIGHT_READ))) \
        == "rejected"
    # Genuine capabilities still verify locally (no refetch)...
    reads = bullet.stats.reads
    assert run_process(env, caching.read(genuine_reader)) == b"genuine"
    assert bullet.stats.reads == reads
    # ...and a restriction derived from the forgery misses through to
    # the server, which rejects it too.
    forged_reader = restrict(forged, RIGHT_READ)
    assert run_process(env, attempt(caching.read(forged_reader))) \
        == "rejected"


def test_restrict_of_uncached_owner_cap_delegates_to_server(env, rpc_rig):
    """An owner capability for an object the cache holds no evidence
    about cannot be vouched for locally: restrict() asks the server,
    preserving the pre-cache error semantics for forgeries."""
    bullet, client = rpc_rig
    caching = CachingBulletClient(client, capacity_bytes=64 * KB)
    cap = run_process(env, caching.create(b"x", 1))
    restricts = bullet.stats.restricts
    reader = run_process(env, caching.restrict(cap, RIGHT_READ))
    assert reader.rights == RIGHT_READ
    assert bullet.stats.restricts == restricts + 1
    assert run_process(env, caching.read(reader)) == b"x"


def test_reincarnation_with_identical_bytes_resets_verification():
    """Regression (review): an unseen delete + recreate reusing the
    object number with identical contents used to merge verification
    state, so the dead incarnation's capabilities kept hitting. An
    admitting (server-proven) capability that mismatches the known
    secret now resets the entry's evidence."""
    cache = WorkstationCache(64 * KB)
    stale = owner(1, secret=0x1111)
    fresh = owner(1, secret=0x2222)
    assert cache.admit(stale, b"same bytes")
    stale_reader = restrict(stale, RIGHT_READ)
    assert cache.lookup(stale_reader, RIGHT_READ).hit
    # Unseen delete + recreate: same object number, same contents.
    assert cache.admit(fresh, b"same bytes")
    # The revoked incarnation misses through to the server...
    assert not cache.lookup(stale, RIGHT_READ).hit
    assert not cache.lookup(stale_reader, RIGHT_READ).hit
    # ...while the current one verifies, including fresh derivations.
    assert cache.lookup(fresh, RIGHT_READ).hit
    assert cache.lookup(restrict(fresh, RIGHT_READ), RIGHT_READ).hit
    assert cache.audit() == len(b"same bytes")


def test_delete_with_sibling_pin_defers_drop(env, rpc_rig):
    """Regression (review): a successful server DELETE used to raise
    ConsistencyError in the deleting client when a sibling process held
    a pin — after the object was already irreversibly freed — and the
    stale entry then kept serving reads of a deleted object. The entry
    is now marked dead (unhittable at once) and its bytes are released
    on the last unpin."""
    bullet, client = rpc_rig
    shared = WorkstationCache(64 * KB, metrics=client.metrics)
    one = CachingBulletClient(client, cache=shared)
    two = CachingBulletClient(client, cache=shared)
    payload = b"pinned bytes"
    cap = run_process(env, one.create(payload, 1))
    run_process(env, two.read(cap))
    shared.pin(cap)                    # sibling mid-copy
    run_process(env, one.delete(cap))  # must not raise
    assert cap not in shared
    assert shared.cached_bytes == len(payload)  # held for the copier

    def attempt():
        try:
            yield from two.read(cap)
        except NotFoundError:
            return "gone"

    assert run_process(env, attempt()) == "gone"
    with pytest.raises(NotFoundError):
        shared.pin(cap)  # dead entries do not take new pins
    shared.unpin(cap)
    assert shared.audit() == 0
    assert not shared.invalidate(cap)


def test_caching_client_rejects_cache_and_capacity_together(env, rpc_rig):
    _bullet, client = rpc_rig
    with pytest.raises(ValueError):
        CachingBulletClient(client, capacity_bytes=4 * KB,
                            cache=WorkstationCache(4 * KB))
