"""Unit tests for the unified fault plane (repro.faults) and the
client retry layer (repro.client.retry).

The matrix-style end-to-end scenarios live in test_fault_matrix.py;
this file covers the pieces: plan validation, controller attachment and
firing, the event-driven write-count injector (including the regression
for the old busy-poll), retry policy arithmetic, and the determinism
artifact (same seed + same plan => byte-identical firing/retry traces).
"""

import pytest

from repro.client import BulletClient, Retrier, RetryPolicy
from repro.disk import MirroredDiskSet, VirtualDisk
from repro.disk.faults import FaultInjector as ShimFaultInjector
from repro.errors import (
    BadRequestError,
    DiskIOError,
    NotFoundError,
    RpcTimeoutError,
    ServerDownError,
)
from repro.faults import (
    FaultController,
    FaultInjector,
    FaultPlan,
    arm_fail_after_writes,
)
from repro.net import Ethernet, RpcTransport
from repro.profiles import CpuProfile, EthernetProfile
from repro.sim import Environment, SeededStream, Tracer, run_process

from conftest import SMALL_DISK, make_bullet


# ---------------------------------------------------------------- plans


def test_plan_builders_chain_and_describe():
    plan = (FaultPlan()
            .disk_fail("d0", at=0.5)
            .disk_degrade("d0", at=1.0, factor=4.0, duration=2.0)
            .net_partition(at=2.0, duration=1.0)
            .server_crash("bullet", at=3.0)
            .server_restart("bullet", at=4.0))
    assert len(plan) == 5
    kinds = [e.kind for e in plan]
    assert kinds == ["disk.fail", "disk.degrade", "net.partition",
                     "server.crash", "server.restart"]
    text = plan.describe()
    assert "disk.fail -> d0" in text
    assert "net.partition -> net" in text
    plan.validate()  # already-validated events stay valid


def test_plan_rejects_unknown_kind():
    with pytest.raises(BadRequestError, match="unknown fault kind"):
        FaultPlan().add("disk.explode", "d0", at=1.0)


def test_plan_rejects_missing_params():
    with pytest.raises(BadRequestError, match="missing params: duration"):
        FaultPlan().add("net.partition", "net", at=1.0)


def test_plan_rejects_bad_ranges():
    with pytest.raises(BadRequestError, match="negative"):
        FaultPlan().disk_fail("d0", at=-1.0)
    with pytest.raises(BadRequestError, match="writes"):
        FaultPlan().disk_fail_after_writes("d0", writes=0)
    with pytest.raises(BadRequestError, match="factor"):
        FaultPlan().disk_degrade("d0", at=0.0, factor=0.5)
    with pytest.raises(BadRequestError, match="probability"):
        FaultPlan().net_loss(at=0.0, duration=1.0, probability=1.5)
    with pytest.raises(BadRequestError, match="duration"):
        FaultPlan().net_partition(at=0.0, duration=0.0)


def test_event_param_lookup():
    plan = FaultPlan().net_loss(at=1.0, duration=2.0, probability=0.25)
    event = plan.events[0]
    assert event.param("probability") == 0.25
    assert event.param("nonexistent", "fallback") == "fallback"


# ----------------------------------------------------------- controller


def test_controller_rejects_unattached_target(env):
    ctrl = FaultController(env, FaultPlan().disk_fail("ghost", at=1.0))
    with pytest.raises(BadRequestError, match="not attached"):
        ctrl.start()


def test_controller_rejects_role_mismatch(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d0")
    ctrl = FaultController(env, FaultPlan().net_partition(at=1.0, duration=1.0,
                                                         target="d0"))
    ctrl.attach_disk("d0", disk)
    with pytest.raises(BadRequestError, match="needs a net target"):
        ctrl.start()


def test_controller_rejects_duplicate_attachment(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d0")
    ctrl = FaultController(env, FaultPlan())
    ctrl.attach_disk("d0", disk)
    with pytest.raises(BadRequestError, match="already attached"):
        ctrl.attach_disk("d0", disk)


def test_controller_rejects_double_start_and_late_attach(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d0")
    ctrl = FaultController(env, FaultPlan().disk_fail("d0", at=1.0))
    ctrl.attach_disk("d0", disk).start()
    with pytest.raises(BadRequestError, match="already started"):
        ctrl.start()
    with pytest.raises(BadRequestError, match="after start"):
        ctrl.attach_disk("d1", disk)


def test_controller_fires_disk_fail_at_planned_time(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d0")
    ctrl = FaultController(env, FaultPlan().disk_fail("d0", at=0.25))
    ctrl.attach_disk("d0", disk).start()
    env.run(until=env.timeout(0.2))
    assert not disk.failed
    env.run(until=env.timeout(0.1))
    assert disk.failed
    assert ctrl.firings == [(0.25, "disk.fail", "d0", "")]


def test_controller_degrade_window_reverts(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d0")
    ctrl = FaultController(
        env, FaultPlan().disk_degrade("d0", at=0.1, factor=8.0, duration=0.5)
    )
    ctrl.attach_disk("d0", disk).start()

    def timed_read():
        yield env.timeout(0.2)  # inside the window
        t0 = env.now
        yield disk.read(0, 4)
        slow = env.now - t0
        yield env.timeout(1.0)  # past the window
        t0 = env.now
        yield disk.read(0, 4)
        fast = env.now - t0
        return slow, fast

    slow, fast = run_process(env, timed_read())
    assert slow > fast * 4  # degraded access is markedly slower
    kinds = [(k, d) for _t, k, _tg, d in ctrl.firings]
    assert ("disk.degrade", "reverted") in kinds


def test_controller_flaky_window_fails_then_heals(env):
    disk = VirtualDisk(env, SMALL_DISK, name="d0")
    ctrl = FaultController(
        env,
        FaultPlan().disk_flaky("d0", at=0.1, start_block=100, nblocks=8,
                               duration=0.5),
    )
    ctrl.attach_disk("d0", disk).start()

    def reader():
        yield env.timeout(0.2)
        with pytest.raises(DiskIOError, match="media error"):
            yield disk.read(100, 4)
        assert not disk.failed  # flaky != dead
        yield env.timeout(1.0)
        yield disk.read(100, 4)  # healed
        return True

    assert run_process(env, reader()) is True


def test_controller_partition_flips_lossy_and_heals(env):
    eth = Ethernet(env, EthernetProfile())
    ctrl = FaultController(
        env, FaultPlan().net_partition(at=0.1, duration=0.4)
    )
    ctrl.attach_ethernet("net", eth).start()
    assert not eth.lossy
    env.run(until=env.timeout(0.2))
    assert eth.lossy
    env.run(until=env.timeout(0.5))
    assert not eth.lossy
    details = [d for _t, k, _tg, d in ctrl.firings if k == "net.partition"]
    assert details == ["", "healed"]


def test_controller_server_crash_and_restart(env):
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    t0 = env.now
    ctrl = FaultController(
        env,
        FaultPlan().server_crash("bullet", at=t0 + 0.1)
                   .server_restart("bullet", at=t0 + 0.5),
    )
    ctrl.attach_server("bullet", bullet).start()
    client = BulletClient(env, rpc, bullet.port, timeout=0.2)

    def scenario():
        cap = yield from client.create(b"survivor", 1)
        yield env.timeout(0.2)  # now inside the crash window
        with pytest.raises(ServerDownError):
            yield from client.read(cap)
        yield env.timeout(1.0)  # past the restart
        data = yield from client.read(cap)
        return data

    assert run_process(env, scenario()) == b"survivor"
    kinds = [k for _t, k, _tg, _d in ctrl.firings]
    assert kinds == ["server.crash", "server.restart", "server.restart"]


# ------------------------------------------- write-count fault injector


def test_fail_after_writes_fires_exactly_at_nth_write(env):
    """Regression for the old busy-poll: the disk must be dead the
    instant the Nth write completes — not ``seek_settle / 2`` later when
    a polling daemon happened to wake up."""
    disk = VirtualDisk(env, SMALL_DISK, name="fx")
    FaultInjector(env).fail_after_writes(disk, 3)
    observed = []

    def writer():
        for i in range(5):
            try:
                yield disk.write(i * 8, b"x" * disk.block_size)
            except DiskIOError:
                observed.append(("fail", i, disk.failed))
                break
            observed.append(("ok", i, disk.failed))

    env.run(until=env.process(writer()))
    # The 3rd write itself completes durably, and by the time the writer
    # resumes the disk is already dead; the 4th write fails at submit.
    assert observed == [
        ("ok", 0, False),
        ("ok", 1, False),
        ("ok", 2, True),
        ("fail", 3, True),
    ]
    assert disk.stats.writes == 3


def test_fail_after_writes_ignores_reads(env):
    disk = VirtualDisk(env, SMALL_DISK, name="fx")
    arm_fail_after_writes(disk, 2, "test fault")

    def worker():
        yield disk.write(0, b"a")
        yield disk.read(0, 1)
        yield disk.read(0, 1)
        assert not disk.failed  # reads must not advance the count
        yield disk.write(8, b"b")

    env.run(until=env.process(worker()))
    assert disk.failed
    assert disk.stats.reads == 2


def test_fail_after_writes_rejects_nonpositive_count(env):
    disk = VirtualDisk(env, SMALL_DISK, name="fx")
    with pytest.raises(ValueError):
        arm_fail_after_writes(disk, 0, "bad")


def test_disk_faults_compat_shim_is_same_class():
    assert ShimFaultInjector is FaultInjector


def test_fail_at_still_works(env):
    disk = VirtualDisk(env, SMALL_DISK, name="fx")
    FaultInjector(env).fail_at(disk, when=0.5)
    env.run(until=env.timeout(0.4))
    assert not disk.failed
    env.run(until=env.timeout(0.2))
    assert disk.failed


def test_mirror_failover_escalates_on_persistently_flaky_replicas(env):
    """A flaky-but-live extent on every replica must raise, not spin the
    failover loop forever."""
    disks = [VirtualDisk(env, SMALL_DISK, name=f"m{i}") for i in range(2)]
    mirror = MirroredDiskSet(env, disks)
    for disk in disks:
        disk.mark_flaky(50, 4)

    def reader():
        with pytest.raises(DiskIOError):
            yield from mirror.read_with_failover(50, 2)
        return True

    assert run_process(env, reader()) is True


# -------------------------------------------------------- retry policy


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=1.0, max_delay=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                         jitter=0.0)
    delays = [policy.backoff(k, None) for k in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_retry_policy_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(base_delay=0.1, multiplier=1.0, max_delay=0.1,
                         jitter=0.2)
    a = [policy.backoff(0, SeededStream(7, "j")) for _ in range(3)]
    b = [policy.backoff(0, SeededStream(7, "j")) for _ in range(3)]
    assert a[0] == b[0]  # same stream state => same draw
    for d in a:
        assert 0.08 <= d <= 0.12


def test_retrier_retries_transient_then_succeeds(env):
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0)
    retrier = Retrier(env, policy)
    calls = []

    def attempt():
        yield env.timeout(0.01)
        calls.append(env.now)
        if len(calls) < 3:
            raise ServerDownError("flap")
        return "ok"

    result = run_process(
        env, retrier.run(attempt, op="t", idempotent=True)
    )
    assert result == "ok"
    assert retrier.attempts == 3
    assert retrier.retries == 2
    assert retrier.gave_up == 0


def test_retrier_raises_nontransient_immediately(env):
    retrier = Retrier(env, RetryPolicy(jitter=0.0))

    def attempt():
        yield env.timeout(0.01)
        raise NotFoundError("definitive")

    def runner():
        with pytest.raises(NotFoundError):
            yield from retrier.run(attempt, op="t", idempotent=True)
        return True

    assert run_process(env, runner()) is True
    assert retrier.attempts == 1


def test_retrier_refuses_unguarded_nonidempotent_retry(env):
    retrier = Retrier(env, RetryPolicy(jitter=0.0))

    def attempt():
        yield env.timeout(0.01)
        raise RpcTimeoutError("maybe executed")

    def runner():
        with pytest.raises(RpcTimeoutError):
            yield from retrier.run(attempt, op="t", idempotent=False,
                                   dedupe=False)
        return True

    assert run_process(env, runner()) is True
    assert retrier.attempts == 1
    assert retrier.retries == 0


def test_retrier_retries_nonidempotent_with_dedupe_guard(env):
    retrier = Retrier(env, RetryPolicy(max_attempts=4, base_delay=0.05,
                                       jitter=0.0))
    calls = []

    def attempt():
        yield env.timeout(0.01)
        calls.append(env.now)
        if len(calls) < 2:
            raise RpcTimeoutError("reply lost")
        return "created"

    result = run_process(
        env, retrier.run(attempt, op="t", idempotent=False, dedupe=True)
    )
    assert result == "created"
    assert retrier.attempts == 2


def test_retrier_gives_up_after_max_attempts(env):
    retrier = Retrier(env, RetryPolicy(max_attempts=3, base_delay=0.05,
                                       jitter=0.0))

    def attempt():
        yield env.timeout(0.01)
        raise ServerDownError("always down")

    def runner():
        with pytest.raises(ServerDownError):
            yield from retrier.run(attempt, op="t", idempotent=True)
        return True

    assert run_process(env, runner()) is True
    assert retrier.attempts == 3
    assert retrier.gave_up == 1


def test_retrier_respects_deadline(env):
    retrier = Retrier(env, RetryPolicy(max_attempts=10, base_delay=0.5,
                                       jitter=0.0, deadline=0.3))

    def attempt():
        yield env.timeout(0.01)
        raise ServerDownError("down")

    def runner():
        with pytest.raises(ServerDownError):
            yield from retrier.run(attempt, op="t", idempotent=True)
        return True

    assert run_process(env, runner()) is True
    # The first backoff (0.5s) would blow the 0.3s budget: stop at once.
    assert retrier.attempts == 1
    assert env.now < 0.3


# ---------------------------------------------------------- determinism


def _traced_fault_run(seed: int):
    """One self-contained faulty run; returns its determinism artifacts."""
    env = Environment()
    tracer = Tracer(env, categories={"fault", "retry"})
    eth = Ethernet(env, EthernetProfile())
    rpc = RpcTransport(env, eth, CpuProfile())
    bullet = make_bullet(env, transport=rpc)
    client = BulletClient(
        env, rpc, bullet.port, timeout=0.4,
        retry=RetryPolicy(max_attempts=8, base_delay=0.2, max_delay=1.0),
        retry_stream=SeededStream(seed, "client-retry"), tracer=tracer,
    )
    t0 = env.now
    plan = (FaultPlan()
            .net_loss(at=t0 + 0.05, duration=1.0, probability=0.4)
            .server_crash("bullet", at=t0 + 1.5)
            .server_restart("bullet", at=t0 + 2.5))
    ctrl = FaultController(env, plan, master_seed=seed, tracer=tracer)
    ctrl.attach_ethernet("net", eth).attach_server("bullet", bullet).start()

    def workload():
        cap = yield from client.create(b"deterministic payload" * 40, 1)
        yield env.timeout(1.6)  # into the crash window
        data = yield from client.read(cap)  # retried across the restart
        return data

    data = run_process(env, workload())
    assert data == b"deterministic payload" * 40
    return ctrl.firings_text(), tracer.dump()


def test_same_seed_same_plan_is_byte_identical():
    firings_a, trace_a = _traced_fault_run(seed=11)
    firings_b, trace_b = _traced_fault_run(seed=11)
    assert firings_a == firings_b
    assert trace_a == trace_b
    assert firings_a  # the scenario actually fired faults


def test_second_seed_also_replays_identically():
    firings_a, trace_a = _traced_fault_run(seed=29)
    firings_b, trace_b = _traced_fault_run(seed=29)
    assert (firings_a, trace_a) == (firings_b, trace_b)
